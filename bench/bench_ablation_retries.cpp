// Ablation: how many of the paper's "five requests with one-second
// timeouts" are actually needed? Sweeps the retry budget and reports the
// false-unreachable rate (servers reported down that are actually up) and
// the resulting Figure-2a percentage. Shows why single-shot probing would
// overstate ECN harm.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.4) config.scale = 0.4;  // 1000 servers suffice
  auto params = bench::world_params(config);
  params.offline_prob = 0.0;  // isolate transient loss from true downtime
  bench::print_header("Ablation: UDP probe retry budget", config, params);

  std::printf("  %-8s %-22s %-22s %-14s\n", "retries", "false-unreachable (plain)",
              "false-unreachable (ECT)", "fig2a %");
  for (int attempts = 1; attempts <= 5; ++attempts) {
    scenario::World world(params);
    measure::ProbeOptions options;
    options.udp_attempts = attempts;
    measure::CampaignPlan plan;
    plan.entries.push_back({"UGla wired", 1, 1});
    plan.entries.push_back({"McQuistin home", 1, 1});
    const auto traces = world.run_campaign(plan, options);

    // Every server is online (offline_prob = 0), so any unreachable report
    // that is not explained by an ECT-UDP firewall is false.
    int false_plain = 0;
    int false_ect = 0;
    int total = 0;
    for (const auto& trace : traces) {
      for (std::size_t i = 0; i < trace.servers.size(); ++i) {
        const auto& s = trace.servers[i];
        const bool firewalled = world.servers()[i].firewalled_ect_udp;
        const bool ect_required = world.servers()[i].ect_required;
        ++total;
        if (!s.udp_plain.reachable && !ect_required) ++false_plain;
        if (!s.udp_ect0.reachable && !firewalled) ++false_ect;
      }
    }
    const auto summary = analysis::summarize_reachability(traces);
    std::printf("  %-8d %10d (%5.2f%%)      %10d (%5.2f%%)      %8.2f\n", attempts,
                false_plain, 100.0 * false_plain / total, false_ect,
                100.0 * false_ect / total, summary.mean_pct_ect_given_plain);
  }
  std::printf("\nThe paper's choice of five attempts pushes the false-unreachable\n"
              "rate low enough that persistent ECN failures dominate the residual.\n");
  return 0;
}
