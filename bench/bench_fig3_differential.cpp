// Figures 3a/3b: per-server differential reachability. Reproduces the tall
// persistent spikes (servers behind ECT-dropping firewalls), their presence
// from every vantage point, the small Figure 3b population, and the paper's
// "4x more transient than persistent" observation.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/report.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Figure 3: per-server differential reachability", config, params);

  scenario::World world(params);
  const auto plan = bench::campaign_plan(config);
  std::printf("running %d traces...\n", plan.total_traces());
  bench::Stopwatch timer;
  const auto traces = world.run_campaign(plan);
  std::printf("campaign done in %.1fs\n\n", timer.seconds());

  const auto diffs = analysis::per_server_differential(traces);

  std::printf("Figure 3a (aggregate over vantages): servers reachable not-ECT but not "
              "ECT(0)\n");
  std::printf("%s\n", analysis::render_figure3a(diffs).c_str());
  std::printf("Figure 3b (aggregate): servers reachable ECT(0) but not not-ECT\n");
  std::printf("%s\n", analysis::render_figure3b(diffs).c_str());

  const auto& vantages = measure::paper_vantage_names();
  const auto counts = analysis::count_over_threshold(diffs, vantages, 50.0);
  std::printf("servers with differential reachability > 50%% per location:\n");
  int min_a = 1 << 30;
  int max_a = 0;
  int max_b = 0;
  for (const auto& row : counts) {
    std::printf("  %-16s fig3a: %3d   fig3b: %3d\n", row.vantage.c_str(),
                row.plain_not_ect_over_threshold, row.ect_not_plain_over_threshold);
    min_a = std::min(min_a, row.plain_not_ect_over_threshold);
    max_a = std::max(max_a, row.plain_not_ect_over_threshold);
    max_b = std::max(max_b, row.ect_not_plain_over_threshold);
  }
  std::printf("\ncomparison:\n");
  bench::compare("fig3a spikes per location (min)", min_a, 9 * config.scale);
  bench::compare("fig3a spikes per location (max)", max_a, 14 * config.scale);
  bench::compare("fig3b servers > 50% (max over locations)", max_b, 3 * config.scale);

  const auto persistent = analysis::persistent_failures(diffs, vantages, 50.0);
  std::printf("\npersistently ECT-unreachable from every vantage: %zu servers\n",
              persistent.size());
  const auto truth = world.ground_truth_firewalled();
  int recovered = 0;
  for (const auto& addr : persistent) {
    const bool is_truth = std::find(truth.begin(), truth.end(), addr) != truth.end();
    recovered += is_truth ? 1 : 0;
    std::printf("  %-15s %s\n", addr.to_string().c_str(),
                is_truth ? "(ground truth: ECT-UDP firewall)" : "(transient)");
  }
  std::printf("ground-truth firewalled servers rediscovered: %d of %zu\n", recovered,
              truth.size());

  // The paper: "around 4x more servers transiently unreachable" than
  // persistently. Transient = ever differential but never above 50%.
  int transient = 0;
  for (const auto& d : diffs) {
    if (d.overall_plain_not_ect_pct > 0.0 && d.overall_plain_not_ect_pct <= 50.0) {
      ++transient;
    }
  }
  std::printf("\ntransiently vs persistently ECT-unreachable servers: %d vs %zu "
              "(paper: ~4x more transient)\n",
              transient, persistent.size());
  return 0;
}
