// Ablation: where ECN bleachers sit (AS-boundary links vs inside stub
// networks) determines the boundary-attribution share the traceroute study
// observes. Sweeps the placement mix at a fixed total bleacher count and
// reports the observed statistics -- the design-space view behind the
// paper's single 59.1% data point.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/hops.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  if (config.scale > 0.4) config.scale = 0.4;
  bench::print_header("Ablation: bleacher placement vs observed boundary share",
                      config, bench::world_params(config));

  constexpr int kTotalBleachers = 28;
  std::printf("  %-22s %-16s %-14s %-14s\n", "inter:intra placement", "% at boundaries",
              "strip hops", "% hops passing");
  for (const double inter_share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto params = bench::world_params(config);
    params.bleach_inter_as_links = static_cast<int>(kTotalBleachers * inter_share + 0.5);
    params.bleach_intra_as_links = kTotalBleachers - params.bleach_inter_as_links;
    scenario::World world(params);
    const auto observations = world.run_traceroutes(2);
    const auto analysis = analysis::analyze_hops(observations, world.ip2as());
    std::printf("  %2d:%-19d %-16.1f %-14zu %-14.2f\n", params.bleach_inter_as_links,
                params.bleach_intra_as_links, analysis.pct_strips_at_boundary(),
                static_cast<std::size_t>(analysis.strip_hops),
                analysis.pct_hops_passing());
  }
  std::printf("\nThe observed boundary share tracks the placement mix but is biased\n"
              "upward: when the true upstream router is silent, the previous\n"
              "responder often sits in another AS, so intra-AS strips masquerade\n"
              "as boundary strips. The paper's 59.1%% therefore bounds the true\n"
              "boundary share from above.\n");
  return 0;
}
