// Table 1: geographic distribution of the NTP pool servers. Reproduces the
// paper's Section 3 pipeline: discover servers via repeated round-robin DNS
// queries of pool.ntp.org and its sub-domains, geolocate them with the
// GeoLite2-like database, and tabulate per region.
#include <cstdio>

#include "bench_common.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/report.hpp"

namespace {

struct PaperRow {
  ecnprobe::geo::Region region;
  int count;
};
constexpr PaperRow kPaperTable1[] = {
    {ecnprobe::geo::Region::Africa, 22},
    {ecnprobe::geo::Region::Asia, 190},
    {ecnprobe::geo::Region::Australia, 68},
    {ecnprobe::geo::Region::Europe, 1664},
    {ecnprobe::geo::Region::NorthAmerica, 522},
    {ecnprobe::geo::Region::SouthAmerica, 32},
    {ecnprobe::geo::Region::Unknown, 2},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  const auto params = bench::world_params(config);
  bench::print_header("Table 1: geographic distribution of NTP pool servers", config,
                      params);

  bench::Stopwatch build_timer;
  scenario::World world(params);
  std::printf("world built in %.1fs (%zu nodes, %zu zones)\n", build_timer.seconds(),
              world.net().node_count(), world.pool_zone_names().size());

  // Discovery crawl, as the paper's script did for several weeks. Enough
  // rounds to cycle the round-robin through the largest zone.
  bench::Stopwatch crawl_timer;
  const int rounds = 40 + params.server_count / 12;
  const auto discovered = world.run_discovery("UGla wired", rounds);
  std::printf("DNS crawl: %d rounds over %zu zones found %zu of %d servers in %.1fs\n\n",
              rounds, world.pool_zone_names().size(), discovered.size(),
              params.server_count, crawl_timer.seconds());

  const auto summary = analysis::summarize_geo(discovered, world.geodb());
  std::printf("%s\n", analysis::render_table1(summary).c_str());

  std::printf("paper-vs-measured (paper column at full scale):\n");
  for (const auto& row : kPaperTable1) {
    bench::compare(std::string(geo::to_string(row.region)).c_str(),
                   summary.counts.at(row.region), row.count * config.scale);
  }
  bench::compare("Total", summary.total, 2500 * config.scale);
  return 0;
}
