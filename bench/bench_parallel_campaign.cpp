// Serial-vs-parallel campaign executor comparison: runs the paper's trace
// layout once through the sequential World::run_campaign path and once
// through the sharded ParallelCampaign at increasing worker counts, then
// checks that every parallel run's merged results CSV *and* merged campaign
// metrics are byte-identical to the sequential one while reporting the
// wall-clock speedup and per-worker utilization (busy time as a fraction of
// workers x wall time, from the worker_busy_micros_total runtime counters).
// This is the executable form of the determinism contract in
// tests/measure/test_parallel_campaign.cpp at study scale.
//
//   bench_parallel_campaign [--scale=F] [--seed=N] [--workers=N] [--csv=PATH]
//
// --workers gives the highest worker count tried; the bench sweeps
// {1, 2, 4, ..., workers}. Note each worker builds its own private world,
// so peak memory scales with the worker count.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/export.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const auto config = bench::parse_args(argc, argv);
  int max_workers = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) max_workers = std::atoi(arg.c_str() + 10);
  }
  if (max_workers < 1) max_workers = 1;
  const auto params = bench::world_params(config);
  bench::print_header("Parallel campaign sharding: speedup and determinism", config,
                      params);

  const auto plan = bench::campaign_plan(config);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("plan: %d traces, %d servers, up to %d workers (%u hardware threads)\n",
              plan.total_traces(), params.server_count, max_workers, cores);
  if (cores != 0 && static_cast<int>(cores) < max_workers) {
    std::printf("note: fewer cores than workers -- expect determinism, not speedup\n");
  }
  std::printf("\n");

  std::printf("sequential baseline...\n");
  bench::Stopwatch serial_timer;
  scenario::World world(params);
  const auto sequential = world.run_campaign(plan);
  const double serial_seconds = serial_timer.seconds();
  std::ostringstream serial_csv;
  measure::write_traces_csv(serial_csv, sequential);
  const auto serial_metrics = obs::to_json(world.campaign_obs());
  const auto summary = analysis::summarize_reachability(sequential);
  std::printf("  %.2fs (%zu simulated events)\n", serial_seconds,
              world.sim().events_processed());
  std::printf("  mean %% ECT(0)-reachable given not-ECT: %.2f%%\n\n",
              summary.mean_pct_ect_given_plain);

  std::printf("%8s %10s %9s %8s %12s %12s\n", "workers", "seconds", "speedup",
              "util", "csv", "metrics");
  bool all_identical = true;
  double best_speedup = 1.0;
  double best_parallel_seconds = serial_seconds;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    measure::ParallelCampaign::Options exec;
    exec.workers = workers;
    measure::ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
    bench::Stopwatch timer;
    const auto traces = campaign.run(plan);
    const double seconds = timer.seconds();
    std::ostringstream csv;
    measure::write_traces_csv(csv, traces);

    // Utilization: total time workers spent inside traces, as a fraction of
    // the capacity (workers x wall clock). The gap is shard construction,
    // queue starvation at the tail, and merge time.
    std::uint64_t busy_micros = 0;
    const auto runtime = campaign.runtime_metrics();
    if (const auto it = runtime.families.find("worker_busy_micros_total");
        it != runtime.families.end()) {
      for (const auto& [labels, sample] : it->second.samples) busy_micros += sample.counter;
    }
    const double utilization =
        seconds > 0.0 ? static_cast<double>(busy_micros) / 1e6 / (workers * seconds) : 0.0;

    const bool csv_identical =
        campaign.failures().empty() && csv.str() == serial_csv.str();
    const bool metrics_identical = obs::to_json(campaign.metrics()) == serial_metrics;
    all_identical = all_identical && csv_identical && metrics_identical;
    if (serial_seconds / seconds > best_speedup) {
      best_speedup = serial_seconds / seconds;
      best_parallel_seconds = seconds;
    }
    std::printf("%8d %9.2fs %8.2fx %7.0f%% %12s %12s\n", workers, seconds,
                serial_seconds / seconds, 100.0 * utilization,
                csv_identical ? "identical" : "DIVERGED",
                metrics_identical ? "identical" : "DIVERGED");
  }

  if (!config.csv_path.empty()) {
    std::ofstream out(config.csv_path);
    out << serial_csv.str();
    std::printf("\nraw traces written to %s\n", config.csv_path.c_str());
  }
  if (!all_identical) {
    std::printf("\nFAIL: parallel output diverged from the sequential baseline\n");
    return 1;
  }
  std::printf("\nall worker counts byte-identical to the sequential baseline\n");

  if (!config.bench_json.empty()) {
    const double probes =
        static_cast<double>(plan.total_traces()) * params.server_count;
    bench::BenchJson json("parallel_campaign");
    json.add("sequential_probes_per_sec",
             serial_seconds > 0.0 ? probes / serial_seconds : 0.0, "probes/s");
    json.add("sequential_sim_events_per_sec",
             serial_seconds > 0.0
                 ? static_cast<double>(world.sim().events_processed()) / serial_seconds
                 : 0.0,
             "events/s");
    json.add("best_parallel_probes_per_sec",
             best_parallel_seconds > 0.0 ? probes / best_parallel_seconds : 0.0,
             "probes/s");
    json.add("best_parallel_speedup", best_speedup, "x");
    json.add("all_worker_counts_identical", all_identical ? 1.0 : 0.0, "bool",
             /*guarded=*/true);
    if (!json.write(config.bench_json)) return 1;
  }
  return 0;
}
