// Extension bench: quantifies what the paper's result buys an interactive
// media application. Runs many RTP sessions across path conditions drawn
// from the calibrated world's middlebox mix and reports, per condition:
// verification/fallback rates, delivered bitrate, media loss, and CE usage.
// The "firewall" row is the paper's ~0.5% of paths; the fallback column is
// why probing-then-enabling (RFC 6679) makes ECN safe to attempt anyway.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ecnprobe/rtp/media.hpp"
#include "ecnprobe/util/stats.hpp"

namespace {

using namespace ecnprobe;

struct ConditionResult {
  int sessions = 0;
  int verified = 0;
  int fell_back = 0;
  util::RunningStats bitrate_kbps;
  util::RunningStats loss_pct;
  util::RunningStats ce_marks;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ecnprobe;
  auto config = bench::parse_args(argc, argv);
  bench::print_header("Extension: RTP media sessions with RFC 6679 ECN", config,
                      scenario::WorldParams::small(config.seed));

  struct Condition {
    const char* label;
    std::function<netsim::PolicyPtr()> make_policy;
  };
  const std::vector<Condition> conditions = {
      {"clean path", [] { return netsim::PolicyPtr{}; }},
      {"AQM, CE marking",
       [] { return std::make_shared<netsim::CongestionPolicy>(0.15, 0.15); }},
      {"ECN bleacher", [] { return std::make_shared<netsim::EcnBleachPolicy>(1.0); }},
      {"sometimes-bleacher",
       [] { return std::make_shared<netsim::EcnBleachPolicy>(0.5); }},
      {"ECT-UDP firewall", [] { return std::make_shared<netsim::EctUdpDropPolicy>(); }},
  };

  constexpr int kSessionsPerCondition = 12;
  bench::Stopwatch timer;
  std::printf("  %-20s %9s %9s %10s %9s %8s\n", "path condition", "verified",
              "fellback", "kb/s", "loss %", "CE");
  for (const auto& condition : conditions) {
    ConditionResult result;
    for (int s = 0; s < kSessionsPerCondition; ++s) {
      auto params = scenario::WorldParams::small(config.seed + static_cast<unsigned>(s));
  params.bleach_inter_as_links = 0;   // path conditions are injected explicitly
  params.bleach_intra_as_links = 0;
  params.ect_udp_firewalled_servers = 0;
  params.ect_required_servers = 0;
  params.ec2_sensitive_servers = 0;
  params.greylist_flaky_prob = 0.0;
  params.greylist_dead_prob = 0.0;
  params.offline_prob = 0.0;
      params.server_count = 4;
      scenario::World world(params);
      auto& caller = world.vantage("Perkins home").host();
      auto& callee = *world.server(0).host;
      if (auto policy = condition.make_policy()) {
        const auto& att = world.server(0).attachment;
        world.net().add_egress_policy(att.router, att.router_if, std::move(policy));
      }
      rtp::MediaReceiver receiver(callee, rtp::MediaReceiver::Config{});
      rtp::MediaSender sender(caller, callee.address(), 5004,
                              rtp::MediaSender::Config{});
      sender.start();
      world.sim().run_until(world.sim().now() + util::SimDuration::seconds(10));
      sender.stop();
      receiver.stop();
      world.sim().run();  // drain

      ++result.sessions;
      result.verified += sender.stats().verified ? 1 : 0;
      result.fell_back += sender.stats().fell_back ? 1 : 0;
      result.bitrate_kbps.add(sender.current_bitrate_bps() / 1e3);
      const auto& rx = receiver.stats();
      const double total = static_cast<double>(rx.packets_received + rx.lost);
      result.loss_pct.add(total > 0 ? 100.0 * static_cast<double>(rx.lost) / total : 0);
      result.ce_marks.add(rx.ce);
    }
    std::printf("  %-20s %6d/%-2d %6d/%-2d %10.0f %9.2f %8.0f\n", condition.label,
                result.verified, result.sessions, result.fell_back, result.sessions,
                result.bitrate_kbps.mean(), result.loss_pct.mean(),
                result.ce_marks.mean());
  }
  std::printf("\n%d sessions simulated in %.1fs\n",
              static_cast<int>(conditions.size()) * kSessionsPerCondition,
              timer.seconds());
  std::printf("\nTakeaways: ECN verifies on clean/congested paths and converts loss\n"
              "into CE marks; bleached paths fall back (feedback would be blind);\n"
              "firewalled paths -- the paper's ~0.5%% -- fall back on timeout and\n"
              "the session survives. Attempting ECN is safe exactly as the paper\n"
              "concludes.\n");
  return 0;
}
