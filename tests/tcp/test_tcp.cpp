#include "ecnprobe/tcp/tcp.hpp"

#include <gtest/gtest.h>

#include <string>

#include "tcp_fixture.hpp"

namespace ecnprobe::tcp {
namespace {

using namespace ecnprobe::util::literals;
using testutil::TcpPair;

TEST(Tcp, HandshakeEstablishesBothEnds) {
  TcpPair pair;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = std::move(conn);
  });
  bool connected = false;
  auto conn = pair.client->connect(pair.server_host->address(), 80, false,
                                   [&](bool ok) { connected = ok; });
  pair.sim.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(conn->state(), TcpState::Established);
  ASSERT_TRUE(accepted);
  EXPECT_EQ(accepted->state(), TcpState::Established);
  EXPECT_EQ(accepted->remote_port(), conn->local_port());
}

TEST(Tcp, ConnectRefusedWhenNoListener) {
  TcpPair pair;
  bool connected = true;
  tcp::CloseReason reason{};
  auto conn = pair.client->connect(pair.server_host->address(), 81, false,
                                   [&](bool ok) { connected = ok; });
  conn->set_close_handler([&](CloseReason r) { reason = r; });
  pair.sim.run();
  EXPECT_FALSE(connected);
  EXPECT_EQ(reason, CloseReason::Refused);
}

TEST(Tcp, ConnectTimesOutThroughDeadLink) {
  netsim::LinkParams link;
  TcpPair pair(true, link);
  pair.net.set_link_up(pair.client_id, 0, false);
  bool callback_fired = false;
  bool connected = true;
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [&](bool ok) {
    callback_fired = true;
    connected = ok;
  });
  pair.sim.run();
  EXPECT_TRUE(callback_fired);
  EXPECT_FALSE(connected);
  EXPECT_EQ(conn->state(), TcpState::Closed);
  // SYN + syn_retries retransmissions were attempted.
  EXPECT_EQ(conn->stats().retransmissions, 3u);
}

TEST(Tcp, RequestResponseExchange) {
  TcpPair pair;
  std::string server_got;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([conn, &server_got](std::span<const std::uint8_t> data) {
      server_got.append(data.begin(), data.end());
      if (server_got == "ping") conn->send(std::string_view("pong"));
    });
  });
  std::string client_got;
  auto conn = pair.client->connect(pair.server_host->address(), 80, false,
                                   [](bool) {});
  conn->set_receive_handler([&](std::span<const std::uint8_t> data) {
    client_got.append(data.begin(), data.end());
  });
  conn->send(std::string_view("ping"));
  pair.sim.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(Tcp, LargeTransferSegmentsAndReassembles) {
  TcpPair pair;
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  std::string payload;
  for (int i = 0; i < 20000; ++i) payload.push_back(static_cast<char>('a' + i % 26));
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(payload);
  pair.sim.run();
  EXPECT_EQ(received, payload);
  EXPECT_GT(conn->stats().segments_sent, 10u);  // was actually segmented
}

TEST(Tcp, TransferSurvivesHeavyLoss) {
  netsim::LinkParams link;
  link.loss_rate = 0.2;
  link.delay = 5_ms;
  TcpPair pair(true, link);
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  std::string payload(30000, 'x');
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(payload);
  pair.sim.run();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_GT(conn->stats().retransmissions, 0u);
}

TEST(Tcp, ReorderingLinkStillDeliversInOrder) {
  netsim::LinkParams link;
  link.delay = 5_ms;
  link.jitter = 20_ms;  // heavy jitter causes reordering
  TcpPair pair(true, link);
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  std::string payload;
  for (int i = 0; i < 40000; ++i) payload.push_back(static_cast<char>('0' + i % 10));
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(payload);
  pair.sim.run();
  EXPECT_EQ(received, payload);  // byte-exact despite reordering
}

TEST(Tcp, GracefulCloseWalksStates) {
  TcpPair pair;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  CloseReason client_reason{};
  bool client_closed = false;
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->set_close_handler([&](CloseReason r) {
    client_closed = true;
    client_reason = r;
  });
  pair.sim.run();
  ASSERT_TRUE(accepted);

  CloseReason server_reason{};
  bool server_closed = false;
  accepted->set_close_handler([&](CloseReason r) {
    server_closed = true;
    server_reason = r;
  });

  // Client initiates; server responds by closing its side too.
  conn->close();
  pair.sim.run();
  EXPECT_EQ(accepted->state(), TcpState::CloseWait);
  accepted->close();
  pair.sim.run();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_reason, CloseReason::Graceful);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(client_reason, CloseReason::Graceful);
  EXPECT_EQ(conn->state(), TcpState::Closed);
}

TEST(Tcp, AbortSendsRstToPeer) {
  TcpPair pair;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) { accepted = conn; });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  ASSERT_TRUE(accepted);
  CloseReason server_reason{};
  accepted->set_close_handler([&](CloseReason r) { server_reason = r; });
  conn->abort();
  pair.sim.run();
  EXPECT_EQ(server_reason, CloseReason::Reset);
}

TEST(Tcp, DataQueuedBeforeEstablishFlushesAfter) {
  TcpPair pair;
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(std::string_view("early"));  // queued while SYN in flight
  pair.sim.run();
  EXPECT_EQ(received, "early");
}

TEST(Tcp, TwoSequentialConnectionsToSameServer) {
  TcpPair pair;
  int accepted_count = 0;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    ++accepted_count;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto c1 = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  c1->close();
  pair.sim.run();
  auto c2 = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  EXPECT_EQ(accepted_count, 2);
  EXPECT_NE(c1->local_port(), c2->local_port());
  EXPECT_EQ(c2->state(), TcpState::Established);
}

}  // namespace
}  // namespace ecnprobe::tcp
