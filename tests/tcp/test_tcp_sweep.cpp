// Parameterized sweeps over path conditions: the TCP invariants (byte-exact
// delivery, eventual teardown, ECN negotiation integrity) must hold across
// loss rates, jitter, and transfer sizes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "ecnprobe/tcp/tcp.hpp"
#include "tcp_fixture.hpp"

namespace ecnprobe::tcp {
namespace {

using namespace ecnprobe::util::literals;
using testutil::TcpPair;

// (loss_rate, jitter_ms, transfer_bytes, want_ecn)
using SweepParam = std::tuple<double, int, int, bool>;

class TcpTransferSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TcpTransferSweep, ByteExactDeliveryAndCleanTeardown) {
  const auto [loss, jitter_ms, bytes, want_ecn] = GetParam();
  netsim::LinkParams link;
  link.loss_rate = loss;
  link.delay = 5_ms;
  link.jitter = util::SimDuration::millis(jitter_ms);
  TcpPair pair(true, link);

  std::string received;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });

  std::string payload;
  payload.reserve(static_cast<std::size_t>(bytes));
  for (int i = 0; i < bytes; ++i) payload.push_back(static_cast<char>('A' + i % 23));

  auto conn = pair.client->connect(pair.server_host->address(), 80, want_ecn,
                                   [](bool) {});
  conn->send(payload);
  pair.sim.run();

  ASSERT_TRUE(accepted);
  // Invariant 1: byte-exact in-order delivery whatever the path did.
  EXPECT_EQ(received, payload);
  // Invariant 2: ECN on the wire if and only if negotiated.
  EXPECT_EQ(conn->ecn_negotiated(), want_ecn);
  EXPECT_EQ(accepted->ecn_negotiated(), want_ecn);
  // Invariant 3: teardown completes even on lossy paths.
  bool closed = false;
  conn->set_close_handler([&](CloseReason) { closed = true; });
  conn->close();
  accepted->close();
  pair.sim.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(conn->state(), TcpState::Closed);
}

INSTANTIATE_TEST_SUITE_P(
    PathConditions, TcpTransferSweep,
    ::testing::Values(SweepParam{0.0, 0, 2000, false},
                      SweepParam{0.0, 0, 2000, true},
                      SweepParam{0.1, 0, 8000, false},
                      SweepParam{0.1, 0, 8000, true},
                      SweepParam{0.25, 0, 8000, true},
                      SweepParam{0.0, 25, 20000, true},   // heavy reordering
                      SweepParam{0.15, 10, 20000, false},
                      SweepParam{0.15, 10, 20000, true}));

class TcpLossRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossRateSweep, RetransmissionsScaleWithLoss) {
  const double loss = GetParam();
  netsim::LinkParams link;
  link.loss_rate = loss;
  TcpPair pair(true, link);
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(std::string(10000, 'z'));
  pair.sim.run();
  EXPECT_EQ(received.size(), 10000u);
  if (loss == 0.0) {
    EXPECT_EQ(conn->stats().retransmissions, 0u);
  } else {
    EXPECT_GT(conn->stats().retransmissions, 0u);
    EXPECT_GT(conn->stats().congestion_events, 0u);  // RTOs halve cwnd
  }
}

INSTANTIATE_TEST_SUITE_P(Losses, TcpLossRateSweep,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3));

}  // namespace
}  // namespace ecnprobe::tcp
