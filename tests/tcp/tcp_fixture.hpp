// Two hosts joined by a configurable link, each with a TCP stack: the
// fixture for handshake, transfer, teardown, and ECN-feedback tests.
#pragma once

#include <memory>

#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/tcp/tcp.hpp"

namespace ecnprobe::tcp::testutil {

struct TcpPair {
  netsim::Simulator sim;
  netsim::Network net{sim, util::Rng(1)};
  netsim::Host* client_host = nullptr;
  netsim::Host* server_host = nullptr;
  netsim::NodeId client_id = netsim::kInvalidNode;
  netsim::NodeId server_id = netsim::kInvalidNode;
  std::unique_ptr<TcpStack> client;
  std::unique_ptr<TcpStack> server;

  explicit TcpPair(bool server_ecn = true, netsim::LinkParams link = {},
                   TcpConfig client_config = {}) {
    auto a = std::make_unique<netsim::Host>("client", netsim::Host::Params{},
                                            util::Rng(11));
    auto b = std::make_unique<netsim::Host>("server", netsim::Host::Params{},
                                            util::Rng(22));
    client_host = a.get();
    server_host = b.get();
    client_id = net.add_node(std::move(a));
    server_id = net.add_node(std::move(b));
    client_host->set_address(wire::Ipv4Address(10, 0, 0, 1));
    server_host->set_address(wire::Ipv4Address(11, 0, 0, 1));
    net.connect(client_id, server_id, link);

    client = std::make_unique<TcpStack>(*client_host, client_config);
    TcpConfig server_config;
    server_config.ecn_enabled = server_ecn;
    server = std::make_unique<TcpStack>(*server_host, server_config);
  }
};

}  // namespace ecnprobe::tcp::testutil
