// TCP state-machine corner cases beyond the happy path.
#include <gtest/gtest.h>

#include "ecnprobe/tcp/tcp.hpp"
#include "tcp_fixture.hpp"

namespace ecnprobe::tcp {
namespace {

using namespace ecnprobe::util::literals;
using testutil::TcpPair;

TEST(TcpEdge, SimultaneousCloseReachesClosedOnBothEnds) {
  TcpPair pair;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) { accepted = conn; });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  ASSERT_TRUE(accepted);

  bool client_closed = false;
  bool server_closed = false;
  conn->set_close_handler([&](CloseReason r) {
    client_closed = true;
    EXPECT_EQ(r, CloseReason::Graceful);
  });
  accepted->set_close_handler([&](CloseReason r) {
    server_closed = true;
    EXPECT_EQ(r, CloseReason::Graceful);
  });
  // Both FINs race each other.
  conn->close();
  accepted->close();
  pair.sim.run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(conn->state(), TcpState::Closed);
  EXPECT_EQ(accepted->state(), TcpState::Closed);
}

TEST(TcpEdge, FinRetransmittedThroughLoss) {
  netsim::LinkParams lossy;
  lossy.loss_rate = 0.4;
  TcpPair pair(true, lossy);
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  ASSERT_TRUE(accepted);
  bool closed = false;
  conn->set_close_handler([&](CloseReason) { closed = true; });
  conn->close();
  accepted->close();
  pair.sim.run();
  // 40% loss per direction: teardown completes only thanks to FIN/ACK
  // retransmission.
  EXPECT_TRUE(closed);
}

TEST(TcpEdge, DuplicateSegmentsDeliveredOnce) {
  // Duplicate at the network level by replaying a captured data segment.
  TcpPair pair;
  std::string received;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  netsim::PacketCapture capture;
  pair.client_host->add_capture(&capture);
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(std::string_view("once"));
  pair.sim.run();
  ASSERT_EQ(received, "once");

  // Replay every captured outbound data segment verbatim.
  for (const auto& pkt : capture.packets()) {
    if (pkt.dir != netsim::Direction::Tx) continue;
    const auto seg =
        wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst, pkt.dgram.payload);
    if (!seg || seg->payload.empty()) continue;
    pair.client_host->send_datagram(pkt.dgram);
  }
  pair.sim.run();
  EXPECT_EQ(received, "once");  // duplicates ACKed but not re-delivered
  pair.client_host->remove_capture(&capture);
}

TEST(TcpEdge, HalfCloseAllowsServerToKeepSending) {
  TcpPair pair;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  std::string client_received;
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->set_receive_handler([&](std::span<const std::uint8_t> data) {
    client_received.append(data.begin(), data.end());
  });
  pair.sim.run();
  ASSERT_TRUE(accepted);

  conn->close();  // client FIN: half-close
  pair.sim.run();
  EXPECT_EQ(conn->state(), TcpState::FinWait2);
  EXPECT_EQ(accepted->state(), TcpState::CloseWait);

  accepted->send(std::string_view("late data"));
  pair.sim.run();
  EXPECT_EQ(client_received, "late data");  // receiving in FIN-WAIT-2 works

  accepted->close();
  pair.sim.run();
  EXPECT_EQ(conn->state(), TcpState::Closed);
}

TEST(TcpEdge, ListenerClosedStopsNewConnections) {
  TcpPair pair;
  pair.server->listen(80, [](std::shared_ptr<TcpConnection>) {});
  pair.server->close_listener(80);
  bool connected = true;
  pair.client->connect(pair.server_host->address(), 80, false,
                       [&](bool ok) { connected = ok; });
  pair.sim.run();
  EXPECT_FALSE(connected);
}

TEST(TcpEdge, RstToClosedPortCarriesAcceptableAck) {
  // The RST for a bare SYN must ack seq+1 so the initiator accepts it.
  TcpPair pair;
  netsim::PacketCapture capture;
  pair.client_host->add_capture(&capture);
  pair.client->connect(pair.server_host->address(), 81, false, [](bool) {});
  pair.sim.run();
  std::uint32_t syn_seq = 0;
  bool saw_rst = false;
  for (const auto& pkt : capture.packets()) {
    const auto seg =
        wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst, pkt.dgram.payload);
    if (!seg) continue;
    if (pkt.dir == netsim::Direction::Tx && seg->header.flags.syn) {
      syn_seq = seg->header.seq;
    }
    if (pkt.dir == netsim::Direction::Rx && seg->header.flags.rst) {
      saw_rst = true;
      EXPECT_TRUE(seg->header.flags.ack);
      EXPECT_EQ(seg->header.ack, syn_seq + 1);
    }
  }
  EXPECT_TRUE(saw_rst);
  pair.client_host->remove_capture(&capture);
}

TEST(TcpEdge, SynRetransmissionRecoversLostSynAck) {
  netsim::LinkParams lossy;
  lossy.loss_rate = 0.5;
  TcpPair pair(true, lossy);
  int accepted_count = 0;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection>) { ++accepted_count; });
  int connected = 0;
  int attempts = 0;
  // Several attempts; with 3 SYN retries each, most should get through.
  for (int i = 0; i < 10; ++i) {
    ++attempts;
    pair.client->connect(pair.server_host->address(), 80, false,
                         [&](bool ok) { connected += ok ? 1 : 0; });
    pair.sim.run();
  }
  EXPECT_GT(connected, attempts / 2);
}

TEST(TcpEdge, AbortBeforeEstablishFiresCallbackOnce) {
  TcpPair pair;
  pair.net.set_link_up(pair.client_id, 0, false);
  int callbacks = 0;
  auto conn = pair.client->connect(pair.server_host->address(), 80, false,
                                   [&](bool ok) {
                                     ++callbacks;
                                     EXPECT_FALSE(ok);
                                   });
  conn->close();  // local abort while SYN-SENT
  pair.sim.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(conn->state(), TcpState::Closed);
}

TEST(TcpEdge, StatsCountSegmentsAndBytes) {
  TcpPair pair;
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(std::string(5000, 'b'));
  pair.sim.run();
  ASSERT_TRUE(accepted);
  EXPECT_EQ(accepted->stats().bytes_delivered, 5000u);
  EXPECT_GE(conn->stats().segments_sent, 4u);   // SYN + >=4 data segments
  EXPECT_GE(accepted->stats().segments_received, 4u);
  EXPECT_EQ(conn->stats().retransmissions, 0u);  // clean link
}

}  // namespace
}  // namespace ecnprobe::tcp
