// MSS option negotiation: SYN/SYN-ACK carry the option and senders clamp
// segment sizes to the peer's advertised MSS.
#include <gtest/gtest.h>

#include "ecnprobe/netsim/capture.hpp"
#include "ecnprobe/tcp/tcp.hpp"
#include "tcp_fixture.hpp"

namespace ecnprobe::tcp {
namespace {

using testutil::TcpPair;

TEST(TcpMss, OptionCodecRoundTrip) {
  const auto option = wire::make_mss_option(1400);
  ASSERT_EQ(option.size(), 4u);
  EXPECT_EQ(option[0], 2);
  EXPECT_EQ(option[1], 4);
  const auto parsed = wire::find_mss_option(option);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 1400);
}

TEST(TcpMss, FindSkipsNopsAndUnknownOptions) {
  // NOP, NOP, unknown kind 8 len 10, MSS.
  std::vector<std::uint8_t> options = {1, 1, 8, 10, 0, 0, 0, 0, 0, 0, 0, 0};
  const auto mss = wire::make_mss_option(536);
  options.insert(options.end(), mss.begin(), mss.end());
  const auto parsed = wire::find_mss_option(options);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 536);
}

TEST(TcpMss, FindRejectsMalformed) {
  EXPECT_FALSE(wire::find_mss_option(std::vector<std::uint8_t>{2, 4, 5}));   // truncated
  EXPECT_FALSE(wire::find_mss_option(std::vector<std::uint8_t>{2, 3, 0}));   // bad length
  EXPECT_FALSE(wire::find_mss_option(std::vector<std::uint8_t>{8, 0}));      // len < 2
  EXPECT_FALSE(wire::find_mss_option(std::vector<std::uint8_t>{0, 2, 4}));   // EOL first
  EXPECT_FALSE(wire::find_mss_option({}));
}

TEST(TcpMss, SynCarriesConfiguredMss) {
  tcp::TcpConfig client_config;
  client_config.mss = 900;
  TcpPair pair(true, {}, client_config);
  netsim::PacketCapture capture;
  pair.client_host->add_capture(&capture);
  pair.server->listen(80, [](std::shared_ptr<TcpConnection>) {});
  pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  bool saw = false;
  for (const auto& pkt : capture.packets()) {
    if (pkt.dir != netsim::Direction::Tx) continue;
    const auto seg =
        wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst, pkt.dgram.payload);
    if (!seg || !seg->header.flags.syn) continue;
    const auto mss = wire::find_mss_option(seg->header.options);
    ASSERT_TRUE(mss.has_value());
    EXPECT_EQ(*mss, 900);
    saw = true;
  }
  EXPECT_TRUE(saw);
  pair.client_host->remove_capture(&capture);
}

TEST(TcpMss, SenderClampsToSmallerPeerMss) {
  // Server advertises a small MSS; the client's data segments must respect
  // it even though the client's own MSS is larger.
  tcp::TcpConfig client_config;
  client_config.mss = 1400;
  TcpPair pair(true, {}, client_config);
  // Shrink the server's MSS by rebuilding its stack.
  tcp::TcpConfig server_config;
  server_config.mss = 500;
  server_config.ecn_enabled = true;
  pair.server.reset();  // release the protocol handler before rebinding
  pair.server = std::make_unique<TcpStack>(*pair.server_host, server_config);

  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  netsim::PacketCapture capture;
  pair.client_host->add_capture(&capture);
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  conn->send(std::string(4000, 'm'));
  pair.sim.run();
  EXPECT_EQ(received.size(), 4000u);
  for (const auto& pkt : capture.packets()) {
    if (pkt.dir != netsim::Direction::Tx) continue;
    const auto seg =
        wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst, pkt.dgram.payload);
    if (!seg || seg->payload.empty()) continue;
    EXPECT_LE(seg->payload.size(), 500u);  // clamped to the peer's MSS
  }
  pair.client_host->remove_capture(&capture);
}

}  // namespace
}  // namespace ecnprobe::tcp
