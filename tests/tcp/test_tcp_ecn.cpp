// RFC 3168 ECN behaviour of the TCP stack: negotiation matrix, packet
// marking rules, and the CE -> ECE -> CWR feedback loop -- the machinery the
// paper's Section 4.3 experiment measures from the outside.
#include <gtest/gtest.h>

#include "ecnprobe/netsim/capture.hpp"
#include "ecnprobe/tcp/tcp.hpp"
#include "tcp_fixture.hpp"

namespace ecnprobe::tcp {
namespace {

using testutil::TcpPair;

// Negotiation matrix: (client requests, server willing) -> negotiated.
struct NegotiationCase {
  bool client_wants;
  bool server_willing;
  bool expect_negotiated;
};

class EcnNegotiation : public ::testing::TestWithParam<NegotiationCase> {};

TEST_P(EcnNegotiation, MatrixOutcome) {
  const auto param = GetParam();
  TcpPair pair(param.server_willing);
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) { accepted = conn; });
  auto conn = pair.client->connect(pair.server_host->address(), 80, param.client_wants,
                                   [](bool) {});
  pair.sim.run();
  ASSERT_TRUE(accepted);
  EXPECT_EQ(conn->ecn_negotiated(), param.expect_negotiated);
  EXPECT_EQ(accepted->ecn_negotiated(), param.expect_negotiated);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, EcnNegotiation,
    ::testing::Values(NegotiationCase{true, true, true},
                      NegotiationCase{true, false, false},
                      NegotiationCase{false, true, false},
                      NegotiationCase{false, false, false}));

TEST(TcpEcn, SynIsEcnSetupAndNotEctMarked) {
  TcpPair pair(true);
  netsim::PacketCapture capture;
  pair.client_host->add_capture(&capture);
  pair.server->listen(80, [](std::shared_ptr<TcpConnection>) {});
  pair.client->connect(pair.server_host->address(), 80, true, [](bool) {});
  pair.sim.run();

  bool saw_syn = false;
  bool saw_syn_ack = false;
  for (const auto& pkt : capture.packets()) {
    const auto seg =
        wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst, pkt.dgram.payload);
    ASSERT_TRUE(seg);
    if (seg->header.flags.syn && !seg->header.flags.ack) {
      saw_syn = true;
      EXPECT_TRUE(seg->header.is_ecn_setup_syn());
      // RFC 3168 6.1.1: the SYN itself must not be ECT-marked.
      EXPECT_EQ(pkt.dgram.ip.ecn, wire::Ecn::NotEct);
    }
    if (seg->header.flags.syn && seg->header.flags.ack) {
      saw_syn_ack = true;
      EXPECT_TRUE(seg->header.is_ecn_setup_syn_ack());
      EXPECT_EQ(pkt.dgram.ip.ecn, wire::Ecn::NotEct);
    }
  }
  EXPECT_TRUE(saw_syn);
  EXPECT_TRUE(saw_syn_ack);
  pair.client_host->remove_capture(&capture);
}

TEST(TcpEcn, DataIsEct0MarkedOnlyWhenNegotiated) {
  for (const bool negotiate : {true, false}) {
    TcpPair pair(true);
    netsim::PacketCapture capture;
    pair.client_host->add_capture(&capture);
    pair.server->listen(80, [](std::shared_ptr<TcpConnection> conn) {
      conn->set_receive_handler([](std::span<const std::uint8_t>) {});
    });
    auto conn =
        pair.client->connect(pair.server_host->address(), 80, negotiate, [](bool) {});
    conn->send(std::string_view("payload"));
    pair.sim.run();

    bool saw_data = false;
    for (const auto& pkt : capture.packets()) {
      if (pkt.dir != netsim::Direction::Tx) continue;
      const auto seg = wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst,
                                                pkt.dgram.payload);
      ASSERT_TRUE(seg);
      if (!seg->payload.empty()) {
        saw_data = true;
        EXPECT_EQ(pkt.dgram.ip.ecn, negotiate ? wire::Ecn::Ect0 : wire::Ecn::NotEct);
      } else if (!seg->header.flags.syn) {
        // Pure ACKs are never ECT (RFC 3168 6.1.4).
        EXPECT_EQ(pkt.dgram.ip.ecn, wire::Ecn::NotEct);
      }
    }
    EXPECT_TRUE(saw_data);
    pair.client_host->remove_capture(&capture);
  }
}

TEST(TcpEcn, CeMarkTriggersEceThenCwrClearsIt) {
  TcpPair pair(true);
  // Congest the client->server direction: every ECT data segment gets
  // CE-marked (mark_prob 1.0, no drops).
  pair.net.add_ingress_policy(pair.server_id, 0,
                              std::make_shared<netsim::CongestionPolicy>(1.0, 0.0));
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, true, [](bool) {});
  conn->send(std::string_view("first"));
  pair.sim.run();
  ASSERT_TRUE(accepted);
  EXPECT_TRUE(conn->ecn_negotiated());

  // The receiver saw CE and echoed ECE; the sender reacted and sent CWR.
  EXPECT_GT(accepted->stats().ce_received, 0u);
  EXPECT_GT(accepted->stats().ece_acks_sent, 0u);
  EXPECT_GT(conn->stats().ece_acks_received, 0u);
  EXPECT_GT(conn->stats().congestion_events, 0u);

  conn->send(std::string_view("second"));  // carries CWR
  pair.sim.run();
  EXPECT_GT(conn->stats().cwr_sent, 0u);
}

TEST(TcpEcn, NoEceWithoutNegotiation) {
  TcpPair pair(false);  // server refuses ECN
  pair.net.add_ingress_policy(pair.server_id, 0,
                              std::make_shared<netsim::CongestionPolicy>(1.0, 0.0));
  std::shared_ptr<TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, true, [](bool) {});
  conn->send(std::string_view("data"));
  pair.sim.run();
  ASSERT_TRUE(accepted);
  // Without negotiation the data was not ECT, so it could not be CE-marked,
  // and no ECE may be echoed.
  EXPECT_EQ(accepted->stats().ce_received, 0u);
  EXPECT_EQ(accepted->stats().ece_acks_sent, 0u);
  EXPECT_EQ(conn->stats().ece_acks_received, 0u);
}

TEST(TcpEcn, RetransmissionsAreNotEctMarked) {
  netsim::LinkParams link;
  link.loss_rate = 0.35;
  TcpPair pair(true, link);
  netsim::PacketCapture capture;
  pair.client_host->add_capture(&capture);
  pair.server->listen(80, [](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, true, [](bool) {});
  conn->send(std::string(8000, 'r'));
  pair.sim.run();
  ASSERT_GT(conn->stats().retransmissions, 0u);

  // Count data segments per sequence number: any seq seen more than once is
  // a retransmission and must be not-ECT (RFC 3168 6.1.5).
  std::map<std::uint32_t, int> seq_seen;
  for (const auto& pkt : capture.packets()) {
    if (pkt.dir != netsim::Direction::Tx) continue;
    const auto seg = wire::decode_tcp_segment(pkt.dgram.ip.src, pkt.dgram.ip.dst,
                                              pkt.dgram.payload);
    if (!seg || seg->payload.empty()) continue;
    const int count = ++seq_seen[seg->header.seq];
    if (count > 1) EXPECT_EQ(pkt.dgram.ip.ecn, wire::Ecn::NotEct);
  }
  pair.client_host->remove_capture(&capture);
}

TEST(TcpEcn, EcnConnectionCompletesUnderCongestionWithoutLoss) {
  TcpPair pair(true);
  // Mark-only congestion: ECN's whole point -- feedback without drops.
  pair.net.add_ingress_policy(pair.server_id, 0,
                              std::make_shared<netsim::CongestionPolicy>(0.5, 0.0));
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, true, [](bool) {});
  const std::string payload(20000, 'e');
  conn->send(payload);
  pair.sim.run();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(conn->stats().retransmissions, 0u);  // no losses, only marks
  EXPECT_GT(conn->stats().congestion_events, 0u);
}

}  // namespace
}  // namespace ecnprobe::tcp
