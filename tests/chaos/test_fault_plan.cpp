#include "ecnprobe/chaos/fault_plan.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::chaos {
namespace {

TEST(FaultPlan, NoneIsDisabled) {
  const auto plan = FaultPlan::parse("none");
  ASSERT_TRUE(plan);
  EXPECT_FALSE(plan->enabled());
  EXPECT_EQ(plan->name, "none");
}

TEST(FaultPlan, EveryNamedProfileParses) {
  for (const auto& name : FaultPlan::profile_names()) {
    const auto plan = FaultPlan::parse(name);
    ASSERT_TRUE(plan) << name;
    EXPECT_EQ(plan->name, name);
    EXPECT_EQ(plan->enabled(), name != "none") << name;
  }
}

TEST(FaultPlan, OverridesApplyOnTopOfProfile) {
  const auto plan = FaultPlan::parse("wan-chaos,corrupt-prob=0.5,chaos-links=9");
  ASSERT_TRUE(plan);
  EXPECT_DOUBLE_EQ(plan->corrupt_prob, 0.5);
  EXPECT_EQ(plan->chaos_links, 9);
  // Untouched profile defaults survive.
  EXPECT_DOUBLE_EQ(plan->reorder_prob, 0.30);
}

TEST(FaultPlan, PoisonIsRepeatableAndCrashAfterSticks) {
  const auto plan = FaultPlan::parse("none,poison=3,poison=7,crash-after=13");
  ASSERT_TRUE(plan);
  EXPECT_TRUE(plan->enabled());
  EXPECT_TRUE(plan->poisons(3));
  EXPECT_TRUE(plan->poisons(7));
  EXPECT_FALSE(plan->poisons(5));
  EXPECT_EQ(plan->crash_after_traces, 13);
}

TEST(FaultPlan, MalformedSpecsRejected) {
  EXPECT_FALSE(FaultPlan::parse(""));
  EXPECT_FALSE(FaultPlan::parse("not-a-profile"));
  EXPECT_FALSE(FaultPlan::parse("none,frob=1"));          // unknown key
  EXPECT_FALSE(FaultPlan::parse("none,corrupt-prob"));    // missing '='
  EXPECT_FALSE(FaultPlan::parse("none,corrupt-prob=x"));  // non-numeric
  EXPECT_FALSE(FaultPlan::parse("none,corrupt-prob=-1")); // negative
  EXPECT_FALSE(FaultPlan::parse("none,poison=-2"));
  EXPECT_FALSE(FaultPlan::parse("none,poison=1.5"));
}

TEST(FaultPlan, FingerprintSeparatesPlans) {
  const auto a = FaultPlan::parse("wan-chaos");
  const auto b = FaultPlan::parse("wan-chaos,corrupt-prob=0.021");
  const auto c = FaultPlan::parse("wan-chaos");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  ASSERT_TRUE(c);
  EXPECT_EQ(a->fingerprint(), c->fingerprint());
  EXPECT_NE(a->fingerprint(), b->fingerprint());
  // Fingerprints are prefixed with the profile name for readable errors.
  EXPECT_EQ(a->fingerprint().rfind("wan-chaos#", 0), 0u);
  // crash-after is executor behaviour, not campaign identity: a run
  // crashed via crash-after=N must be resumable without the crash hook.
  const auto crashing = FaultPlan::parse("wan-chaos,crash-after=3");
  ASSERT_TRUE(crashing);
  EXPECT_EQ(crashing->fingerprint(), a->fingerprint());
  EXPECT_NE(crashing->serialize(), a->serialize());
}

TEST(FaultPlan, SerializeIsCanonical) {
  // Same plan reached via different spellings serialises identically.
  const auto a = FaultPlan::parse("none,poison=7,poison=3");
  const auto b = FaultPlan::parse("none,poison=3,poison=7");
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->serialize(), b->serialize());
}

}  // namespace
}  // namespace ecnprobe::chaos
