// The breaker state machine, transition by transition. No clock, no RNG:
// the full behaviour is a function of the allow/success/failure call
// sequence, which is what makes breaker decisions shard-stable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ecnprobe/sched/circuit_breaker.hpp"

namespace ecnprobe::sched {
namespace {

BreakerPolicy policy(int failures, int half_open_after) {
  BreakerPolicy p;
  p.enabled = true;
  p.failure_threshold = failures;
  p.half_open_after = half_open_after;
  return p;
}

std::string transition(CircuitBreaker::State from, CircuitBreaker::State to) {
  return std::string(to_string(from)) + "->" + std::string(to_string(to));
}

TEST(CircuitBreaker, StaysClosedBelowThreshold) {
  CircuitBreaker breaker(policy(3, 2));
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(breaker.allow());
  breaker.on_success();  // resets the consecutive count
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreaker, OpensOnConsecutiveFailuresAndSkips) {
  std::vector<std::string> log;
  CircuitBreaker breaker(policy(3, 4), [&](auto from, auto to) {
    log.push_back(transition(from, to));
  });
  for (int i = 0; i < 3; ++i) breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  ASSERT_EQ(log, std::vector<std::string>{"closed->open"});
  // Open swallows requests until the half-open trial is due.
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_TRUE(breaker.allow());  // 4th request: the trial
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_EQ(log.back(), "open->half-open");
}

TEST(CircuitBreaker, HalfOpenTrialSuccessCloses) {
  std::vector<std::string> log;
  CircuitBreaker breaker(policy(1, 1), [&](auto from, auto to) {
    log.push_back(transition(from, to));
  });
  breaker.on_failure();
  EXPECT_TRUE(breaker.allow());  // immediately half-open with half_open_after=1
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  EXPECT_EQ(log, (std::vector<std::string>{"closed->open", "open->half-open",
                                           "half-open->closed"}));
  // Fully recovered: the failure count restarts from zero.
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, HalfOpenTrialFailureReopens) {
  CircuitBreaker breaker(policy(2, 2));
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());
  EXPECT_TRUE(breaker.allow());  // trial
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  // The skip count restarted: another full wait before the next trial.
  EXPECT_FALSE(breaker.allow());
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_EQ(to_string(CircuitBreaker::State::Closed), "closed");
  EXPECT_EQ(to_string(CircuitBreaker::State::Open), "open");
  EXPECT_EQ(to_string(CircuitBreaker::State::HalfOpen), "half-open");
}

}  // namespace
}  // namespace ecnprobe::sched
