// Property test over the backoff schedule builder: 10,000 random seeds
// and policies, three invariants that must hold for every one of them.
//
//   1. monotone: the schedule never shrinks between attempts;
//   2. bounded: every entry lies within [base*(1-jitter), max*(1+jitter)]
//      (the monotonicity clamp can only raise an entry toward a value that
//      itself satisfied the upper bound, so the bound survives clamping);
//   3. budgeted: when a total budget is set, the schedule's sum fits it --
//      except the guaranteed first attempt, which survives any budget.
#include <gtest/gtest.h>

#include <cstdint>

#include "ecnprobe/sched/policy.hpp"

namespace ecnprobe::sched {
namespace {

TEST(RetryScheduleProperty, TenThousandSeedsHoldAllInvariants) {
  util::Rng meta(0xECCE5EED);
  int budgeted_runs = 0;
  for (int trial = 0; trial < 10'000; ++trial) {
    RetryPolicy policy;
    policy.kind = RetryPolicy::Kind::Backoff;
    policy.max_attempts = static_cast<int>(meta.uniform_int(1, 8));
    policy.base_timeout =
        util::SimDuration::millis(meta.uniform_int(50, 2'000));
    policy.backoff_factor = meta.uniform(1.0, 3.0);
    policy.max_timeout =
        policy.base_timeout + util::SimDuration::millis(meta.uniform_int(0, 10'000));
    policy.jitter = meta.bernoulli(0.7) ? meta.uniform(0.0, 0.9) : 0.0;
    const bool budgeted = meta.bernoulli(0.5);
    if (budgeted) {
      policy.total_budget =
          policy.base_timeout + util::SimDuration::millis(meta.uniform_int(0, 20'000));
      ++budgeted_runs;
    }

    const std::uint64_t seed = meta.next_u64();
    util::Rng rng(seed);
    const auto schedule = build_retry_schedule(policy, rng);

    ASSERT_FALSE(schedule.empty()) << "trial " << trial << " seed " << seed;
    ASSERT_LE(schedule.size(), static_cast<std::size_t>(policy.max_attempts));

    const double lo = static_cast<double>(policy.base_timeout.count_nanos()) *
                      (1.0 - policy.jitter);
    const double hi = static_cast<double>(policy.max_timeout.count_nanos()) *
                      (1.0 + policy.jitter);
    std::int64_t prev_ns = 0;
    std::int64_t sum_ns = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const std::int64_t t_ns = schedule[i].count_nanos();
      EXPECT_GE(t_ns, prev_ns) << "not monotone at attempt " << i << ", trial "
                               << trial << " seed " << seed;
      // +/-1ns of slack for the double->int64 truncation in the builder.
      EXPECT_GE(static_cast<double>(t_ns), lo - 1.0)
          << "below jitter floor at attempt " << i << ", trial " << trial;
      EXPECT_LE(static_cast<double>(t_ns), hi + 1.0)
          << "above jitter ceiling at attempt " << i << ", trial " << trial;
      prev_ns = t_ns;
      sum_ns += t_ns;
    }
    if (policy.total_budget.count_nanos() > 0 && schedule.size() > 1) {
      EXPECT_LE(sum_ns, policy.total_budget.count_nanos())
          << "budget exceeded, trial " << trial << " seed " << seed;
    }

    // Same seed, same schedule: the builder is a pure function.
    util::Rng replay(seed);
    EXPECT_EQ(build_retry_schedule(policy, replay), schedule);
  }
  // The generator must actually exercise the budget branch.
  EXPECT_GT(budgeted_runs, 3'000);
}

}  // namespace
}  // namespace ecnprobe::sched
