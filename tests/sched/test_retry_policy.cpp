// Retry-schedule construction and SupervisorConfig validation/round-trip.
// The paper-fixed policy is load-bearing for the byte-identity contract:
// it must produce the inline loop's exact schedule while consuming zero
// RNG draws.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ecnprobe/sched/policy.hpp"

namespace ecnprobe::sched {
namespace {

using util::SimDuration;

TEST(RetryPolicy, PaperFixedScheduleIsFlatAndDrawsNothing) {
  RetryPolicy policy;  // defaults: PaperFixed, 5 x 1s
  util::Rng rng(1234);
  util::Rng untouched(1234);
  const auto schedule = build_retry_schedule(policy, rng);
  ASSERT_EQ(schedule.size(), 5u);
  for (const auto& t : schedule) EXPECT_EQ(t, SimDuration::seconds(1));
  // The stream position must be exactly where it started.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(RetryPolicy, BackoffWithoutJitterIsTheTextbookSequence) {
  RetryPolicy policy;
  policy.kind = RetryPolicy::Kind::Backoff;
  policy.max_attempts = 5;
  policy.base_timeout = SimDuration::seconds(1);
  policy.backoff_factor = 2.0;
  policy.max_timeout = SimDuration::seconds(8);
  util::Rng rng(1);
  util::Rng untouched(1);
  const auto schedule = build_retry_schedule(policy, rng);
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_EQ(schedule[0], SimDuration::seconds(1));
  EXPECT_EQ(schedule[1], SimDuration::seconds(2));
  EXPECT_EQ(schedule[2], SimDuration::seconds(4));
  EXPECT_EQ(schedule[3], SimDuration::seconds(8));
  EXPECT_EQ(schedule[4], SimDuration::seconds(8));  // capped
  // jitter == 0 must also be draw-free.
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());
}

TEST(RetryPolicy, BudgetDropsAttemptsThatDoNotFit) {
  RetryPolicy policy;
  policy.kind = RetryPolicy::Kind::Backoff;
  policy.max_attempts = 5;
  policy.base_timeout = SimDuration::seconds(1);
  policy.backoff_factor = 2.0;
  policy.max_timeout = SimDuration::seconds(8);
  policy.total_budget = SimDuration::from_seconds(3.5);
  util::Rng rng(1);
  const auto schedule = build_retry_schedule(policy, rng);
  // 1s fits, 1+2 = 3s fits, 1+2+4 = 7s > 3.5s: dropped.
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0], SimDuration::seconds(1));
  EXPECT_EQ(schedule[1], SimDuration::seconds(2));
}

TEST(RetryPolicy, FirstAttemptSurvivesAnyBudget) {
  RetryPolicy policy;
  policy.kind = RetryPolicy::Kind::Backoff;
  policy.max_attempts = 3;
  policy.base_timeout = SimDuration::seconds(2);
  policy.total_budget = SimDuration::seconds(2);
  util::Rng rng(1);
  const auto schedule = build_retry_schedule(policy, rng);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0], SimDuration::seconds(2));
}

TEST(RetryPolicy, JitteredScheduleIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.kind = RetryPolicy::Kind::Backoff;
  policy.jitter = 0.3;
  util::Rng a(99), b(99), c(100);
  const auto sa = build_retry_schedule(policy, a);
  const auto sb = build_retry_schedule(policy, b);
  const auto sc = build_retry_schedule(policy, c);
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);  // different seed, different jitter
}

TEST(SupervisorConfig, PaperDefaultPredicate) {
  EXPECT_TRUE(SupervisorConfig::paper_default().is_paper_default());

  SupervisorConfig config;
  config.retry.kind = RetryPolicy::Kind::Backoff;
  EXPECT_FALSE(config.is_paper_default());

  config = {};
  config.breaker.enabled = true;
  EXPECT_FALSE(config.is_paper_default());

  config = {};
  config.pacer.enabled = true;
  EXPECT_FALSE(config.is_paper_default());

  config = {};
  config.watchdog.deadline = SimDuration::seconds(30);
  EXPECT_FALSE(config.is_paper_default());

  // Tuning knobs that only matter under backoff leave the default intact.
  config = {};
  config.retry.max_attempts = 7;
  EXPECT_TRUE(config.is_paper_default());
}

TEST(SupervisorConfig, ValidateRejectsOutOfRangeFields) {
  const auto expect_invalid = [](auto mutate) {
    SupervisorConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_invalid([](SupervisorConfig& c) { c.retry.max_attempts = 0; });
  expect_invalid([](SupervisorConfig& c) { c.retry.base_timeout = {}; });
  expect_invalid([](SupervisorConfig& c) { c.retry.backoff_factor = 0.5; });
  expect_invalid([](SupervisorConfig& c) { c.retry.max_timeout = SimDuration::millis(1); });
  expect_invalid([](SupervisorConfig& c) { c.retry.jitter = 1.0; });
  expect_invalid([](SupervisorConfig& c) { c.retry.jitter = -0.1; });
  expect_invalid([](SupervisorConfig& c) {
    c.retry.total_budget = SimDuration::millis(10);  // < one base timeout
  });
  expect_invalid([](SupervisorConfig& c) {
    c.retry.hedge_delay = SimDuration::millis(200);  // hedging needs backoff
  });
  expect_invalid([](SupervisorConfig& c) {
    c.breaker.enabled = true;
    c.breaker.failure_threshold = 0;
  });
  expect_invalid([](SupervisorConfig& c) {
    c.breaker.enabled = true;
    c.breaker.half_open_after = 0;
  });
  expect_invalid([](SupervisorConfig& c) { c.pacer.enabled = true; });  // rate 0
  expect_invalid([](SupervisorConfig& c) {
    c.pacer.enabled = true;
    c.pacer.rate_per_sec = 10.0;
    c.pacer.burst = 0;
  });
  EXPECT_NO_THROW(SupervisorConfig::paper_default().validate());
}

TEST(SupervisorConfig, ParseSerializeRoundTrip) {
  const auto parsed = SupervisorConfig::parse(
      "backoff,max-attempts=4,base-ms=500,factor=1.5,max-ms=4000,jitter=0.2,"
      "budget-ms=9000,hedge-ms=250,breaker-failures=2,breaker-half-open=3,"
      "pace-rate=40,pace-burst=4,pace-dest-gap-ms=10,watchdog-ms=20000,seed=7");
  ASSERT_TRUE(parsed) << parsed.error().message;
  EXPECT_EQ(parsed->retry.kind, RetryPolicy::Kind::Backoff);
  EXPECT_EQ(parsed->retry.max_attempts, 4);
  EXPECT_EQ(parsed->retry.base_timeout, SimDuration::millis(500));
  EXPECT_TRUE(parsed->breaker.enabled);
  EXPECT_TRUE(parsed->pacer.enabled);
  EXPECT_EQ(parsed->watchdog.deadline, SimDuration::seconds(20));
  EXPECT_EQ(parsed->seed, 7u);

  const auto reparsed = SupervisorConfig::parse(parsed->serialize());
  ASSERT_TRUE(reparsed) << reparsed.error().message;
  EXPECT_EQ(reparsed->serialize(), parsed->serialize());
}

TEST(SupervisorConfig, ParseRejectsGarbage) {
  EXPECT_FALSE(SupervisorConfig::parse(""));
  EXPECT_FALSE(SupervisorConfig::parse("bogus"));
  EXPECT_FALSE(SupervisorConfig::parse("paper,unknown-key=1"));
  EXPECT_FALSE(SupervisorConfig::parse("backoff,jitter=1.5"));
  EXPECT_FALSE(SupervisorConfig::parse("backoff,max-attempts=0"));
  EXPECT_FALSE(SupervisorConfig::parse("backoff,base-ms=nope"));
  EXPECT_FALSE(SupervisorConfig::parse("paper,hedge-ms=100"));  // needs backoff
  EXPECT_FALSE(SupervisorConfig::parse("backoff,pace-rate=0"));
  EXPECT_TRUE(SupervisorConfig::parse("paper"));
  EXPECT_TRUE(SupervisorConfig::parse("backoff"));
}

}  // namespace
}  // namespace ecnprobe::sched
