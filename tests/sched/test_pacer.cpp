// Token-bucket pacing arithmetic. Everything is integer nanoseconds, so
// the expected launch times can be asserted exactly.
#include <gtest/gtest.h>

#include "ecnprobe/sched/pacer.hpp"

namespace ecnprobe::sched {
namespace {

using util::SimDuration;
using util::SimTime;

PacerPolicy rate(double per_sec, int burst = 1) {
  PacerPolicy p;
  p.enabled = true;
  p.rate_per_sec = per_sec;
  p.burst = burst;
  return p;
}

const wire::Ipv4Address kDestA(0x0a000001);
const wire::Ipv4Address kDestB(0x0a000002);

TEST(Pacer, FullBucketLetsTheFirstBurstThrough) {
  Pacer pacer(rate(10.0, 3));  // 100ms interval, 3 tokens
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pacer.acquire(SimTime::zero(), kDestA), SimTime::zero());
    EXPECT_FALSE(pacer.last_delayed());
  }
  // Fourth send at t=0: the bucket is empty, wait one full interval.
  EXPECT_EQ(pacer.acquire(SimTime::zero(), kDestA),
            SimTime::zero() + SimDuration::millis(100));
  EXPECT_TRUE(pacer.last_delayed());
}

TEST(Pacer, SteadyStateSpacingIsTheConfiguredInterval) {
  Pacer pacer(rate(10.0, 1));  // 100ms interval
  SimTime now = SimTime::zero();
  EXPECT_EQ(pacer.acquire(now, kDestA), now);  // free first token
  // Back-to-back requests at the same instant each wait one more interval.
  EXPECT_EQ(pacer.acquire(now, kDestA), now + SimDuration::millis(100));
  EXPECT_EQ(pacer.acquire(now + SimDuration::millis(100), kDestA),
            now + SimDuration::millis(200));
}

TEST(Pacer, ElapsedTimeRefillsTheBucket) {
  Pacer pacer(rate(10.0, 2));  // 100ms interval, cap 200ms of credit
  EXPECT_EQ(pacer.acquire(SimTime::zero(), kDestA), SimTime::zero());
  EXPECT_EQ(pacer.acquire(SimTime::zero(), kDestA), SimTime::zero());
  // 350ms later the bucket is capped back at 2 tokens, not 3.5.
  const SimTime later = SimTime::zero() + SimDuration::millis(350);
  EXPECT_EQ(pacer.acquire(later, kDestA), later);
  EXPECT_EQ(pacer.acquire(later, kDestA), later);
  EXPECT_EQ(pacer.acquire(later, kDestA), later + SimDuration::millis(100));
}

TEST(Pacer, PerDestinationGapIsIndependentOfTheBucket) {
  // Rate 0 leaves the token bucket out entirely (validate() forbids the
  // combination on a SupervisorConfig, but the Pacer itself treats it as
  // gap-only), so this isolates the per-destination gap arithmetic.
  PacerPolicy policy;
  policy.enabled = true;
  policy.rate_per_sec = 0.0;
  policy.per_dest_gap = SimDuration::millis(50);
  Pacer pacer(policy);
  const SimTime now = SimTime::zero();
  EXPECT_EQ(pacer.acquire(now, kDestA), now);
  // Same destination too soon: pushed to the gap. Other destination: free.
  EXPECT_EQ(pacer.acquire(now, kDestB), now);
  EXPECT_EQ(pacer.acquire(now, kDestA), now + SimDuration::millis(50));
  EXPECT_TRUE(pacer.last_delayed());
  // The gap chains from the (delayed) launch time, not the request time.
  EXPECT_EQ(pacer.acquire(now + SimDuration::millis(60), kDestA),
            now + SimDuration::millis(100));
}

TEST(Pacer, LaunchTimesAreNonDecreasing) {
  Pacer pacer(rate(1000.0, 1));
  SimTime now = SimTime::zero();
  SimTime prev = SimTime::zero();
  for (int i = 0; i < 64; ++i) {
    const SimTime launch = pacer.acquire(now, i % 2 == 0 ? kDestA : kDestB);
    EXPECT_GE(launch, prev);
    EXPECT_GE(launch, now);
    prev = launch;
    if (i % 3 == 0) now += SimDuration::micros(700);
  }
}

TEST(Pacer, DisabledPolicyNeverDelays) {
  Pacer pacer(PacerPolicy{});  // enabled=false
  const SimTime now = SimTime::zero() + SimDuration::seconds(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pacer.acquire(now, kDestA), now);
    EXPECT_FALSE(pacer.last_delayed());
  }
}

}  // namespace
}  // namespace ecnprobe::sched
