// Export snapshot for the supervisor's metric families: drive a
// TraceSupervisor until every sched_* family exists, then pin how the
// JSON and Prometheus encoders render them -- including label values
// hostile to both formats (quotes, backslashes, newlines), which reach
// the exporters through vantage names.
#include <gtest/gtest.h>

#include <string>

#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/sched/supervisor.hpp"

namespace ecnprobe::sched {
namespace {

const wire::Ipv4Address kDead(0x0a000001);
const wire::Ipv4Address kAlive(0x0a000002);

SupervisorConfig exercised_config() {
  SupervisorConfig config;
  config.retry.kind = RetryPolicy::Kind::Backoff;
  config.breaker.enabled = true;
  config.breaker.failure_threshold = 1;
  config.breaker.half_open_after = 2;
  config.pacer.enabled = true;
  config.pacer.rate_per_sec = 10.0;  // 100ms interval, burst 1
  return config;
}

TEST(SchedMetricsExport, EveryFamilyRendersInJsonAndPrometheus) {
  obs::Observability obs;
  // Group names flow into label values verbatim; use one that attacks
  // both encoders at once.
  TraceSupervisor supervisor(
      exercised_config(), obs,
      [](wire::Ipv4Address) { return std::string("AS\"ev\\il\"\n7"); });

  supervisor.count_attempts("udp-plain", 3);
  supervisor.count_attempts("udp-ect0", 1);
  supervisor.on_step_result(kDead, false);   // trips the server breaker
  EXPECT_FALSE(supervisor.allow_step(kDead));
  supervisor.record_skip(kDead, "server");
  supervisor.on_server_result(kDead, false);  // trips the hostile group
  EXPECT_FALSE(supervisor.allow_server(kAlive));
  supervisor.record_skip(kAlive, "group");
  supervisor.pace(util::SimTime::zero(), kDead);
  supervisor.pace(util::SimTime::zero(), kDead);  // bucket empty: delayed
  // A vantage name that attacks both encoders at once: quote, backslash,
  // and newline all flow into the label value verbatim.
  supervisor.count_watchdog_cancel("EC2 \"ev\\il\"\n7");

  const auto snapshot = obs.registry.snapshot();
  const std::string json = obs::to_json(snapshot);
  const std::string prom = obs::to_prometheus(snapshot);

  for (const char* family :
       {"sched_retry_attempts_total", "sched_breaker_transitions_total",
        "sched_breaker_skips_total", "sched_pacer_delays_total",
        "sched_pacer_wait_ms", "sched_pacer_queue_depth",
        "sched_watchdog_cancellations_total"}) {
    EXPECT_NE(json.find(family), std::string::npos) << "json missing " << family;
    EXPECT_NE(prom.find(family), std::string::npos) << "prom missing " << family;
  }

  // Exact sample lines, escaping included.
  EXPECT_NE(prom.find("sched_retry_attempts_total{attempts=\"3\",test=\"udp-plain\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sched_breaker_skips_total{scope=\"server\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sched_breaker_transitions_total{scope=\"server\",to=\"open\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sched_watchdog_cancellations_total"
                      "{vantage=\"EC2 \\\"ev\\\\il\\\"\\n7\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("sched_pacer_wait_ms_bucket{le=\"100\"} 1"), std::string::npos)
      << prom;

  // The hostile vantage label: quote, backslash, and newline all escaped
  // in both formats, never raw; the group breaker (whose name stays an
  // internal key, not a label) still renders its scoped transition.
  EXPECT_NE(prom.find("scope=\"group\",to=\"open\""), std::string::npos) << prom;
  EXPECT_NE(json.find("EC2 \\\"ev\\\\il\\\"\\n7"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "raw newline leaked into JSON";

  // Determinism: encoding the same snapshot twice yields the same bytes.
  EXPECT_EQ(obs::to_json(snapshot), json);
  EXPECT_EQ(obs::to_prometheus(snapshot), prom);
}

TEST(SchedMetricsExport, PaperDefaultCreatesNoSchedFamilies) {
  obs::Observability obs;
  TraceSupervisor supervisor(SupervisorConfig::paper_default(), obs, nullptr);
  EXPECT_TRUE(supervisor.allow_server(kDead));
  EXPECT_TRUE(supervisor.allow_step(kDead));
  supervisor.on_step_result(kDead, false);
  supervisor.on_server_result(kDead, false);
  EXPECT_EQ(supervisor.pace(util::SimTime::zero(), kDead), util::SimTime::zero());
  const std::string json = obs::to_json(obs.registry.snapshot());
  EXPECT_EQ(json.find("sched_"), std::string::npos) << json;
}

}  // namespace
}  // namespace ecnprobe::sched
