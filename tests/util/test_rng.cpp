#include "ecnprobe/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ecnprobe::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, DoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyApproximatesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng base(100);
  Rng fork_a = base.fork("alpha");
  Rng fork_a2 = Rng(100).fork("alpha");
  Rng fork_b = base.fork("beta");
  EXPECT_EQ(fork_a.next_u64(), fork_a2.next_u64());  // label-stable
  EXPECT_NE(fork_a.next_u64(), fork_b.next_u64());
}

TEST(Rng, DeriveSeedDiffersByLabel) {
  EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
  EXPECT_EQ(derive_seed(1, "a"), derive_seed(1, "a"));
}

// -- split() property tests ---------------------------------------------
//
// The parallel campaign executor leans on split() for per-shard seed
// derivation: child streams must be (a) a pure function of (seed, i), so
// any worker can re-derive any shard's stream; (b) stable across platforms
// and compilers, so results CSVs reproduce everywhere; and (c) pairwise
// non-overlapping, so shards never observe correlated randomness.

TEST(RngSplit, ChildrenAreStableAndIndependentOfParentPosition) {
  Rng parent(2025);
  Rng drained(2025);
  for (int i = 0; i < 5000; ++i) drained.next_u64();  // position must not matter

  auto children = parent.split(4);
  ASSERT_EQ(children.size(), 4u);
  auto children2 = drained.split(4);
  for (std::size_t i = 0; i < children.size(); ++i) {
    EXPECT_EQ(children[i].seed(), children2[i].seed());
    EXPECT_EQ(children[i].next_u64(), children2[i].next_u64());
    // split_stream(i) is the same family as split(n)[i].
    EXPECT_EQ(Rng(2025).split_stream(i).seed(), children[i].seed());
  }
}

TEST(RngSplit, GoldenFirstDrawsPinCrossPlatformStability) {
  // Golden values for xoshiro256** under the split derivation chain. If
  // these change, every recorded campaign CSV in EXPERIMENTS.md silently
  // stops reproducing -- treat a failure here as an ABI break, not a test
  // to update casually.
  Rng base(42);
  auto children = base.split(3);
  ASSERT_EQ(children.size(), 3u);
  const std::uint64_t expected_seeds[3] = {0x2275b67f017666eeULL, 0x02c0e7f6c0fd9448ULL,
                                           0xbf44a43461d3089eULL};
  const std::uint64_t expected_first_draws[3] = {0x29d8fb23040b435aULL, 0x7a8ca11588680f50ULL,
                                                 0x51aea55181616732ULL};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(children[i].seed(), expected_seeds[i]);
    EXPECT_EQ(children[i].next_u64(), expected_first_draws[i]);
  }
}

TEST(RngSplit, ChildrenDoNotCollideWithForkStreams) {
  Rng base(7);
  std::set<std::uint64_t> seeds;
  for (auto& child : base.split(8)) seeds.insert(child.seed());
  EXPECT_EQ(seeds.size(), 8u);  // distinct among themselves
  // ...and distinct from the label/salt fork domains for small indices,
  // where an un-domain-separated scheme would collide.
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    EXPECT_EQ(seeds.count(base.fork(salt).seed()), 0u);
  }
  EXPECT_EQ(seeds.count(base.fork("split").seed()), 0u);
}

TEST(RngSplit, FirstTenThousandDrawsPairwiseNonOverlapping) {
  Rng base(1234);
  auto children = base.split(8);
  constexpr int kDraws = 10000;
  // A shared set of all draws: with 80k samples from a 2^64 space, any
  // repeated value overwhelmingly indicates overlapping streams rather
  // than a birthday coincidence (collision prob ~ 1.7e-10).
  std::set<std::uint64_t> all;
  for (auto& child : children) {
    for (int d = 0; d < kDraws; ++d) {
      EXPECT_TRUE(all.insert(child.next_u64()).second)
          << "duplicate draw across split streams";
    }
  }
  EXPECT_EQ(all.size(), children.size() * static_cast<std::size_t>(kDraws));
}

TEST(Rng, GeometricCapsAndZeroAtCertainSuccess) {
  Rng rng(55);
  EXPECT_EQ(rng.geometric(1.0), 0);
  EXPECT_EQ(rng.geometric(0.0, 42), 42);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.geometric(0.5, 10), 10);
}

TEST(Rng, ParetoAboveMinimum) {
  Rng rng(60);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

}  // namespace
}  // namespace ecnprobe::util
