#include "ecnprobe/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ecnprobe::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, DoubleInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyApproximatesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng base(100);
  Rng fork_a = base.fork("alpha");
  Rng fork_a2 = Rng(100).fork("alpha");
  Rng fork_b = base.fork("beta");
  EXPECT_EQ(fork_a.next_u64(), fork_a2.next_u64());  // label-stable
  EXPECT_NE(fork_a.next_u64(), fork_b.next_u64());
}

TEST(Rng, DeriveSeedDiffersByLabel) {
  EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
  EXPECT_EQ(derive_seed(1, "a"), derive_seed(1, "a"));
}

TEST(Rng, GeometricCapsAndZeroAtCertainSuccess) {
  Rng rng(55);
  EXPECT_EQ(rng.geometric(1.0), 0);
  EXPECT_EQ(rng.geometric(0.0, 42), 42);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.geometric(0.5, 10), 10);
}

TEST(Rng, ParetoAboveMinimum) {
  Rng rng(60);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

}  // namespace
}  // namespace ecnprobe::util
