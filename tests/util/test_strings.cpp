#include "ecnprobe/util/strings.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::util {
namespace {

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(Strf, LongOutputAllocatesCorrectly) {
  const std::string long_arg(5000, 'a');
  const auto out = strf("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparatorGivesWholeString) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("MiXeD123"), "mixed123"); }

TEST(CaseInsensitive, StartsWithAndEquals) {
  EXPECT_TRUE(istarts_with("Content-Length: 5", "content-length"));
  EXPECT_FALSE(istarts_with("Con", "content"));
  EXPECT_TRUE(iequals("HTTP/1.0", "http/1.0"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(155439), "155,439");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace ecnprobe::util
