#include "ecnprobe/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

namespace ecnprobe::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ThrowingTaskRethrownFromWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ++ran; });
  pool.submit([] { throw std::runtime_error("task blew up"); });
  pool.submit([&ran] { ++ran; });
  try {
    pool.wait_idle();
    FAIL() << "wait_idle() swallowed the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task blew up");
  }
  // The tasks around the throwing one still ran.
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins) {
  ThreadPool pool(1);  // one worker: deterministic task order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  std::string caught;
  try {
    pool.wait_idle();
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  EXPECT_EQ(caught, "first");
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool accepts and runs new work, and the
  // next wait_idle() returns cleanly.
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, DestructorSurvivesUnreportedException) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never waited on"); });
    pool.submit([&ran] { ++ran; });
    // No wait_idle(): the destructor must drain and join without
    // terminating the process.
  }
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace ecnprobe::util
