#include "ecnprobe/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ecnprobe::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Quantile, EmptyIsZero) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
  EXPECT_NEAR(fit.predict(100.0), 203.0, 1e-9);
}

TEST(LinearFit, ConstantXGivesZeroSlope) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 5.0, 9.0};
  const auto fit = linear_fit(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
}

TEST(LogisticFit, RecoversSigmoid) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 2000; x <= 2016; x += 1.0) {
    xs.push_back(x);
    ys.push_back(100.0 / (1.0 + std::exp(-0.5 * (x - 2010.0))));
  }
  const auto fit = logistic_fit(xs, ys, 100.0);
  EXPECT_NEAR(fit.midpoint, 2010.0, 0.2);
  EXPECT_NEAR(fit.rate, 0.5, 0.05);
  EXPECT_NEAR(fit.predict(2010.0), 50.0, 2.0);
}

TEST(Pearson, PerfectAndAnticorrelated) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Pearson, NoVarianceGivesZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_EQ(pearson(xs, flat), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

}  // namespace
}  // namespace ecnprobe::util
