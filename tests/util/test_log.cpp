// Thread-safety contract of util::log: level filtering is atomic, a sink
// captures whole lines, and concurrent writers never interleave mid-line.
#include "ecnprobe/util/log.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ecnprobe::util {
namespace {

struct SinkCapture {
  std::mutex mutex;
  std::vector<std::pair<LogLevel, std::string>> lines;

  LogSink sink() {
    return [this](LogLevel level, const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.emplace_back(level, line);
    };
  }
};

struct LogTest : ::testing::Test {
  LogLevel saved = log_level();
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(saved);
  }
};

TEST_F(LogTest, SinkReceivesFormattedLevelFilteredLines) {
  SinkCapture capture;
  set_log_sink(capture.sink());
  set_log_level(LogLevel::Info);

  log_debug("invisible %d", 1);  // below the level
  log_info("count=%d name=%s", 42, "probe");
  log_error("boom");

  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.lines[0].first, LogLevel::Info);
  EXPECT_EQ(capture.lines[0].second, "[INFO] count=42 name=probe");
  EXPECT_EQ(capture.lines[1].first, LogLevel::Error);
  EXPECT_EQ(capture.lines[1].second, "[ERROR] boom");
}

TEST_F(LogTest, LevelOffSilencesEverything) {
  SinkCapture capture;
  set_log_sink(capture.sink());
  set_log_level(LogLevel::Off);
  log_error("should not appear");
  EXPECT_TRUE(capture.lines.empty());
}

TEST_F(LogTest, ConcurrentWritersProduceIntactLines) {
  SinkCapture capture;
  set_log_sink(capture.sink());
  set_log_level(LogLevel::Info);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_info("worker=%d message=%d tail", t, i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(capture.lines.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (const auto& [level, line] : capture.lines) {
    // Every captured line is a complete, un-torn message.
    EXPECT_EQ(line.rfind("[INFO] worker=", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 5), " tail") << line;
  }
}

}  // namespace
}  // namespace ecnprobe::util
