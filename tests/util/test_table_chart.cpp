#include <gtest/gtest.h>

#include <sstream>

#include "ecnprobe/util/chart.hpp"
#include "ecnprobe/util/table.hpp"

namespace ecnprobe::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"Region", "Count"}, {TextTable::Align::Left, TextTable::Align::Right});
  table.add_row({"Europe", "1664"});
  table.add_row({"Africa", "22"});
  const auto out = table.to_string();
  EXPECT_NE(out.find("Europe   1664"), std::string::npos);
  EXPECT_NE(out.find("Africa     22"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({"a"}, {TextTable::Align::Left, TextTable::Align::Left}),
               std::invalid_argument);
}

TEST(TextTable, ValueRowFormatting) {
  TextTable table({"x", "y"});
  table.add_row_values({1.234, 5.678}, 1);
  EXPECT_NE(table.to_string().find("1.2  5.7"), std::string::npos);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(BarChart, BarsScaleWithValues) {
  BarChartOptions opts;
  opts.y_min = 0.0;
  opts.y_max = 100.0;
  opts.height = 10;
  const std::vector<double> values = {100.0, 50.0, 0.0};
  const std::vector<std::string> labels = {"a", "b", "c"};
  const auto out = render_bar_chart(values, labels, opts);
  // Column of the full bar has 10 '#'; half bar 5; zero bar none.
  const auto count_hash = std::count(out.begin(), out.end(), '#');
  EXPECT_EQ(count_hash, 15);
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(BarChart, ClampsOutOfRangeValues) {
  BarChartOptions opts;
  opts.y_min = 90.0;
  opts.y_max = 100.0;
  opts.height = 5;
  const std::vector<double> values = {80.0, 110.0};  // below and above range
  const auto out = render_bar_chart(values, {}, opts);
  // The below-range bar clamps to nothing; the above-range bar to full height.
  EXPECT_EQ(std::count(out.begin(), out.end(), '#'), 5);
}

TEST(SpikePlot, PreservesIsolatedSpikes) {
  std::vector<double> values(1000, 0.0);
  values[500] = 100.0;  // one tall spike among zeros
  SpikePlotOptions opts;
  opts.width = 50;
  opts.height = 8;
  const auto out = render_spike_plot(values, opts);
  EXPECT_NE(out.find('|'), std::string::npos);  // spike visible after binning
}

TEST(Scatter, PointsLandInsideFrame) {
  std::vector<ScatterPoint> points = {{2008.0, 1.0, 'o'}, {2015.5, 82.0, '@'}};
  ScatterOptions opts;
  opts.x_min = 2000;
  opts.x_max = 2016;
  opts.y_min = 0;
  opts.y_max = 100;
  const auto out = render_scatter(points, opts);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(WorldMap, PlotsDensity) {
  std::vector<std::pair<double, double>> points;
  for (int i = 0; i < 50; ++i) points.emplace_back(51.0, 10.0);  // Europe cluster
  const auto out = render_world_map(points, 40, 12);
  // Dense cluster renders as one of the darker shades.
  EXPECT_TRUE(out.find('@') != std::string::npos || out.find('#') != std::string::npos);
}

TEST(WorldMap, IgnoresInvalidCoordinates) {
  std::vector<std::pair<double, double>> points = {{999.0, 999.0}};
  const auto out = render_world_map(points, 20, 8);
  EXPECT_EQ(out.find('@'), std::string::npos);
  EXPECT_EQ(out.find('.'), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::util
