// Arena / buffer-pool allocator tests: steady-state zero-heap behaviour,
// reset retention, poisoning of rewound generations, and the thread
// isolation the parallel campaign workers rely on (TSan covers this file in
// CI via the util test binary).
#include "ecnprobe/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>
#include <vector>

namespace ecnprobe::util {
namespace {

TEST(Arena, AllocatesAlignedDistinctRegions) {
  Arena arena;
  auto* a = static_cast<std::uint8_t*>(arena.allocate(100, 8));
  auto* b = static_cast<std::uint8_t*>(arena.allocate(100, 8));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  std::memset(a, 1, 100);
  std::memset(b, 2, 100);
  EXPECT_EQ(a[99], 1);
  EXPECT_EQ(b[0], 2);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  Arena arena(1024);
  auto* big = arena.allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 7, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, ResetRetainsBlocksAndStopsHeapGrowth) {
  Arena arena(4096);
  for (int i = 0; i < 64; ++i) arena.allocate(512);
  const std::uint64_t warm = arena.heap_allocations();
  EXPECT_GT(warm, 0u);
  // Ten more generations of the same workload: the warm arena must serve
  // them all without a single further heap allocation.
  for (int gen = 0; gen < 10; ++gen) {
    arena.reset();
    for (int i = 0; i < 64; ++i) arena.allocate(512);
  }
  EXPECT_EQ(arena.heap_allocations(), warm);
  EXPECT_EQ(arena.resets(), 10u);
}

TEST(Arena, ReleaseReturnsMemoryAndStatsRestart) {
  Arena arena;
  arena.allocate(100);
  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_NE(arena.allocate(100), nullptr);  // usable again after release
}

#if !ECNPROBE_ASAN
TEST(Arena, ResetScribblesRetainedMemory) {
  // Without ASan the rewound generation is overwritten with 0xA5, so stale
  // reads observe deterministic garbage rather than the previous contents.
  Arena arena;
  auto* p = static_cast<std::uint8_t*>(arena.allocate(64));
  std::memset(p, 0x11, 64);
  arena.reset();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(p[i], 0xA5);
}
#else
using ArenaDeathTest = ::testing::Test;
TEST(ArenaDeathTest, UseAfterResetAbortsUnderAsan) {
  // Under AddressSanitizer the rewound blocks are poisoned: touching the
  // previous generation must abort with a use-after-poison report.
  EXPECT_DEATH(
      {
        Arena arena;
        auto* p = static_cast<std::uint8_t*>(arena.allocate(64));
        arena.reset();
        p[0] = 1;  // use-after-reset
      },
      "use-after-poison");
}
#endif

TEST(ArenaAllocator, BacksAStdMapThroughResetCycles) {
  Arena arena;
  using Alloc = ArenaAllocator<std::pair<const int, int>>;
  using Map = std::map<int, int, std::less<int>, Alloc>;
  {
    Map map{Alloc(arena)};
    for (int i = 0; i < 200; ++i) map[i] = i * i;
    EXPECT_EQ(map.at(71), 71 * 71);
    map.clear();  // before the arena rewinds
  }
  const std::uint64_t warm = arena.heap_allocations();
  for (int gen = 0; gen < 5; ++gen) {
    arena.reset();
    Map map{Alloc(arena)};
    for (int i = 0; i < 200; ++i) map[i] = i;
    map.clear();
  }
  EXPECT_EQ(arena.heap_allocations(), warm);
}

TEST(BufferPool, RecyclesCapacityAndCountsHits) {
  BufferPool pool;
  auto first = pool.acquire();
  EXPECT_EQ(pool.hits(), 0u);
  first.resize(2000);
  const auto* data = first.data();
  pool.release(std::move(first));
  auto second = pool.acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(second.empty());
  EXPECT_GE(second.capacity(), 2000u);
  EXPECT_EQ(second.data(), data);  // same storage, recycled
}

TEST(BufferPool, DropsZeroCapacityReleases) {
  BufferPool pool;
  pool.release({});
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(PooledBuffer, CopyStartsColdMoveTransfers) {
  PooledBuffer original;
  original.mut() = {1, 2, 3};
  PooledBuffer copy(original);           // cache semantics: copies start empty
  EXPECT_TRUE(copy.empty());
  EXPECT_FALSE(original.empty());
  PooledBuffer moved(std::move(original));
  ASSERT_EQ(moved.view().size(), 3u);
  EXPECT_EQ(moved.view()[2], 3);
  EXPECT_TRUE(original.empty());  // NOLINT(bugprone-use-after-move): asserting the moved-from state
}

TEST(PooledBuffer, ReturnsStorageToThreadPoolOnDestruction) {
  const std::uint64_t before = BufferPool::this_thread().acquires();
  {
    PooledBuffer buf;
    buf.mut().resize(512);
  }
  EXPECT_EQ(BufferPool::this_thread().acquires(), before + 1);
  EXPECT_GE(BufferPool::this_thread().free_count(), 1u);
}

TEST(Arena, PerWorkerArenasAreIndependentAcrossThreads) {
  // The parallel campaign gives each worker its own world and hence its own
  // arenas and thread-local pools. Hammering private arenas plus the
  // per-thread BufferPool from many threads must be race-free (TSan-checked
  // in CI) and fully deterministic per thread.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::size_t> sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &sums] {
      Arena arena(8192);
      for (int gen = 0; gen < 50; ++gen) {
        arena.reset();
        for (int i = 0; i < 100; ++i) {
          auto* p = static_cast<std::uint8_t*>(arena.allocate(64));
          p[0] = static_cast<std::uint8_t>(t);
          sums[static_cast<std::size_t>(t)] += p[0];
        }
        PooledBuffer buf;  // touches the thread-local pool
        buf.mut().assign(128, static_cast<std::uint8_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], static_cast<std::size_t>(t) * 50 * 100);
  }
}

}  // namespace
}  // namespace ecnprobe::util
