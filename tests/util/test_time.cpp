#include "ecnprobe/util/time.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::util {
namespace {

using namespace ecnprobe::util::literals;

TEST(SimDuration, FactoryUnits) {
  EXPECT_EQ(SimDuration::micros(3).count_nanos(), 3'000);
  EXPECT_EQ(SimDuration::millis(3).count_nanos(), 3'000'000);
  EXPECT_EQ(SimDuration::seconds(3).count_nanos(), 3'000'000'000);
  EXPECT_EQ(SimDuration::minutes(2).count_nanos(), 120'000'000'000);
  EXPECT_EQ(SimDuration::hours(1).count_nanos(), 3'600'000'000'000);
  EXPECT_EQ(SimDuration::days(1).count_nanos(), 86'400'000'000'000);
}

TEST(SimDuration, Arithmetic) {
  const auto d = 500_ms + 1_s - 200_ms;
  EXPECT_EQ(d.count_nanos(), 1'300'000'000);
  EXPECT_EQ((d * 2).count_nanos(), 2'600'000'000);
  EXPECT_EQ((d / 13).count_nanos(), 100'000'000);
}

TEST(SimDuration, Comparison) {
  EXPECT_LT(1_ms, 1_s);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_GT(2_s, 1999_ms);
}

TEST(SimDuration, FromSecondsRoundTrip) {
  const auto d = SimDuration::from_seconds(1.5);
  EXPECT_DOUBLE_EQ(d.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(d.to_millis(), 1500.0);
}

TEST(SimDuration, ToStringPicksNaturalUnit) {
  EXPECT_EQ((2_s).to_string(), "2s");
  EXPECT_EQ((5_ms).to_string(), "5ms");
  EXPECT_EQ((7_us).to_string(), "7us");
  EXPECT_EQ((9_ns).to_string(), "9ns");
}

TEST(SimTime, OffsetAndDifference) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + 250_ms;
  EXPECT_EQ((t1 - t0).count_nanos(), 250'000'000);
  EXPECT_LT(t0, t1);
  SimTime t2 = t1;
  t2 += 750_ms;
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 1.0);
}

TEST(SimTime, NegativeDifferenceAllowed) {
  const SimTime a = SimTime::from_nanos(100);
  const SimTime b = SimTime::from_nanos(300);
  EXPECT_EQ((a - b).count_nanos(), -200);
}

}  // namespace
}  // namespace ecnprobe::util
