#include "ecnprobe/analysis/reachability.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::analysis {
namespace {

using measure::ServerResult;
using measure::Trace;

ServerResult server(int id, bool plain, bool ect, bool tcp, bool tcp_ecn) {
  ServerResult s;
  s.server = wire::Ipv4Address(11, 0, 0, static_cast<std::uint8_t>(id));
  s.udp_plain.reachable = plain;
  s.udp_ect0.reachable = ect;
  s.tcp_plain.connected = tcp;
  s.tcp_plain.got_response = tcp;
  s.tcp_ecn.connected = tcp;
  s.tcp_ecn.got_response = tcp;
  s.tcp_ecn.ecn_negotiated = tcp_ecn;
  return s;
}

std::vector<Trace> two_vantage_traces() {
  // Vantage A: 4 servers plain-reachable, 3 also ECT; 2 TCP, 1 negotiates.
  Trace a;
  a.vantage = "A";
  a.index = 0;
  a.servers = {server(1, true, true, true, true), server(2, true, true, true, false),
               server(3, true, true, false, false), server(4, true, false, false, false),
               server(5, false, false, false, false)};
  // Vantage B: all reachable both ways; 2 TCP, 2 negotiate.
  Trace b;
  b.vantage = "B";
  b.index = 1;
  b.servers = {server(1, true, true, true, true), server(2, true, true, true, true),
               server(3, true, true, false, false), server(4, true, true, false, false),
               server(5, true, true, false, false)};
  return {a, b};
}

TEST(PerTraceReachability, ComputesPercentages) {
  const auto rows = per_trace_reachability(two_vantage_traces());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].vantage, "A");
  EXPECT_EQ(rows[0].reachable_udp_plain, 4);
  EXPECT_EQ(rows[0].reachable_udp_ect0, 3);
  EXPECT_DOUBLE_EQ(rows[0].pct_ect_given_plain, 75.0);
  EXPECT_DOUBLE_EQ(rows[0].pct_plain_given_ect, 100.0);
  EXPECT_EQ(rows[0].reachable_tcp, 2);
  EXPECT_EQ(rows[0].negotiated_ecn_tcp, 1);
  EXPECT_DOUBLE_EQ(rows[1].pct_ect_given_plain, 100.0);
}

TEST(Summary, AveragesAcrossTraces) {
  const auto summary = summarize_reachability(two_vantage_traces());
  EXPECT_DOUBLE_EQ(summary.mean_reachable_udp_plain, 4.5);
  EXPECT_DOUBLE_EQ(summary.mean_pct_ect_given_plain, 87.5);
  EXPECT_DOUBLE_EQ(summary.min_pct_ect_given_plain, 75.0);
  EXPECT_DOUBLE_EQ(summary.mean_reachable_tcp, 2.0);
  EXPECT_DOUBLE_EQ(summary.mean_negotiated_ecn_tcp, 1.5);
  EXPECT_DOUBLE_EQ(summary.pct_tcp_negotiating_ecn, 75.0);
}

TEST(Summary, EmptyInputIsZeros) {
  const auto summary = summarize_reachability({});
  EXPECT_EQ(summary.mean_reachable_udp_plain, 0.0);
  EXPECT_EQ(summary.pct_tcp_negotiating_ecn, 0.0);
}

TEST(PerVantage, GroupsByVantagePreservingOrder) {
  auto traces = two_vantage_traces();
  traces.push_back(traces[0]);  // second trace from A
  traces.back().index = 2;
  const auto rows = per_vantage_reachability(traces);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].vantage, "A");
  EXPECT_EQ(rows[0].traces, 2);
  EXPECT_DOUBLE_EQ(rows[0].mean_pct_ect_given_plain, 75.0);
  EXPECT_EQ(rows[1].vantage, "B");
  EXPECT_EQ(rows[1].traces, 1);
}

TEST(CorrelationTable, CountsEctFailuresAndTcpEcnFailures) {
  // Server 4 in vantage A is plain-but-not-ECT reachable and has no TCP at
  // all (doesn't count as failing negotiation); make another that fails
  // negotiation while responding to TCP.
  Trace t;
  t.vantage = "X";
  t.servers = {
      server(1, true, false, true, false),  // ECT-unreachable, TCP yes, no ECN
      server(2, true, false, false, false), // ECT-unreachable, no TCP
      server(3, true, false, true, true),   // ECT-unreachable, TCP ECN fine
      server(4, true, true, true, false),   // reachable: not counted
  };
  const auto rows = correlation_table({t});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].vantage, "X");
  EXPECT_DOUBLE_EQ(rows[0].avg_unreachable_udp_with_ect, 3.0);
  EXPECT_DOUBLE_EQ(rows[0].avg_also_fail_tcp_ecn, 1.0);
}

TEST(CorrelationTable, AveragesOverTraces) {
  Trace t1;
  t1.vantage = "Y";
  t1.servers = {server(1, true, false, false, false)};
  Trace t2;
  t2.vantage = "Y";
  t2.servers = {server(1, true, true, false, false)};
  const auto rows = correlation_table({t1, t2});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].avg_unreachable_udp_with_ect, 0.5);
}

}  // namespace
}  // namespace ecnprobe::analysis
