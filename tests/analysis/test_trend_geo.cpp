#include <gtest/gtest.h>

#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/analysis/trend.hpp"

namespace ecnprobe::analysis {
namespace {

TEST(Trend, HistoricalSeriesMatchesPaper) {
  const auto points = historical_trend();
  ASSERT_EQ(points.size(), 7u);
  EXPECT_EQ(points.front().label, "Medina 2000");
  EXPECT_DOUBLE_EQ(points[3].pct_negotiating, 17.2);   // Bauer 2011
  EXPECT_DOUBLE_EQ(points.back().pct_negotiating, 56.17);  // Trammell 2014
  for (const auto& p : points) EXPECT_FALSE(p.measured);
}

TEST(Trend, MeasurementAppendsAsMeasuredPoint) {
  const auto points = trend_with_measurement(82.0);
  ASSERT_EQ(points.size(), 8u);
  EXPECT_TRUE(points.back().measured);
  EXPECT_DOUBLE_EQ(points.back().pct_negotiating, 82.0);
}

TEST(Trend, LogisticFitPutsMidpointInTheTwentyTens) {
  const auto fit = fit_trend(trend_with_measurement(82.0));
  // Adoption crosses 50% somewhere around 2014 and is rising.
  EXPECT_GT(fit.midpoint, 2010.0);
  EXPECT_LT(fit.midpoint, 2018.0);
  EXPECT_GT(fit.rate, 0.0);
  // The measured point should land near the fitted curve (the paper's
  // "growth curve in line with previous results").
  EXPECT_NEAR(fit.predict(2015.6), 82.0, 25.0);
}

TEST(GeoSummary, CountsPerRegionWithUnknown) {
  geo::GeoDatabase db;
  db.add(wire::Ipv4Address(11, 0, 0, 1), 32, {geo::Region::Europe, "de", 51, 10});
  db.add(wire::Ipv4Address(11, 0, 0, 2), 32, {geo::Region::Asia, "jp", 36, 138});
  const std::vector<wire::Ipv4Address> servers = {
      wire::Ipv4Address(11, 0, 0, 1), wire::Ipv4Address(11, 0, 0, 2),
      wire::Ipv4Address(11, 0, 0, 3)};  // last one unmapped
  const auto summary = summarize_geo(servers, db);
  EXPECT_EQ(summary.total, 3);
  EXPECT_EQ(summary.counts.at(geo::Region::Europe), 1);
  EXPECT_EQ(summary.counts.at(geo::Region::Asia), 1);
  EXPECT_EQ(summary.counts.at(geo::Region::Unknown), 1);
  EXPECT_EQ(summary.locations.size(), 2u);  // unknown has no coordinates
}

TEST(Report, Table1ListsAllRegionsAndTotal) {
  geo::GeoDatabase db;
  db.add(wire::Ipv4Address(11, 0, 0, 1), 32, {geo::Region::Europe, "de", 51, 10});
  const auto summary = summarize_geo({wire::Ipv4Address(11, 0, 0, 1)}, db);
  const auto table = render_table1(summary);
  EXPECT_NE(table.find("Europe"), std::string::npos);
  EXPECT_NE(table.find("Unknown"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
}

TEST(Report, Figure6MentionsStudiesAndFit) {
  const auto out = render_figure6(trend_with_measurement(82.0));
  EXPECT_NE(out.find("Trammell 2014"), std::string::npos);
  EXPECT_NE(out.find("measured"), std::string::npos);
  EXPECT_NE(out.find("logistic fit"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // the measured point glyph
}

TEST(Report, SummaryQuotesPaperNumbers) {
  ReachabilitySummary s;
  s.mean_pct_ect_given_plain = 98.8;
  s.pct_tcp_negotiating_ecn = 81.5;
  const auto out = render_summary(s);
  EXPECT_NE(out.find("98.80%"), std::string::npos);
  EXPECT_NE(out.find("(paper: 98.97%)"), std::string::npos);
  EXPECT_NE(out.find("(paper: 82.0%)"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::analysis
