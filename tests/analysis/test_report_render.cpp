// Rendering smoke+shape tests for the figure/table report generators.
#include <gtest/gtest.h>

#include <algorithm>

#include "ecnprobe/analysis/markdown_report.hpp"
#include "ecnprobe/analysis/report.hpp"

namespace ecnprobe::analysis {
namespace {

std::vector<TraceReachability> synthetic_traces() {
  std::vector<TraceReachability> out;
  const char* vantages[] = {"Perkins home", "McQuistin home", "EC2 Vir"};
  int index = 0;
  for (const auto* vantage : vantages) {
    for (int i = 0; i < 3; ++i) {
      TraceReachability t;
      t.vantage = vantage;
      t.index = index++;
      t.reachable_udp_plain = 2250;
      t.reachable_udp_ect0 = 2230;
      t.reachable_tcp = 1330;
      t.negotiated_ecn_tcp = 1090;
      t.pct_ect_given_plain = vantage == std::string("McQuistin home") ? 92.5 : 99.4;
      t.pct_plain_given_ect = 99.5;
      out.push_back(t);
    }
  }
  return out;
}

TEST(ReportRender, Figure2HasAxisAndBars) {
  const auto out = render_figure2a(synthetic_traces());
  EXPECT_NE(out.find("100.0%"), std::string::npos);
  EXPECT_NE(out.find("90.0%"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  // Vantage labels appear once per group (condensed).
  EXPECT_NE(out.find('P'), std::string::npos);
}

TEST(ReportRender, Figure2bUsesConverseSeries) {
  const auto a = render_figure2a(synthetic_traces());
  const auto b = render_figure2b(synthetic_traces());
  EXPECT_NE(a, b);  // different data series
}

TEST(ReportRender, Figure5ShowsBothSeries) {
  const auto out = render_figure5(synthetic_traces(), 2500);
  EXPECT_NE(out.find("Reachable using TCP"), std::string::npos);
  EXPECT_NE(out.find("negotiated ECN"), std::string::npos);
}

TEST(ReportRender, Figure3SpikesVisible) {
  std::vector<ServerDifferential> diffs(200);
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    diffs[i].server = wire::Ipv4Address(11, 0, 1, static_cast<std::uint8_t>(i));
    diffs[i].overall_plain_not_ect_pct = 0.0;
  }
  diffs[50].overall_plain_not_ect_pct = 100.0;  // one firewalled spike
  const auto out = render_figure3a(diffs);
  EXPECT_NE(out.find('|'), std::string::npos);
  // A vantage with no data renders only the axis: one '|' per plot row.
  const auto empty = render_figure3a(diffs, "NoSuchVantage");
  EXPECT_LT(std::count(empty.begin(), empty.end(), '|'),
            std::count(out.begin(), out.end(), '|'));
}

TEST(ReportRender, Figure4SummarisesCounts) {
  HopAnalysis analysis;
  analysis.total_hops = 155439;
  analysis.pass_hops = 154296;
  analysis.strip_hops = 1143;
  analysis.sometimes_strip = 125;
  analysis.strip_locations = 200;
  analysis.strip_locations_at_boundary = 118;
  analysis.paths = 32500;
  analysis.mean_responding_hops_per_path = 4.78;
  const auto out = render_figure4(analysis, {});
  EXPECT_NE(out.find("155,439"), std::string::npos);
  EXPECT_NE(out.find("1,143"), std::string::npos);
  EXPECT_NE(out.find("59.0%"), std::string::npos);  // 118/200
}

TEST(ReportRender, Figure4DrawsSamplePaths) {
  HopAnalysis analysis;
  std::vector<measure::TracerouteObservation> samples(1);
  samples[0].vantage = "EC2 Vir";
  samples[0].path.destination = wire::Ipv4Address(11, 0, 0, 9);
  traceroute::HopRecord intact;
  intact.responded = true;
  intact.responder = wire::Ipv4Address(12, 0, 0, 1);
  intact.sent_ecn = wire::Ecn::Ect0;
  intact.quoted_ecn = wire::Ecn::Ect0;
  traceroute::HopRecord stripped = intact;
  stripped.quoted_ecn = wire::Ecn::NotEct;
  traceroute::HopRecord silent;
  samples[0].path.hops = {intact, stripped, silent};
  const auto out = render_figure4(analysis, samples);
  EXPECT_NE(out.find("+-."), std::string::npos);  // the three verdict glyphs
}

TEST(ReportRender, Table2RoundsToWholeServers) {
  std::vector<CorrelationRow> rows = {{"Perkins home", 8.4, 2.6}};
  const auto out = render_table2(rows);
  EXPECT_NE(out.find("Perkins home"), std::string::npos);
  EXPECT_NE(out.find("8"), std::string::npos);
  EXPECT_NE(out.find("3"), std::string::npos);  // 2.6 rounds to 3
}

TEST(MarkdownReport, ContainsEverySectionAndBalancedFences) {
  ReportInputs inputs;
  measure::Trace trace;
  trace.vantage = "UGla wired";
  measure::ServerResult s1;
  s1.server = wire::Ipv4Address(11, 0, 0, 1);
  s1.udp_plain.reachable = true;
  s1.udp_ect0.reachable = true;
  s1.tcp_plain.connected = true;
  s1.tcp_plain.got_response = true;
  s1.tcp_ecn.connected = true;
  s1.tcp_ecn.ecn_negotiated = true;
  trace.servers = {s1};
  inputs.traces = {trace};
  GeoSummary geo_summary;
  geo_summary.counts[geo::Region::Europe] = 1;
  geo_summary.total = 1;
  inputs.geo = geo_summary;

  const auto report = render_markdown_report(inputs);
  for (const char* heading :
       {"# ECN-with-UDP measurement report", "## Headline numbers",
        "## Table 1", "## Figure 1", "## Figure 2a", "## Figure 2b",
        "## Figure 3a", "## Figure 3b", "## Figure 5", "## Figure 6",
        "## Table 2"}) {
    EXPECT_NE(report.find(heading), std::string::npos) << heading;
  }
  // No traceroute inputs: the Figure 4 section is omitted.
  EXPECT_EQ(report.find("## Figure 4"), std::string::npos);
  // Balanced code fences.
  std::size_t fences = 0;
  for (std::size_t pos = report.find("```"); pos != std::string::npos;
       pos = report.find("```", pos + 3)) {
    ++fences;
  }
  EXPECT_EQ(fences % 2, 0u);
  EXPECT_GE(fences, 18u);
}

TEST(MarkdownReport, IncludesFigure4WithTracerouteData) {
  ReportInputs inputs;
  measure::Trace trace;
  trace.vantage = "A";
  inputs.traces = {trace};
  measure::TracerouteObservation obs;
  obs.vantage = "A";
  obs.path.destination = wire::Ipv4Address(11, 0, 0, 1);
  traceroute::HopRecord hop;
  hop.responded = true;
  hop.responder = wire::Ipv4Address(12, 0, 0, 1);
  hop.sent_ecn = wire::Ecn::Ect0;
  hop.quoted_ecn = wire::Ecn::Ect0;
  hop.ttl = 1;
  obs.path.hops = {hop};
  inputs.traceroutes = {obs};
  topology::IpToAsMap ip2as;
  ip2as.add(wire::Ipv4Address(12, 0, 0, 0), 24, 100);
  inputs.ip2as = &ip2as;
  const auto report = render_markdown_report(inputs);
  EXPECT_NE(report.find("## Figure 4"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::analysis
