#include "ecnprobe/analysis/differential.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::analysis {
namespace {

using measure::ServerResult;
using measure::Trace;

ServerResult server(std::uint8_t id, bool plain, bool ect) {
  ServerResult s;
  s.server = wire::Ipv4Address(11, 0, 0, id);
  s.udp_plain.reachable = plain;
  s.udp_ect0.reachable = ect;
  return s;
}

Trace trace(const std::string& vantage, int index,
            std::vector<ServerResult> servers) {
  Trace t;
  t.vantage = vantage;
  t.index = index;
  t.servers = std::move(servers);
  return t;
}

TEST(Differential, FirewalledServerShows100PercentEverywhere) {
  // Server 1 is always plain-reachable but never ECT-reachable, from both
  // vantages; server 2 is healthy.
  std::vector<Trace> traces;
  for (const std::string vantage : {"A", "B"}) {
    for (int i = 0; i < 3; ++i) {
      traces.push_back(
          trace(vantage, i, {server(1, true, false), server(2, true, true)}));
    }
  }
  const auto diffs = per_server_differential(traces);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_DOUBLE_EQ(diffs[0].plain_not_ect_pct.at("A"), 100.0);
  EXPECT_DOUBLE_EQ(diffs[0].plain_not_ect_pct.at("B"), 100.0);
  EXPECT_DOUBLE_EQ(diffs[0].overall_plain_not_ect_pct, 100.0);
  EXPECT_DOUBLE_EQ(diffs[1].plain_not_ect_pct.at("A"), 0.0);

  const auto persistent = persistent_failures(diffs, {"A", "B"});
  ASSERT_EQ(persistent.size(), 1u);
  EXPECT_EQ(persistent[0], wire::Ipv4Address(11, 0, 0, 1));
}

TEST(Differential, TransientFailureGivesPartialPercentage) {
  std::vector<Trace> traces;
  traces.push_back(trace("A", 0, {server(1, true, true)}));
  traces.push_back(trace("A", 1, {server(1, true, false)}));
  traces.push_back(trace("A", 2, {server(1, true, true)}));
  traces.push_back(trace("A", 3, {server(1, true, true)}));
  const auto diffs = per_server_differential(traces);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_DOUBLE_EQ(diffs[0].plain_not_ect_pct.at("A"), 25.0);
}

TEST(Differential, ConverseDirectionTracked) {
  std::vector<Trace> traces;
  traces.push_back(trace("A", 0, {server(1, false, true)}));
  traces.push_back(trace("A", 1, {server(1, false, true)}));
  const auto diffs = per_server_differential(traces);
  ASSERT_EQ(diffs.size(), 1u);
  // Never plain-reachable: no denominator for Figure 3a...
  EXPECT_TRUE(diffs[0].plain_not_ect_pct.empty());
  // ...but 100% in the Figure 3b direction.
  EXPECT_DOUBLE_EQ(diffs[0].ect_not_plain_pct.at("A"), 100.0);
}

TEST(Differential, ThresholdCountsPerVantage) {
  std::vector<Trace> traces;
  // Vantage A: servers 1 and 2 fail ECT; vantage B: only server 1.
  for (int i = 0; i < 2; ++i) {
    traces.push_back(trace("A", i,
                           {server(1, true, false), server(2, true, false),
                            server(3, true, true)}));
    traces.push_back(trace("B", 10 + i,
                           {server(1, true, false), server(2, true, true),
                            server(3, true, true)}));
  }
  const auto diffs = per_server_differential(traces);
  const auto counts = count_over_threshold(diffs, {"A", "B"}, 50.0);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].vantage, "A");
  EXPECT_EQ(counts[0].plain_not_ect_over_threshold, 2);
  EXPECT_EQ(counts[1].plain_not_ect_over_threshold, 1);
  EXPECT_EQ(counts[0].ect_not_plain_over_threshold, 0);

  const auto persistent = persistent_failures(diffs, {"A", "B"}, 50.0);
  ASSERT_EQ(persistent.size(), 1u);  // only server 1 fails from everywhere
}

TEST(Differential, EmptyTracesEmptyResult) {
  EXPECT_TRUE(per_server_differential({}).empty());
}

}  // namespace
}  // namespace ecnprobe::analysis
