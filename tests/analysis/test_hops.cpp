#include "ecnprobe/analysis/hops.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::analysis {
namespace {

using measure::TracerouteObservation;
using traceroute::HopRecord;
using traceroute::PathRecord;

HopRecord hop(int ttl, std::uint8_t responder_octet, wire::Ecn quoted,
              wire::Ecn sent = wire::Ecn::Ect0) {
  HopRecord h;
  h.ttl = ttl;
  h.responded = responder_octet != 0;
  h.responder = wire::Ipv4Address(12, 0, 0, responder_octet);
  h.sent_ecn = sent;
  h.quoted_ecn = quoted;
  return h;
}

TracerouteObservation obs(const std::string& vantage, std::uint8_t dest_octet,
                          std::vector<HopRecord> hops, int rep = 0) {
  TracerouteObservation o;
  o.vantage = vantage;
  o.repetition = rep;
  o.path.destination = wire::Ipv4Address(11, 0, 0, dest_octet);
  o.path.hops = std::move(hops);
  return o;
}

topology::IpToAsMap two_as_map() {
  topology::IpToAsMap map;
  // Routers 1-2 in AS 100; routers 3-4 in AS 200.
  map.add(wire::Ipv4Address(12, 0, 0, 1), 32, 100);
  map.add(wire::Ipv4Address(12, 0, 0, 2), 32, 100);
  map.add(wire::Ipv4Address(12, 0, 0, 3), 32, 200);
  map.add(wire::Ipv4Address(12, 0, 0, 4), 32, 200);
  return map;
}

TEST(HopAnalysis, CleanPathAllPass) {
  const auto analysis = analyze_hops(
      {obs("A", 1,
           {hop(1, 1, wire::Ecn::Ect0), hop(2, 2, wire::Ecn::Ect0),
            hop(3, 3, wire::Ecn::Ect0)})},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 3u);
  EXPECT_EQ(analysis.pass_hops, 3u);
  EXPECT_EQ(analysis.strip_hops, 0u);
  EXPECT_EQ(analysis.strip_locations, 0u);
  EXPECT_DOUBLE_EQ(analysis.pct_hops_passing(), 100.0);
  EXPECT_EQ(analysis.ases_observed, 2u);
  EXPECT_EQ(analysis.paths, 1u);
  EXPECT_DOUBLE_EQ(analysis.mean_responding_hops_per_path, 3.0);
}

TEST(HopAnalysis, StripAtAsBoundaryAttributed) {
  // Mark intact through AS 100, stripped from the first AS-200 router on.
  const auto analysis = analyze_hops(
      {obs("A", 1,
           {hop(1, 1, wire::Ecn::Ect0), hop(2, 2, wire::Ecn::Ect0),
            hop(3, 3, wire::Ecn::NotEct), hop(4, 4, wire::Ecn::NotEct)})},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 4u);
  EXPECT_EQ(analysis.pass_hops, 2u);
  EXPECT_EQ(analysis.strip_hops, 2u);  // the "run of red"
  EXPECT_EQ(analysis.strip_locations, 1u);
  EXPECT_EQ(analysis.strip_locations_at_boundary, 1u);
  EXPECT_DOUBLE_EQ(analysis.pct_strips_at_boundary(), 100.0);
}

TEST(HopAnalysis, IntraAsStripNotBoundary) {
  // Strip between routers 1 and 2, both in AS 100.
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), hop(2, 2, wire::Ecn::NotEct)})},
      two_as_map());
  EXPECT_EQ(analysis.strip_locations, 1u);
  EXPECT_EQ(analysis.strip_locations_at_boundary, 0u);
  EXPECT_DOUBLE_EQ(analysis.pct_strips_at_boundary(), 0.0);
}

TEST(HopAnalysis, SometimesStripDetectedAcrossRepetitions) {
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), hop(2, 2, wire::Ecn::Ect0)}, 0),
       obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), hop(2, 2, wire::Ecn::NotEct)}, 1)},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 2u);
  EXPECT_EQ(analysis.strip_hops, 1u);
  EXPECT_EQ(analysis.sometimes_strip, 1u);
  // "pass" percentage counts the flapping hop as passing (it sometimes does),
  // matching the paper's 154421 = always + sometimes arithmetic.
  EXPECT_DOUBLE_EQ(analysis.pct_hops_passing(), 100.0);
}

TEST(HopAnalysis, SilentHopsDoNotCount) {
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 0, wire::Ecn::NotEct), hop(2, 2, wire::Ecn::Ect0)})},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 1u);  // only the responding hop
  EXPECT_DOUBLE_EQ(analysis.mean_responding_hops_per_path, 1.0);
}

TEST(HopAnalysis, StripBeforeFirstResponderIsUnattributed) {
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::NotEct), hop(2, 2, wire::Ecn::NotEct)})},
      two_as_map());
  EXPECT_EQ(analysis.strip_locations, 1u);
  EXPECT_EQ(analysis.strip_locations_unattributed, 1u);
  EXPECT_EQ(analysis.strip_locations_at_boundary, 0u);
}

TEST(HopAnalysis, SameHopFromTwoVantagesCountsTwice) {
  // The paper's unit is (vantage, destination, responder).
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ect0)}),
       obs("B", 1, {hop(1, 1, wire::Ecn::Ect0)})},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 2u);
}

TEST(HopAnalysis, CeMarksCounted) {
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ce)})}, two_as_map());
  EXPECT_EQ(analysis.ce_marks_seen, 1u);
  // CE != sent ECT(0): counts as modified.
  EXPECT_EQ(analysis.strip_hops, 1u);
}

HopRecord unknown_hop(int ttl, std::uint8_t responder_octet) {
  auto h = hop(ttl, responder_octet, wire::Ecn::NotEct);
  h.ecn_known = false;
  h.quote_truncated = true;
  return h;
}

TEST(HopAnalysis, TruncatedQuoteHopsReportedNotClassified) {
  // Hop 2's quote is always cut before the ECN octet: it must land in
  // ecn_unknown_hops, never in strip_hops (its quoted_ecn field is
  // meaningless NotEct).
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), unknown_hop(2, 2),
                    hop(3, 3, wire::Ecn::Ect0)})},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 2u);
  EXPECT_EQ(analysis.pass_hops, 2u);
  EXPECT_EQ(analysis.strip_hops, 0u);
  EXPECT_EQ(analysis.ecn_unknown_hops, 1u);
  // Unknown hops still count as responding for the per-path mean.
  EXPECT_DOUBLE_EQ(analysis.mean_responding_hops_per_path, 3.0);
}

TEST(HopAnalysis, TruncatedQuoteDoesNotAnchorStripLocation) {
  // 1 intact, 2 unknown, 3 stripped: the intact->stripped transition must
  // not be attributed across the unknown hop (we cannot know whether hop 2
  // passed or stripped the mark).
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), unknown_hop(2, 2),
                    hop(3, 3, wire::Ecn::NotEct)})},
      two_as_map());
  EXPECT_EQ(analysis.strip_hops, 1u);
  EXPECT_EQ(analysis.ecn_unknown_hops, 1u);
  // The strip location is attributed to the last *known* intact hop.
  EXPECT_EQ(analysis.strip_locations, 1u);
}

TEST(HopAnalysis, HopSeenBothTruncatedAndCompleteIsClassified) {
  // One repetition truncated, one complete: the complete observation wins
  // and the hop is not double-counted as unknown.
  const auto analysis = analyze_hops(
      {obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), unknown_hop(2, 2)}, 0),
       obs("A", 1, {hop(1, 1, wire::Ecn::Ect0), hop(2, 2, wire::Ecn::Ect0)}, 1)},
      two_as_map());
  EXPECT_EQ(analysis.total_hops, 2u);
  EXPECT_EQ(analysis.pass_hops, 2u);
  EXPECT_EQ(analysis.ecn_unknown_hops, 0u);
}

TEST(HopAnalysis, EmptyObservationsAreSafe) {
  const auto analysis = analyze_hops({}, two_as_map());
  EXPECT_EQ(analysis.total_hops, 0u);
  EXPECT_EQ(analysis.pct_hops_passing(), 0.0);
  EXPECT_EQ(analysis.pct_strips_at_boundary(), 0.0);
}

}  // namespace
}  // namespace ecnprobe::analysis
