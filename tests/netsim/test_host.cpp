#include "ecnprobe/netsim/host.hpp"

#include <gtest/gtest.h>

#include "mini_net.hpp"

namespace ecnprobe::netsim {
namespace {

using testutil::Chain;

TEST(Host, UdpSocketDemuxByPort) {
  Chain chain(1);
  auto sock_a = chain.host_b->open_udp(1000);
  auto sock_b = chain.host_b->open_udp(2000);
  int a_count = 0;
  int b_count = 0;
  sock_a->set_receive_handler([&](const UdpDelivery&) { ++a_count; });
  sock_b->set_receive_handler([&](const UdpDelivery&) { ++b_count; });

  auto client = chain.host_a->open_udp();
  client->send(chain.host_b->address(), 1000, {}, wire::Ecn::NotEct);
  client->send(chain.host_b->address(), 2000, {}, wire::Ecn::NotEct);
  client->send(chain.host_b->address(), 2000, {}, wire::Ecn::NotEct);
  chain.sim.run();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 2);
}

TEST(Host, UnboundPortSilentlyDropsByDefault) {
  Chain chain(1);
  auto client = chain.host_a->open_udp();
  client->send(chain.host_b->address(), 3333, {}, wire::Ecn::NotEct);
  chain.sim.run();
  EXPECT_EQ(chain.host_b->stats().udp_no_socket, 1u);
}

TEST(Host, PortUnreachableWhenConfigured) {
  Simulator sim;
  Network net(sim, util::Rng(1));
  Host::Params params;
  params.udp_port_unreachable = true;
  auto a = std::make_unique<Host>("a", Host::Params{}, util::Rng(2));
  auto b = std::make_unique<Host>("b", params, util::Rng(3));
  Host* host_a = a.get();
  Host* host_b = b.get();
  const auto ida = net.add_node(std::move(a));
  const auto idb = net.add_node(std::move(b));
  host_a->set_address(wire::Ipv4Address(10, 0, 0, 1));
  host_b->set_address(wire::Ipv4Address(10, 0, 0, 2));
  net.connect(ida, idb, LinkParams{});

  bool got_icmp = false;
  host_a->set_protocol_handler(wire::IpProto::Icmp, [&](const wire::Datagram& d) {
    const auto decoded = wire::decode_icmp_message(d.payload);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->message.type, wire::IcmpType::DestUnreachable);
    EXPECT_EQ(decoded->message.code,
              static_cast<std::uint8_t>(wire::IcmpUnreachCode::Port));
    got_icmp = true;
  });
  auto client = host_a->open_udp();
  client->send(host_b->address(), 4444, {}, wire::Ecn::NotEct);
  sim.run();
  EXPECT_TRUE(got_icmp);
}

TEST(Host, DuplicatePortBindThrows) {
  Chain chain(1);
  auto first = chain.host_b->open_udp(500);
  EXPECT_THROW(chain.host_b->open_udp(500), std::runtime_error);
  first->close();
  EXPECT_NO_THROW(chain.host_b->open_udp(500));  // released on close
}

TEST(Host, EphemeralPortsAreDistinct) {
  Chain chain(1);
  auto s1 = chain.host_a->open_udp();
  auto s2 = chain.host_a->open_udp();
  EXPECT_NE(s1->local_port(), s2->local_port());
  EXPECT_GE(s1->local_port(), 49152);
}

TEST(Host, ClosedSocketStopsReceiving) {
  Chain chain(1);
  auto sock = chain.host_b->open_udp(700);
  int count = 0;
  sock->set_receive_handler([&](const UdpDelivery&) { ++count; });
  auto client = chain.host_a->open_udp();
  client->send(chain.host_b->address(), 700, {}, wire::Ecn::NotEct);
  chain.sim.run();
  sock->close();
  client->send(chain.host_b->address(), 700, {}, wire::Ecn::NotEct);
  chain.sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Host, BadUdpChecksumDropped) {
  // Craft a datagram with a deliberately corrupted UDP checksum and inject
  // it directly.
  Chain chain(0);  // host A -- host B directly? Chain(0) has no routers: A--B.
  auto sock = chain.host_b->open_udp(80);
  int count = 0;
  sock->set_receive_handler([&](const UdpDelivery&) { ++count; });
  auto d = wire::make_udp_datagram(chain.host_a->address(), chain.host_b->address(),
                                   1234, 80, {}, wire::Ecn::NotEct);
  d.payload[7] ^= 0xff;  // corrupt checksum byte
  chain.host_a->send_datagram(std::move(d));
  chain.sim.run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(chain.host_b->stats().udp_bad_checksum, 1u);
}

TEST(Host, CaptureSeesBothDirectionsAndEcn) {
  Chain chain(1);
  PacketCapture capture;
  chain.host_a->add_capture(&capture);

  auto server = chain.host_b->open_udp(123);
  server->set_receive_handler([&](const UdpDelivery& d) {
    // Echo back.
    server->send(d.src, d.src_port, d.payload, wire::Ecn::NotEct);
  });
  auto client = chain.host_a->open_udp();
  client->send(chain.host_b->address(), 123, {}, wire::Ecn::Ect0);
  chain.sim.run();

  ASSERT_EQ(capture.packets().size(), 2u);
  EXPECT_EQ(capture.packets()[0].dir, Direction::Tx);
  EXPECT_EQ(capture.packets()[0].dgram.ip.ecn, wire::Ecn::Ect0);
  EXPECT_EQ(capture.packets()[1].dir, Direction::Rx);
  EXPECT_EQ(capture.packets()[1].dgram.ip.ecn, wire::Ecn::NotEct);
  chain.host_a->remove_capture(&capture);
}

TEST(Host, CaptureFilterRestricts) {
  Chain chain(1);
  PacketCapture capture(PacketCapture::udp_port_filter(123));
  chain.host_a->add_capture(&capture);
  auto client = chain.host_a->open_udp();
  client->send(chain.host_b->address(), 123, {}, wire::Ecn::NotEct);
  client->send(chain.host_b->address(), 9999, {}, wire::Ecn::NotEct);
  chain.sim.run();
  EXPECT_EQ(capture.packets().size(), 1u);
  chain.host_a->remove_capture(&capture);
}

}  // namespace
}  // namespace ecnprobe::netsim
