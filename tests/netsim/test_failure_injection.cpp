// Failure injection: links dying and recovering under live traffic, probes
// against black-holed destinations, and infrastructure outages. The system
// must degrade exactly like the measurement study expects (silent
// unreachability, then recovery) and never wedge.
#include <gtest/gtest.h>

#include "ecnprobe/dns/pool_dns.hpp"
#include "ecnprobe/ntp/ntp.hpp"
#include "ecnprobe/tcp/tcp.hpp"
#include "../tcp/tcp_fixture.hpp"
#include "mini_net.hpp"

namespace ecnprobe::netsim {
namespace {

using namespace ecnprobe::util::literals;
using testutil::Chain;

TEST(FailureInjection, LinkDownMakesServerUnreachableThenRecovers) {
  Chain chain(2);
  ntp::SimClock clock;
  ntp::NtpServerService server(*chain.host_b, clock, 2);
  ntp::NtpClient client(*chain.host_a, clock);

  auto query_once = [&]() {
    std::optional<ntp::NtpQueryResult> result;
    client.query(chain.host_b->address(), ntp::NtpQueryOptions{},
                 [&](const ntp::NtpQueryResult& r) { result = r; });
    chain.sim.run();
    return result->success;
  };

  EXPECT_TRUE(query_once());
  // Sever the middle of the path while idle.
  chain.net.set_link_up(chain.routers[0], 1, false);
  EXPECT_FALSE(query_once());  // five silent attempts
  chain.net.set_link_up(chain.routers[0], 1, true);
  EXPECT_TRUE(query_once());   // path restored
}

TEST(FailureInjection, LinkFlapsDuringRetrySequence) {
  Chain chain(1);
  ntp::SimClock clock;
  ntp::NtpServerService server(*chain.host_b, clock, 2);
  ntp::NtpClient client(*chain.host_a, clock);

  // The link dies now and resurrects 2.5 s in: attempts 1-3 die, attempt 4
  //'s request goes through (the probe sequence spans ~5 s).
  chain.net.set_link_up(chain.host_a_id, 0, false);
  chain.sim.schedule(util::SimDuration::millis(2500), [&]() {
    chain.net.set_link_up(chain.host_a_id, 0, true);
  });
  std::optional<ntp::NtpQueryResult> result;
  client.query(chain.host_b->address(), ntp::NtpQueryOptions{},
               [&](const ntp::NtpQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->success);
  EXPECT_GT(result->attempts, 1);  // the retry discipline earned the success
}

TEST(FailureInjection, TcpSurvivesBriefOutageViaRetransmission) {
  tcp::testutil::TcpPair pair;
  std::string received;
  pair.server->listen(80, [&](std::shared_ptr<tcp::TcpConnection> conn) {
    conn->set_receive_handler([&received](std::span<const std::uint8_t> data) {
      received.append(data.begin(), data.end());
    });
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  ASSERT_EQ(conn->state(), tcp::TcpState::Established);

  // Cut the link, send during the outage, restore after 3 s (before the
  // retry budget runs out).
  pair.net.set_link_up(pair.client_id, 0, false);
  conn->send(std::string_view("through the outage"));
  pair.sim.schedule(3_s, [&]() { pair.net.set_link_up(pair.client_id, 0, true); });
  pair.sim.run();
  EXPECT_EQ(received, "through the outage");
  EXPECT_GT(conn->stats().retransmissions, 0u);
  EXPECT_EQ(conn->state(), tcp::TcpState::Established);
}

TEST(FailureInjection, TcpGivesUpOnPermanentOutage) {
  tcp::testutil::TcpPair pair;
  std::shared_ptr<tcp::TcpConnection> accepted;
  pair.server->listen(80, [&](std::shared_ptr<tcp::TcpConnection> conn) {
    accepted = conn;
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  auto conn = pair.client->connect(pair.server_host->address(), 80, false, [](bool) {});
  pair.sim.run();
  ASSERT_EQ(conn->state(), tcp::TcpState::Established);

  pair.net.set_link_up(pair.client_id, 0, false);
  tcp::CloseReason reason{};
  bool closed = false;
  conn->set_close_handler([&](tcp::CloseReason r) {
    closed = true;
    reason = r;
  });
  conn->send(std::string_view("never arrives"));
  pair.sim.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, tcp::CloseReason::Timeout);
  EXPECT_EQ(conn->state(), tcp::TcpState::Closed);
}

TEST(FailureInjection, DnsResolverOutageFailsQueriesCleanly) {
  Chain chain(1);
  auto zones = std::make_shared<dns::PoolZones>();
  zones->add_member("pool.ntp.org", wire::Ipv4Address(11, 0, 1, 1));
  dns::DnsServerService resolver(*chain.host_b, zones);

  chain.net.set_link_up(chain.host_b_id, 0, false);  // resolver unreachable
  dns::DnsClient client(*chain.host_a, chain.host_b->address());
  std::optional<dns::DnsQueryResult> result;
  client.query("pool.ntp.org",
               [&](const dns::DnsQueryResult& r) { result = r; },
               util::SimDuration::millis(300), 2);
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->success);
  EXPECT_TRUE(result->addresses.empty());
}

TEST(FailureInjection, CrashLikeSocketCloseMidProbe) {
  // The server application "crashes" (socket closes) between the client's
  // attempts; the client times out cleanly rather than wedging.
  Chain chain(1);
  ntp::SimClock clock;
  auto server = std::make_unique<ntp::NtpServerService>(*chain.host_b, clock, 2);
  ntp::NtpClient client(*chain.host_a, clock);
  chain.sim.schedule(500_ms, [&]() { server.reset(); });  // crash after attempt 1 completes
  std::optional<ntp::NtpQueryResult> result;
  // Start the query *after* scheduling the crash but run everything at once;
  // attempt 1 at t=0 succeeds or attempts 2+ hit the closed socket.
  client.query(chain.host_b->address(), ntp::NtpQueryOptions{},
               [&](const ntp::NtpQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  // Either outcome is legal; the invariant is clean completion.
  SUCCEED();
}

}  // namespace
}  // namespace ecnprobe::netsim
