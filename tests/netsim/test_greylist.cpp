#include <gtest/gtest.h>

#include "ecnprobe/netsim/policy.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::netsim {
namespace {

using namespace ecnprobe::util::literals;

wire::Datagram udp_from(std::uint8_t src_octet) {
  return wire::make_udp_datagram(wire::Ipv4Address(10, 0, 0, src_octet),
                                 wire::Ipv4Address(11, 0, 0, 2), 1000, 123,
                                 std::vector<std::uint8_t>{1}, wire::Ecn::NotEct);
}

TEST(GreylistUdpPolicy, CleanWindowPassesImmediately) {
  GreylistUdpPolicy::Params params;
  params.flaky_prob = 0.0;
  params.dead_prob = 0.0;
  GreylistUdpPolicy policy(params);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    auto d = udp_from(1);
    EXPECT_EQ(policy.apply(d, rng, util::SimTime::zero()), PolicyAction::Pass);
  }
}

TEST(GreylistUdpPolicy, FlakyWindowDemandsWarmup) {
  GreylistUdpPolicy::Params params;
  params.flaky_prob = 1.0;  // every window greylists (threshold 5..9)
  GreylistUdpPolicy policy(params);
  util::Rng rng(2);
  // First 5 packets (a full not-ECT probe burst) are always dropped.
  int passed_in_first_five = 0;
  auto t = util::SimTime::zero();
  for (int i = 0; i < 5; ++i) {
    auto d = udp_from(1);
    passed_in_first_five +=
        policy.apply(d, rng, t) == PolicyAction::Pass ? 1 : 0;
    t += 1_s;
  }
  EXPECT_EQ(passed_in_first_five, 0);
  // Within the next five (the ECT burst of the paper's probe sequence) the
  // counter crosses any threshold in [5, 9].
  int passed_in_next_five = 0;
  for (int i = 0; i < 5; ++i) {
    auto d = udp_from(1);
    passed_in_next_five += policy.apply(d, rng, t) == PolicyAction::Pass ? 1 : 0;
    t += 1_s;
  }
  EXPECT_GT(passed_in_next_five, 0);
}

TEST(GreylistUdpPolicy, IdleResetRedrawsBehaviour) {
  GreylistUdpPolicy::Params params;
  params.flaky_prob = 1.0;
  params.idle_reset = 60_s;
  GreylistUdpPolicy policy(params);
  util::Rng rng(3);
  auto t = util::SimTime::zero();
  // Warm the filter fully.
  for (int i = 0; i < 12; ++i) {
    auto d = udp_from(1);
    policy.apply(d, rng, t);
    t += 1_s;
  }
  auto warm = udp_from(1);
  EXPECT_EQ(policy.apply(warm, rng, t), PolicyAction::Pass);
  // After a long idle period the conntrack entry expires: cold again.
  t += 10_s * 60;
  auto cold = udp_from(1);
  EXPECT_EQ(policy.apply(cold, rng, t), PolicyAction::Drop);
}

TEST(GreylistUdpPolicy, SourcesAreIndependent) {
  GreylistUdpPolicy::Params params;
  params.flaky_prob = 1.0;
  GreylistUdpPolicy policy(params);
  util::Rng rng(4);
  auto t = util::SimTime::zero();
  // Warm source 1 fully.
  for (int i = 0; i < 12; ++i) {
    auto d = udp_from(1);
    policy.apply(d, rng, t);
    t += 1_s;
  }
  // Source 2 still starts cold.
  auto other = udp_from(2);
  EXPECT_EQ(policy.apply(other, rng, t), PolicyAction::Drop);
}

TEST(GreylistUdpPolicy, DeadWindowNeverPasses) {
  GreylistUdpPolicy::Params params;
  params.flaky_prob = 0.0;
  params.dead_prob = 1.0;
  GreylistUdpPolicy policy(params);
  util::Rng rng(5);
  auto t = util::SimTime::zero();
  for (int i = 0; i < 20; ++i) {
    auto d = udp_from(1);
    EXPECT_EQ(policy.apply(d, rng, t), PolicyAction::Drop);
    t += 1_s;
  }
}

TEST(GreylistUdpPolicy, IgnoresNonUdp) {
  GreylistUdpPolicy::Params params;
  params.dead_prob = 1.0;
  GreylistUdpPolicy policy(params);
  util::Rng rng(6);
  wire::TcpHeader h;
  h.flags.syn = true;
  auto d = wire::make_tcp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                   wire::Ipv4Address(11, 0, 0, 2), h, {},
                                   wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(d, rng, util::SimTime::zero()), PolicyAction::Pass);
}

}  // namespace
}  // namespace ecnprobe::netsim
