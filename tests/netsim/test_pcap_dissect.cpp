// pcap export and the tcpdump-style dissector.
#include <gtest/gtest.h>

#include <sstream>

#include "ecnprobe/netsim/pcap.hpp"
#include "ecnprobe/wire/dissect.hpp"
#include "ecnprobe/wire/dnsmsg.hpp"
#include "ecnprobe/wire/ntp.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::netsim {
namespace {

wire::Datagram ntp_probe() {
  const auto request = wire::NtpPacket::make_client_request({1, 2});
  const auto bytes = request.encode();
  return wire::make_udp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                 wire::Ipv4Address(11, 0, 0, 2), 40001, wire::kNtpPort,
                                 bytes, wire::Ecn::Ect0);
}

TEST(Pcap, WritesValidHeaderAndRecords) {
  PacketCapture capture;
  capture.record(util::SimTime::from_nanos(1'500'000'000), Direction::Tx, ntp_probe());
  capture.record(util::SimTime::from_nanos(2'000'123'000), Direction::Rx, ntp_probe());

  std::ostringstream os(std::ios::binary);
  const auto written = write_pcap(os, capture);
  EXPECT_EQ(written, 2u);
  const std::string data = os.str();

  // Global header: 24 bytes, little-endian magic, linktype RAW (101).
  ASSERT_GE(data.size(), 24u);
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(data[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(data[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(data[3]), 0xa1);
  EXPECT_EQ(static_cast<unsigned char>(data[20]), 101);

  // First record header: ts_sec = 1, ts_usec = 500000.
  const auto u32_at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(data[off])) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(data[off + 1])) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(data[off + 2])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(data[off + 3])) << 24);
  };
  EXPECT_EQ(u32_at(24), 1u);
  EXPECT_EQ(u32_at(28), 500'000u);
  const auto caplen = u32_at(32);
  EXPECT_EQ(caplen, u32_at(36));
  // The packet bytes start with an IPv4 version nibble.
  EXPECT_EQ(static_cast<unsigned char>(data[40]) >> 4, 4);
  // Total size: 24 + 2 * (16 + caplen).
  EXPECT_EQ(data.size(), 24 + 2 * (16 + caplen));
}

TEST(Pcap, RoundTripThroughDatagramDecode) {
  PacketCapture capture;
  capture.record(util::SimTime::zero(), Direction::Tx, ntp_probe());
  std::ostringstream os(std::ios::binary);
  write_pcap(os, capture);
  const std::string data = os.str();
  const auto payload = std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()) + 40, data.size() - 40);
  const auto decoded = wire::Datagram::decode(payload);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->ip.ecn, wire::Ecn::Ect0);
  EXPECT_EQ(decoded->ip.dst, wire::Ipv4Address(11, 0, 0, 2));
}

TEST(Dissect, NtpOverUdpWithEcn) {
  const auto line = wire::dissect(ntp_probe());
  EXPECT_NE(line.find("10.0.0.1.40001 > 11.0.0.2.123"), std::string::npos);
  EXPECT_NE(line.find("UDP"), std::string::npos);
  EXPECT_NE(line.find("NTPv4 client"), std::string::npos);
  EXPECT_NE(line.find("ECT(0)"), std::string::npos);
}

TEST(Dissect, EcnSetupSynLabelled) {
  wire::TcpHeader syn;
  syn.src_port = 40000;
  syn.dst_port = 80;
  syn.flags.syn = true;
  syn.flags.ece = true;
  syn.flags.cwr = true;
  const auto dgram = wire::make_tcp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                             wire::Ipv4Address(11, 0, 0, 2), syn, {},
                                             wire::Ecn::NotEct);
  const auto line = wire::dissect(dgram);
  EXPECT_NE(line.find("[ECN-setup SYN]"), std::string::npos);
  EXPECT_NE(line.find("not-ECT"), std::string::npos);
}

TEST(Dissect, IcmpErrorShowsQuotation) {
  auto probe = ntp_probe();
  probe.ip.ecn = wire::Ecn::NotEct;  // as a bleached packet would arrive
  const auto error = wire::make_time_exceeded(wire::Ipv4Address(12, 0, 0, 1), probe);
  const auto line = wire::dissect(error);
  EXPECT_NE(line.find("time exceeded"), std::string::npos);
  EXPECT_NE(line.find("quoting [10.0.0.1 > 11.0.0.2 not-ECT"), std::string::npos);
}

TEST(Dissect, DnsQueryNamed) {
  const auto query = wire::DnsMessage::make_query(7, "uk.pool.ntp.org");
  const auto bytes = query.encode();
  const auto dgram = wire::make_udp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                             wire::Ipv4Address(11, 0, 0, 2), 5555,
                                             wire::kDnsPort, bytes, wire::Ecn::NotEct);
  const auto line = wire::dissect(dgram);
  EXPECT_NE(line.find("DNS query uk.pool.ntp.org"), std::string::npos);
}

TEST(Dissect, MalformedPayloadStillDissects) {
  wire::Datagram dgram;
  dgram.ip.src = wire::Ipv4Address(1, 1, 1, 1);
  dgram.ip.dst = wire::Ipv4Address(2, 2, 2, 2);
  dgram.ip.protocol = wire::IpProto::Tcp;
  dgram.payload = {1, 2, 3};  // too short for a TCP header
  const auto line = wire::dissect(dgram);
  EXPECT_NE(line.find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::netsim
