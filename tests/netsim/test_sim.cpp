#include "ecnprobe/netsim/sim.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace ecnprobe::netsim {
namespace {

using namespace ecnprobe::util::literals;

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30_ms, [&] { order.push_back(3); });
  sim.schedule(10_ms, [&] { order.push_back(1); });
  sim.schedule(20_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::zero() + 30_ms);
}

TEST(Simulator, SameTimestampFiresFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesTime) {
  Simulator sim;
  SimTime inner_time;
  sim.schedule(10_ms, [&] {
    sim.schedule(15_ms, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, SimTime::zero() + 25_ms);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(10_ms, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  int fires = 0;
  auto handle = sim.schedule(1_ms, [&] { ++fires; });
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();
  sim.run();
  EXPECT_EQ(fires, 1);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10_ms, [&] { order.push_back(1); });
  sim.schedule(20_ms, [&] { order.push_back(2); });
  sim.schedule(30_ms, [&] { order.push_back(3); });
  sim.run_until(SimTime::zero() + 20_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::zero() + 20_ms);
  sim.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulator sim;
  sim.run_until(SimTime::zero() + 5_s);
  EXPECT_EQ(sim.now(), SimTime::zero() + 5_s);
}

TEST(Simulator, RunLimitBoundsWork) {
  Simulator sim;
  int count = 0;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule(1_ms, tick);
  };
  sim.schedule(1_ms, tick);
  const auto fired = sim.run(100);
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(count, 100);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimDuration::millis(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(Simulator, CountsProcessedAndPending) {
  Simulator sim;
  sim.schedule(1_ms, [] {});
  sim.schedule(2_ms, [] {});
  EXPECT_EQ(sim.events_pending(), 2u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 2u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(Simulator, IdleCallbacksFireOnlyWhenQueueDrains) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2_ms, [&] { order.push_back(1); });
  sim.schedule_when_idle([&] {
    order.push_back(2);
    // Work scheduled by an idle callback runs before the next idle one.
    sim.schedule(1_ms, [&] { order.push_back(3); });
  });
  sim.schedule_when_idle([&] { order.push_back(4); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.idle_callbacks_pending(), 0u);
}

TEST(Simulator, ClearPendingDropsEventsAndIdleCallbacks) {
  Simulator sim;
  bool fired = false;
  sim.schedule(1_ms, [&] { fired = true; });
  sim.schedule_when_idle([&] { fired = true; });
  sim.clear_pending();
  EXPECT_EQ(sim.events_pending(), 0u);
  EXPECT_EQ(sim.idle_callbacks_pending(), 0u);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SameNanosecondTieBreakIsSubmissionOrderOnBothSchedulers) {
  // The total event order is (when, seq) with seq assigned at submission.
  // schedule() and post() draw from the same counter, so events landing on
  // the same nanosecond fire in exact submission order regardless of how
  // they were submitted -- and regardless of the scheduler backend.
  for (const auto kind : {SchedulerKind::Calendar, SchedulerKind::LegacyHeap}) {
    Simulator sim(kind);
    std::vector<int> order;
    sim.schedule(5_ms, [&] { order.push_back(0); });
    sim.post(5_ms, [&] { order.push_back(1); });
    sim.schedule(5_ms, [&] { order.push_back(2); });
    sim.post(5_ms, [&] { order.push_back(3); });
    // An earlier event submitted later still fires first (time dominates).
    sim.schedule(1_ms, [&] { order.push_back(4); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{4, 0, 1, 2, 3}))
        << "kind=" << static_cast<int>(kind);
  }
}

TEST(Simulator, SecondThreadUseThrows) {
  // Each ParallelCampaign worker owns its simulator outright; the ownership
  // assertion turns an accidental cross-thread share into a loud failure
  // instead of a data race.
  Simulator sim;
  sim.schedule(1_ms, [] {});  // binds ownership to this thread
  bool threw = false;
  std::thread other([&] {
    try {
      sim.schedule(1_ms, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw);
  sim.run();  // still usable from the owning thread
}

}  // namespace
}  // namespace ecnprobe::netsim
