#include "ecnprobe/netsim/policy.hpp"

#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::netsim {
namespace {

wire::Datagram udp_dgram(wire::Ecn ecn) {
  return wire::make_udp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                 wire::Ipv4Address(11, 0, 0, 2), 1000, 123,
                                 std::vector<std::uint8_t>{1, 2}, ecn);
}

wire::Datagram tcp_dgram(wire::Ecn ecn) {
  wire::TcpHeader h;
  h.src_port = 1;
  h.dst_port = 80;
  h.flags.ack = true;
  return wire::make_tcp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                 wire::Ipv4Address(11, 0, 0, 2), h, {}, ecn);
}

TEST(EcnBleachPolicy, AlwaysBleachesEctAndCe) {
  EcnBleachPolicy policy(1.0);
  util::Rng rng(1);
  for (const auto ecn : {wire::Ecn::Ect0, wire::Ecn::Ect1, wire::Ecn::Ce}) {
    auto d = udp_dgram(ecn);
    EXPECT_EQ(policy.apply(d, rng), PolicyAction::Pass);
    EXPECT_EQ(d.ip.ecn, wire::Ecn::NotEct);
  }
  EXPECT_EQ(policy.stats().modified, 3u);
  EXPECT_EQ(policy.stats().dropped, 0u);
}

TEST(EcnBleachPolicy, NeverTouchesNotEct) {
  EcnBleachPolicy policy(1.0);
  util::Rng rng(1);
  auto d = udp_dgram(wire::Ecn::NotEct);
  policy.apply(d, rng);
  EXPECT_EQ(d.ip.ecn, wire::Ecn::NotEct);
  EXPECT_EQ(policy.stats().modified, 0u);
}

TEST(EcnBleachPolicy, ProbabilisticBleachSometimesPasses) {
  EcnBleachPolicy policy(0.5);
  util::Rng rng(99);
  int bleached = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto d = udp_dgram(wire::Ecn::Ect0);
    policy.apply(d, rng);
    bleached += d.ip.ecn == wire::Ecn::NotEct ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(bleached) / n, 0.5, 0.05);
}

TEST(EctUdpDropPolicy, DropsOnlyEctUdp) {
  EctUdpDropPolicy policy;
  util::Rng rng(1);
  auto ect_udp = udp_dgram(wire::Ecn::Ect0);
  EXPECT_EQ(policy.apply(ect_udp, rng), PolicyAction::Drop);
  auto ce_udp = udp_dgram(wire::Ecn::Ce);
  EXPECT_EQ(policy.apply(ce_udp, rng), PolicyAction::Drop);
  auto plain_udp = udp_dgram(wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(plain_udp, rng), PolicyAction::Pass);
  // The Section 4.4 asymmetry: ECT TCP passes where ECT UDP is dropped.
  auto ect_tcp = tcp_dgram(wire::Ecn::Ect0);
  EXPECT_EQ(policy.apply(ect_tcp, rng), PolicyAction::Pass);
  EXPECT_EQ(policy.stats().dropped, 2u);
  EXPECT_EQ(policy.stats().seen, 4u);
}

TEST(EctAnyDropPolicy, DropsEctOfAnyProtocol) {
  EctAnyDropPolicy policy;
  util::Rng rng(1);
  auto ect_tcp = tcp_dgram(wire::Ecn::Ect0);
  EXPECT_EQ(policy.apply(ect_tcp, rng), PolicyAction::Drop);
  auto plain_tcp = tcp_dgram(wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(plain_tcp, rng), PolicyAction::Pass);
}

TEST(TosSensitiveDropPolicy, DropsNonZeroTosProportionally) {
  TosSensitiveDropPolicy policy(0.6);
  util::Rng rng(7);
  int dropped = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto d = udp_dgram(wire::Ecn::Ect0);  // non-zero ToS octet
    dropped += policy.apply(d, rng) == PolicyAction::Drop ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.6, 0.04);
  auto plain = udp_dgram(wire::Ecn::NotEct);  // ToS == 0
  EXPECT_EQ(policy.apply(plain, rng), PolicyAction::Pass);
}

TEST(MatchDropPolicy, MatchesProtocolEctAndPrefix) {
  MatchDropPolicy::Match match;
  match.protocol = wire::IpProto::Udp;
  match.ect = false;  // only not-ECT
  match.src_prefix = {wire::Ipv4Address(10, 0, 0, 0), 24};
  MatchDropPolicy policy(match, "ec2-filter");
  util::Rng rng(1);

  auto in_prefix_plain = udp_dgram(wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(in_prefix_plain, rng), PolicyAction::Drop);

  auto in_prefix_ect = udp_dgram(wire::Ecn::Ect0);
  EXPECT_EQ(policy.apply(in_prefix_ect, rng), PolicyAction::Pass);

  auto other_src = udp_dgram(wire::Ecn::NotEct);
  other_src.ip.src = wire::Ipv4Address(10, 0, 1, 1);  // outside /24
  EXPECT_EQ(policy.apply(other_src, rng), PolicyAction::Pass);

  auto tcp = tcp_dgram(wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(tcp, rng), PolicyAction::Pass);
  EXPECT_EQ(policy.name(), "ec2-filter");
}

TEST(CongestionPolicy, MarksEctDropsNotEct) {
  CongestionPolicy policy(1.0, 1.0);
  util::Rng rng(1);
  auto ect = udp_dgram(wire::Ecn::Ect0);
  EXPECT_EQ(policy.apply(ect, rng), PolicyAction::Pass);
  EXPECT_EQ(ect.ip.ecn, wire::Ecn::Ce);  // RFC 3168: mark instead of drop
  auto plain = udp_dgram(wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(plain, rng), PolicyAction::Drop);
}

TEST(CongestionPolicy, NeverMarksNotEctAsCe) {
  CongestionPolicy policy(1.0, 0.0);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    auto plain = udp_dgram(wire::Ecn::NotEct);
    policy.apply(plain, rng);
    EXPECT_NE(plain.ip.ecn, wire::Ecn::Ce);  // RFC 3168 section 5 invariant
  }
}

TEST(CongestionPolicy, OverloadDropsEct) {
  CongestionPolicy policy(1.0, 0.0, 1.0);
  util::Rng rng(4);
  auto ect = udp_dgram(wire::Ecn::Ect0);
  EXPECT_EQ(policy.apply(ect, rng), PolicyAction::Drop);
}

}  // namespace
}  // namespace ecnprobe::netsim
