#include "ecnprobe/netsim/router.hpp"

#include <gtest/gtest.h>

#include "mini_net.hpp"

namespace ecnprobe::netsim {
namespace {

using testutil::Chain;

TEST(Router, TtlExpiryGeneratesQuotingTimeExceeded) {
  Chain chain(3);
  std::optional<wire::Datagram> icmp;
  chain.host_a->set_protocol_handler(wire::IpProto::Icmp,
                                     [&](const wire::Datagram& d) { icmp = d; });

  // TTL 2 expires at the second router.
  auto probe = wire::make_udp_datagram(chain.host_a->address(), chain.host_b->address(),
                                       40000, 33435, {}, wire::Ecn::Ect0, 2);
  chain.host_a->send_datagram(std::move(probe));
  chain.sim.run();

  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->ip.src, chain.net.node(chain.routers[1]).address());
  const auto decoded = wire::decode_icmp_message(icmp->payload);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->message.type, wire::IcmpType::TimeExceeded);
  const auto quotation = wire::parse_quotation(decoded->message.body);
  ASSERT_TRUE(quotation);
  // Quoted as received: TTL 1 (sender's 2, minus first router's decrement)
  // and the ECT(0) mark intact.
  EXPECT_EQ(quotation->inner_header.ttl, 1);
  EXPECT_EQ(quotation->inner_header.ecn, wire::Ecn::Ect0);
  EXPECT_EQ(chain.router_ptrs[1]->stats().ttl_expired, 1u);
  EXPECT_EQ(chain.router_ptrs[1]->stats().icmp_sent, 1u);
}

TEST(Router, QuotationReflectsUpstreamBleaching) {
  Chain chain(3);
  // Bleacher on the first router's egress toward the B side.
  chain.net.add_egress_policy(chain.routers[0], 1,
                              std::make_shared<EcnBleachPolicy>(1.0));
  std::optional<wire::Ecn> quoted;
  chain.host_a->set_protocol_handler(wire::IpProto::Icmp, [&](const wire::Datagram& d) {
    const auto decoded = wire::decode_icmp_message(d.payload);
    ASSERT_TRUE(decoded);
    const auto quotation = wire::parse_quotation(decoded->message.body);
    ASSERT_TRUE(quotation);
    quoted = quotation->inner_header.ecn;
  });
  // Expires at router 2, downstream of the bleacher.
  auto probe = wire::make_udp_datagram(chain.host_a->address(), chain.host_b->address(),
                                       40001, 33436, {}, wire::Ecn::Ect0, 2);
  chain.host_a->send_datagram(std::move(probe));
  chain.sim.run();
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(*quoted, wire::Ecn::NotEct);  // the strip is visible in the quote
}

TEST(Router, SilentWhenIcmpDisabled) {
  Chain chain(2, /*icmp_prob=*/0.0);
  bool got_icmp = false;
  chain.host_a->set_protocol_handler(wire::IpProto::Icmp,
                                     [&](const wire::Datagram&) { got_icmp = true; });
  auto probe = wire::make_udp_datagram(chain.host_a->address(), chain.host_b->address(),
                                       40002, 33437, {}, wire::Ecn::Ect0, 1);
  chain.host_a->send_datagram(std::move(probe));
  chain.sim.run();
  EXPECT_FALSE(got_icmp);
  EXPECT_EQ(chain.router_ptrs[0]->stats().ttl_expired, 1u);
  EXPECT_EQ(chain.router_ptrs[0]->stats().icmp_sent, 0u);
}

TEST(Router, ForwardsAndDecrementsTtl) {
  Chain chain(2);
  auto sock = chain.host_b->open_udp(123);
  PacketCapture capture;
  chain.host_b->add_capture(&capture);
  sock->set_receive_handler([&](const UdpDelivery&) {});
  auto probe = wire::make_udp_datagram(chain.host_a->address(), chain.host_b->address(),
                                       40003, 123, {}, wire::Ecn::NotEct, 64);
  chain.host_a->send_datagram(std::move(probe));
  chain.sim.run();
  ASSERT_EQ(capture.packets().size(), 1u);
  EXPECT_EQ(capture.packets()[0].dgram.ip.ttl, 62);  // two routers decremented
  EXPECT_EQ(chain.router_ptrs[0]->stats().forwarded, 1u);
  EXPECT_EQ(chain.router_ptrs[1]->stats().forwarded, 1u);
  chain.host_b->remove_capture(&capture);
}

TEST(Router, UnroutableDestinationTriggersNetUnreachable) {
  Chain chain(2);
  std::optional<std::uint8_t> code;
  chain.host_a->set_protocol_handler(wire::IpProto::Icmp, [&](const wire::Datagram& d) {
    const auto decoded = wire::decode_icmp_message(d.payload);
    ASSERT_TRUE(decoded);
    if (decoded->message.type == wire::IcmpType::DestUnreachable) {
      code = decoded->message.code;
    }
  });
  auto probe = wire::make_udp_datagram(chain.host_a->address(),
                                       wire::Ipv4Address(99, 99, 99, 99), 40004, 123, {},
                                       wire::Ecn::NotEct, 64);
  chain.host_a->send_datagram(std::move(probe));
  chain.sim.run();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, static_cast<std::uint8_t>(wire::IcmpUnreachCode::Net));
  EXPECT_EQ(chain.router_ptrs[0]->stats().unroutable, 1u);
}

TEST(Router, TrafficToRouterAddressIsAbsorbed) {
  Chain chain(2);
  auto probe = wire::make_udp_datagram(chain.host_a->address(),
                                       chain.net.node(chain.routers[0]).address(), 1, 2,
                                       {}, wire::Ecn::NotEct, 64);
  chain.host_a->send_datagram(std::move(probe));
  chain.sim.run();
  EXPECT_EQ(chain.router_ptrs[0]->stats().delivered_local, 1u);
  EXPECT_EQ(chain.router_ptrs[0]->stats().forwarded, 0u);
}

}  // namespace
}  // namespace ecnprobe::netsim
