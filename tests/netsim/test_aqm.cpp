// The bottleneck AQM queue: drain arithmetic, the RED action ramp, ECN
// mark-instead-of-drop, overflow behaviour, and the end-to-end latency
// difference that motivates ECN for interactive media.
#include <gtest/gtest.h>

#include "ecnprobe/netsim/policy.hpp"
#include "ecnprobe/rtp/media.hpp"
#include "ecnprobe/wire/udp.hpp"
#include "mini_net.hpp"

namespace ecnprobe::netsim {
namespace {

using namespace ecnprobe::util::literals;

wire::Datagram packet(wire::Ecn ecn, std::size_t payload = 1000) {
  return wire::make_udp_datagram(wire::Ipv4Address(10, 0, 0, 1),
                                 wire::Ipv4Address(11, 0, 0, 2), 1, 2,
                                 std::vector<std::uint8_t>(payload, 0), ecn);
}

BottleneckAqmPolicy::Params params_1mbps() {
  BottleneckAqmPolicy::Params p;
  p.rate_bps = 1e6;
  p.queue_capacity_bytes = 16 * 1024;
  return p;
}

TEST(BottleneckAqm, EmptyQueuePassesWithTinyDelay) {
  BottleneckAqmPolicy policy(params_1mbps());
  util::Rng rng(1);
  auto d = packet(wire::Ecn::NotEct);
  EXPECT_EQ(policy.apply(d, rng, util::SimTime::zero()), PolicyAction::Pass);
  // One ~1kB packet at 1 Mbps: ~8 ms serialisation delay.
  const auto delay = policy.take_extra_delay();
  EXPECT_NEAR(delay.to_seconds(), 0.0083, 0.002);
}

TEST(BottleneckAqm, BurstBuildsDelayAndDrains) {
  BottleneckAqmPolicy policy(params_1mbps());
  util::Rng rng(2);
  // A burst at t=0 stacks up.
  util::SimDuration last_delay;
  for (int i = 0; i < 8; ++i) {
    auto d = packet(wire::Ecn::NotEct);
    if (policy.apply(d, rng, util::SimTime::zero()) == PolicyAction::Pass) {
      last_delay = policy.take_extra_delay();
    }
  }
  EXPECT_GT(last_delay.to_seconds(), 0.05);  // ~8kB backlog at 1 Mbps
  // After 200 ms the queue has fully drained.
  auto d = packet(wire::Ecn::NotEct);
  ASSERT_EQ(policy.apply(d, rng, util::SimTime::zero() + 200_ms), PolicyAction::Pass);
  EXPECT_LT(policy.take_extra_delay().to_seconds(), 0.01);
}

TEST(BottleneckAqm, OverflowDropsEverything) {
  auto params = params_1mbps();
  params.queue_capacity_bytes = 3000;
  BottleneckAqmPolicy policy(params);
  util::Rng rng(3);
  int dropped = 0;
  for (int i = 0; i < 6; ++i) {
    auto d = packet(wire::Ecn::Ect0);  // even ECT drops on hard overflow
    dropped += policy.apply(d, rng, util::SimTime::zero()) == PolicyAction::Drop;
  }
  EXPECT_GE(dropped, 3);
  EXPECT_GT(policy.queue_stats().dropped_overflow, 0u);
}

TEST(BottleneckAqm, RedRampMarksEctDropsNotEct) {
  for (const bool use_ect : {true, false}) {
    BottleneckAqmPolicy policy(params_1mbps());
    util::Rng rng(4);
    int ce = 0;
    int drops = 0;
    // Saturate: a packet every 2 ms at 1 Mbps input ~ 4x the drain rate.
    auto t = util::SimTime::zero();
    for (int i = 0; i < 200; ++i) {
      auto d = packet(use_ect ? wire::Ecn::Ect0 : wire::Ecn::NotEct, 900);
      const auto action = policy.apply(d, rng, t);
      if (action == PolicyAction::Pass && d.ip.ecn == wire::Ecn::Ce) ++ce;
      if (action == PolicyAction::Drop) ++drops;
      t += 2_ms;
    }
    if (use_ect) {
      EXPECT_GT(ce, 20);
      EXPECT_EQ(policy.queue_stats().dropped_early, 0u);  // marks replace drops
    } else {
      EXPECT_EQ(ce, 0);
      EXPECT_GT(drops, 20);
    }
  }
}

TEST(BottleneckAqm, EcnDisabledQueueDropsEctToo) {
  auto params = params_1mbps();
  params.ecn_enabled = false;
  BottleneckAqmPolicy policy(params);
  util::Rng rng(5);
  int drops = 0;
  auto t = util::SimTime::zero();
  for (int i = 0; i < 200; ++i) {
    auto d = packet(wire::Ecn::Ect0, 900);
    drops += policy.apply(d, rng, t) == PolicyAction::Drop;
    t += 2_ms;
  }
  EXPECT_GT(drops, 20);
  EXPECT_EQ(policy.queue_stats().ce_marked, 0u);
}

TEST(BottleneckAqm, NeverMarksNotEctAsCe) {
  BottleneckAqmPolicy policy(params_1mbps());
  util::Rng rng(6);
  auto t = util::SimTime::zero();
  for (int i = 0; i < 300; ++i) {
    auto d = packet(wire::Ecn::NotEct, 900);
    policy.apply(d, rng, t);
    EXPECT_NE(d.ip.ecn, wire::Ecn::Ce);  // RFC 3168 section 5
    t += 2_ms;
  }
}

// End-to-end: an adaptive RTP session over a real bottleneck. With ECN the
// controller converges on CE marks with almost no loss; without it, the
// same convergence costs drops. This is the paper's interactive-media
// motivation, measured.
TEST(BottleneckAqm, MediaSessionLosesLessWithEcn) {
  auto run = [](bool attempt_ecn) {
    testutil::Chain chain(2);
    BottleneckAqmPolicy::Params params;
    params.rate_bps = 800e3;
    params.queue_capacity_bytes = 24 * 1024;
    auto aqm = std::make_shared<BottleneckAqmPolicy>(params);
    chain.net.add_egress_policy(chain.routers[0], 1, aqm);

    rtp::MediaReceiver receiver(*chain.host_b, rtp::MediaReceiver::Config{});
    rtp::MediaSender::Config config;
    config.attempt_ecn = attempt_ecn;
    config.start_bitrate_bps = 1.2e6;  // above the bottleneck: must adapt
    rtp::MediaSender sender(*chain.host_a, chain.host_b->address(), 5004, config);
    sender.start();
    chain.sim.run_until(chain.sim.now() + util::SimDuration::seconds(10));
    sender.stop();
    receiver.stop();
    chain.sim.run();
    struct Outcome {
      std::uint32_t lost;
      std::uint32_t ce;
      std::uint64_t received;
    };
    return Outcome{receiver.stats().lost, receiver.stats().ce,
                   receiver.stats().packets_received};
  };

  const auto with_ecn = run(true);
  const auto without_ecn = run(false);
  EXPECT_GT(with_ecn.ce, 0u);
  EXPECT_GT(without_ecn.lost, with_ecn.lost);  // ECN converted loss to marks
  EXPECT_GT(with_ecn.received, 100u);
  EXPECT_GT(without_ecn.received, 100u);
}

}  // namespace
}  // namespace ecnprobe::netsim
