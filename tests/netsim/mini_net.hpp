// Shared fixture for netsim tests: a linear chain
//   hostA -- r1 -- r2 -- ... -- rN -- hostB
// with a static routing oracle, no loss, and 1 ms links.
#pragma once

#include <memory>
#include <vector>

#include "ecnprobe/netsim/host.hpp"
#include "ecnprobe/netsim/network.hpp"
#include "ecnprobe/netsim/router.hpp"

namespace ecnprobe::netsim::testutil {

struct Chain {
  Simulator sim;
  Network net{sim, util::Rng(1)};
  Host* host_a = nullptr;
  Host* host_b = nullptr;
  NodeId host_a_id = kInvalidNode;
  NodeId host_b_id = kInvalidNode;
  std::vector<NodeId> routers;
  std::vector<Router*> router_ptrs;

  explicit Chain(int n_routers, double icmp_prob = 1.0,
                 LinkParams link = LinkParams{}) {
    auto a = std::make_unique<Host>("hostA", Host::Params{}, util::Rng(10));
    host_a = a.get();
    host_a_id = net.add_node(std::move(a));
    host_a->set_address(wire::Ipv4Address(10, 0, 0, 1));

    NodeId prev = host_a_id;
    for (int i = 0; i < n_routers; ++i) {
      Router::Params params;
      params.icmp_response_prob = icmp_prob;
      auto router = std::make_unique<Router>("r" + std::to_string(i), params,
                                             util::Rng(100 + static_cast<unsigned>(i)));
      router_ptrs.push_back(router.get());
      const NodeId id = net.add_node(std::move(router));
      net.node(id).set_address(
          wire::Ipv4Address(12, 0, 0, static_cast<std::uint8_t>(i + 1)));
      net.connect(prev, id, link);
      routers.push_back(id);
      prev = id;
    }

    auto b = std::make_unique<Host>("hostB", Host::Params{}, util::Rng(20));
    host_b = b.get();
    host_b_id = net.add_node(std::move(b));
    host_b->set_address(wire::Ipv4Address(11, 0, 0, 1));
    net.connect(prev, host_b_id, link);

    // Static oracle for the chain: routers[i]'s interfaces are
    // 0 = toward A-side, 1 = toward B-side (plus interface order quirks for
    // the first router, whose interface 0 connects to host A).
    net.set_routing_oracle([this](NodeId at, wire::Ipv4Address dst) -> int {
      for (std::size_t i = 0; i < routers.size(); ++i) {
        if (routers[i] != at) continue;
        if (dst == host_a->address()) return 0;  // first link added on router
        if (dst == host_b->address()) return 1;
        // Router addresses: route toward the side the router sits on.
        const NodeId target = net.find_by_address(dst);
        for (std::size_t j = 0; j < routers.size(); ++j) {
          if (routers[j] == target) return j < i ? 0 : 1;
        }
        return kNoInterface;
      }
      return kNoInterface;
    });
  }
};

}  // namespace ecnprobe::netsim::testutil
