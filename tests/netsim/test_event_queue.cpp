// Property tests for the calendar-queue scheduler: under adversarial event
// distributions -- same-tick bursts, far-future ladder spills, wheel resize
// churn, interleaved push/pop -- the pop order must equal a reference sort
// by (when, seq), and must match the legacy binary heap event for event.
#include "ecnprobe/netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/util/time.hpp"

namespace ecnprobe::netsim {
namespace {

using Key = std::pair<std::int64_t, std::uint64_t>;  // (when_ns, seq)

SimEvent make_event(std::int64_t when_ns, std::uint64_t seq) {
  SimEvent ev;
  ev.when = util::SimTime::from_nanos(when_ns);
  ev.seq = seq;
  return ev;
}

Key key_of(const SimEvent& ev) { return {ev.when.count_nanos(), ev.seq}; }

/// Pushes `whens` into the queue, pops everything, and checks the order
/// equals the reference sort of (when, seq).
template <typename Queue>
void expect_sorted_drain(Queue& queue, const std::vector<std::int64_t>& whens) {
  std::vector<Key> expected;
  expected.reserve(whens.size());
  for (std::size_t i = 0; i < whens.size(); ++i) {
    queue.push(make_event(whens[i], i));
    expected.emplace_back(whens[i], i);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<Key> actual;
  actual.reserve(whens.size());
  while (!queue.empty()) actual.push_back(key_of(queue.pop()));
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual, expected);
}

TEST(CalendarQueue, SameTickBurstPopsInInsertionOrder) {
  CalendarQueue queue;
  std::vector<std::int64_t> whens(5000, 42'000);  // one tick, 5000 events
  expect_sorted_drain(queue, whens);
}

TEST(CalendarQueue, SameTickBurstAcrossAFewTicks) {
  CalendarQueue queue;
  util::Rng rng(1);
  std::vector<std::int64_t> whens;
  for (int i = 0; i < 4000; ++i) {
    whens.push_back(static_cast<std::int64_t>(rng.next_below(4)) * 1'000'000);
  }
  expect_sorted_drain(queue, whens);
}

TEST(CalendarQueue, FarFutureEventsSpillToLadderAndReturn) {
  // A tiny wheel (width 64ns x 8 buckets = 512ns horizon) forces almost
  // everything through the ladder and its reseed path.
  CalendarQueue queue(64, 8);
  util::Rng rng(2);
  std::vector<std::int64_t> whens;
  for (int i = 0; i < 3000; ++i) {
    whens.push_back(static_cast<std::int64_t>(rng.next_below(1'000'000'000)));
  }
  std::vector<Key> expected;
  for (std::size_t i = 0; i < whens.size(); ++i) {
    queue.push(make_event(whens[i], i));
    expected.emplace_back(whens[i], i);
  }
  EXPECT_GT(queue.ladder_size(), 0u);
  std::sort(expected.begin(), expected.end());
  std::vector<Key> actual;
  while (!queue.empty()) actual.push_back(key_of(queue.pop()));
  EXPECT_EQ(actual, expected);
}

TEST(CalendarQueue, ResizeChurnKeepsOrder) {
  // Tiny bucket count so occupancy-driven doubling fires repeatedly.
  CalendarQueue queue(1'000, 2);
  util::Rng rng(3);
  std::vector<std::int64_t> whens;
  for (int i = 0; i < 2000; ++i) {
    whens.push_back(static_cast<std::int64_t>(rng.next_below(1'500)));
  }
  expect_sorted_drain(queue, whens);
  EXPECT_GT(queue.resizes(), 0u);
  EXPECT_GT(queue.bucket_count(), 2u);
}

TEST(CalendarQueue, InterleavedPushPopMatchesLegacyHeap) {
  CalendarQueue calendar(128, 16);  // small wheel: exercises every path
  LegacyHeapQueue heap;
  util::Rng rng(4);
  std::int64_t now = 0;
  std::uint64_t seq = 0;
  std::vector<Key> calendar_order;
  std::vector<Key> heap_order;
  for (int round = 0; round < 20'000; ++round) {
    const bool push = calendar.empty() || rng.next_below(100) < 55;
    if (push) {
      // Mix of immediate, same-tick, near, and far-future events; never in
      // the past relative to the virtual clock, like the simulator clamps.
      const std::uint64_t kind = rng.next_below(4);
      std::int64_t when = now;
      if (kind == 1) when = now + static_cast<std::int64_t>(rng.next_below(100));
      if (kind == 2) when = now + static_cast<std::int64_t>(rng.next_below(10'000));
      if (kind == 3) when = now + static_cast<std::int64_t>(rng.next_below(100'000'000));
      calendar.push(make_event(when, seq));
      heap.push(make_event(when, seq));
      ++seq;
    } else {
      ASSERT_EQ(calendar.min_when(), heap.min_when());
      const SimEvent a = calendar.pop();
      const SimEvent b = heap.pop();
      calendar_order.push_back(key_of(a));
      heap_order.push_back(key_of(b));
      now = a.when.count_nanos();
    }
  }
  while (!calendar.empty()) {
    calendar_order.push_back(key_of(calendar.pop()));
    heap_order.push_back(key_of(heap.pop()));
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(calendar_order, heap_order);
}

TEST(CalendarQueue, ReanchorsAfterFullDrain) {
  CalendarQueue queue;
  // Drain at a low timestamp, then push far beyond the old horizon: the
  // wheel must re-anchor rather than spill to the ladder forever.
  queue.push(make_event(100, 0));
  (void)queue.pop();
  const std::int64_t far = 40'000'000'000'000;  // ~11 sim-hours
  queue.push(make_event(far, 1));
  EXPECT_EQ(queue.ladder_size(), 0u);  // re-anchored, not laddered
  EXPECT_EQ(queue.pop().when.count_nanos(), far);
}

TEST(CalendarQueue, ClearRetainsBucketCapacity) {
  CalendarQueue queue;
  for (int i = 0; i < 1000; ++i) queue.push(make_event(i * 10, static_cast<std::uint64_t>(i)));
  const std::size_t buckets = queue.bucket_count();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.bucket_count(), buckets);
  expect_sorted_drain(queue, {30, 10, 20});
}

TEST(EventQueue, KindSelectsBackend) {
  EventQueue calendar(SchedulerKind::Calendar);
  EventQueue heap(SchedulerKind::LegacyHeap);
  EXPECT_EQ(calendar.kind(), SchedulerKind::Calendar);
  EXPECT_EQ(heap.kind(), SchedulerKind::LegacyHeap);
  for (EventQueue* q : {&calendar, &heap}) {
    q->push(make_event(50, 1));
    q->push(make_event(50, 0));
    q->push(make_event(10, 2));
    EXPECT_EQ(q->min_when().count_nanos(), 10);
    EXPECT_EQ(q->pop().seq, 2u);
    EXPECT_EQ(q->pop().seq, 0u);  // same tick: insertion order
    EXPECT_EQ(q->pop().seq, 1u);
    EXPECT_TRUE(q->empty());
  }
}

TEST(EventQueue, EnvVariableSelectsLegacyHeap) {
  ::setenv("ECNPROBE_SCHEDULER", "heap", 1);
  EXPECT_EQ(scheduler_kind_from_env(), SchedulerKind::LegacyHeap);
  ::setenv("ECNPROBE_SCHEDULER", "calendar", 1);
  EXPECT_EQ(scheduler_kind_from_env(), SchedulerKind::Calendar);
  ::unsetenv("ECNPROBE_SCHEDULER");
  EXPECT_EQ(scheduler_kind_from_env(), SchedulerKind::Calendar);
}

}  // namespace
}  // namespace ecnprobe::netsim
