// Differential scheduler suite: the calendar queue and the legacy binary
// heap must be observationally indistinguishable. Two layers of evidence:
//
//  1. Simulator-level event-order storms -- randomized schedule / post /
//     cancel workloads fire in byte-identical order on both backends.
//  2. Whole campaigns -- across seeds and worker counts {1, 2, 8}, the
//     results CSV, the drop ledger and metrics JSON, and the flight-
//     recorder stream produced under ECNPROBE_SCHEDULER=heap equal the
//     calendar scheduler's output byte for byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/netsim/sim.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"
#include "ecnprobe/util/rng.hpp"

namespace ecnprobe {
namespace {

using netsim::SchedulerKind;
using netsim::Simulator;
using util::SimDuration;

/// Replays one randomized scheduling workload on a simulator and returns
/// the order event labels fired in.
std::vector<int> storm_fire_order(SchedulerKind kind, std::uint64_t seed) {
  Simulator sim(kind);
  util::Rng rng(seed);
  std::vector<int> order;
  std::vector<netsim::EventHandle> handles;
  int label = 0;

  // Seed events, some of which schedule more events when they fire -- the
  // recursive shape real protocol timers have.
  for (int i = 0; i < 200; ++i) {
    const auto delay = SimDuration::nanos(static_cast<std::int64_t>(rng.next_below(50'000)));
    const int my_label = label++;
    if (rng.next_below(3) == 0) {
      sim.post(delay, [&order, my_label] { order.push_back(my_label); });
    } else {
      handles.push_back(sim.schedule(delay, [&sim, &order, &rng, &label, my_label] {
        order.push_back(my_label);
        if (rng.next_below(2) == 0) {
          const int child = label++;
          // Same-instant child: must fire after everything already queued
          // for this instant (FIFO), a case the old heap got right only by
          // accident of its comparator and the new one pins by contract.
          sim.post(SimDuration{}, [&order, child] { order.push_back(child); });
        }
      }));
    }
  }
  // Cancel a deterministic subset before running.
  for (std::size_t i = 0; i < handles.size(); i += 3) handles[i].cancel();
  sim.run();
  return order;
}

TEST(SchedulerDifferential, StormFireOrderIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {1u, 7u, 99u, 12345u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto calendar = storm_fire_order(SchedulerKind::Calendar, seed);
    const auto heap = storm_fire_order(SchedulerKind::LegacyHeap, seed);
    ASSERT_FALSE(calendar.empty());
    EXPECT_EQ(calendar, heap);
  }
}

TEST(SchedulerDifferential, RunUntilCancelledEdgeMatches) {
  // The historical run_until() quirk: a cancelled event at <= `until` lets
  // fire_next skip to a live event *beyond* `until`. Both backends must
  // reproduce it identically (it is part of the golden event order).
  for (const auto kind : {SchedulerKind::Calendar, SchedulerKind::LegacyHeap}) {
    Simulator sim(kind);
    std::vector<int> order;
    auto handle = sim.schedule(SimDuration::nanos(100), [&order] { order.push_back(1); });
    sim.schedule(SimDuration::nanos(500), [&order] { order.push_back(2); });
    handle.cancel();
    const auto fired = sim.run_until(util::SimTime::from_nanos(200));
    EXPECT_EQ(fired, 1u) << "cancelled front event pulls in the next live one";
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(sim.now().count_nanos(), 500);
  }
}

// -- campaign-level equivalence ---------------------------------------------

scenario::WorldParams diff_params(std::uint64_t seed) {
  auto p = scenario::WorldParams::small(seed);
  p.server_count = 18;
  p.ect_udp_firewalled_servers = 2;
  p.ect_required_servers = 1;
  p.offline_prob = 0.05;
  p.flight_recorder_capacity = 512;  // arm the recorder: events are part of the diff
  return p;
}

measure::CampaignPlan diff_plan() {
  measure::CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"EC2 Vir", 1, 2});
  plan.entries.push_back({"UGla wired", 2, 1});
  return plan;
}

struct CampaignArtefacts {
  std::string csv;
  std::string metrics_json;
  std::vector<obs::FlightEvent> flights;
};

std::string traces_csv(const std::vector<measure::Trace>& traces) {
  std::ostringstream os;
  measure::write_traces_csv(os, traces);
  return os.str();
}

/// Runs the campaign with the scheduler forced via the environment (the
/// same selection mechanism operators use), sequentially or sharded.
CampaignArtefacts run_with_scheduler(const char* scheduler, std::uint64_t seed,
                                     int workers) {
  if (scheduler != nullptr) {
    ::setenv("ECNPROBE_SCHEDULER", scheduler, 1);
  } else {
    ::unsetenv("ECNPROBE_SCHEDULER");
  }
  CampaignArtefacts out;
  const auto params = diff_params(seed);
  const auto plan = diff_plan();
  if (workers <= 0) {
    scenario::World world(params);
    out.csv = traces_csv(world.run_campaign(plan));
    out.metrics_json = obs::to_json(world.campaign_obs());
    out.flights = world.campaign_flights();
  } else {
    obs::ObsSnapshot metrics;
    out.csv = traces_csv(scenario::run_parallel_campaign(
        params, plan, {}, workers, nullptr, &metrics, nullptr, 0, &out.flights));
    out.metrics_json = obs::to_json(metrics);
  }
  ::unsetenv("ECNPROBE_SCHEDULER");
  return out;
}

TEST(SchedulerDifferential, CampaignArtefactsByteIdenticalAcrossBackends) {
  for (const std::uint64_t seed : {11u, 77u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto calendar = run_with_scheduler("calendar", seed, /*workers=*/0);
    const auto heap = run_with_scheduler("heap", seed, /*workers=*/0);
    ASSERT_FALSE(calendar.csv.empty());
    EXPECT_EQ(calendar.csv, heap.csv);
    EXPECT_EQ(calendar.metrics_json, heap.metrics_json);
    ASSERT_FALSE(calendar.flights.empty());
    EXPECT_EQ(calendar.flights, heap.flights)
        << "flight-recorder stream (full wire bytes) must not depend on scheduler";
  }
}

TEST(SchedulerDifferential, ParallelCampaignIdenticalAcrossBackendsAndWorkers) {
  const std::uint64_t seed = 42;
  const auto sequential = run_with_scheduler("calendar", seed, /*workers=*/0);
  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto calendar = run_with_scheduler("calendar", seed, workers);
    const auto heap = run_with_scheduler("heap", seed, workers);
    EXPECT_EQ(calendar.csv, heap.csv);
    EXPECT_EQ(calendar.metrics_json, heap.metrics_json);
    EXPECT_EQ(calendar.flights, heap.flights);
    EXPECT_EQ(calendar.csv, sequential.csv)
        << "sharded run must equal sequential on either scheduler";
  }
}

}  // namespace
}  // namespace ecnprobe
