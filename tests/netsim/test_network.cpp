#include "ecnprobe/netsim/network.hpp"

#include <gtest/gtest.h>

#include "mini_net.hpp"

namespace ecnprobe::netsim {
namespace {

using namespace ecnprobe::util::literals;
using testutil::Chain;

TEST(Network, DeliversAcrossChainWithLinkDelay) {
  LinkParams link;
  link.delay = 2_ms;
  Chain chain(3, 1.0, link);
  auto socket_b = chain.host_b->open_udp(123);
  bool received = false;
  SimTime arrival;
  socket_b->set_receive_handler([&](const UdpDelivery& delivery) {
    received = true;
    arrival = chain.sim.now();
    EXPECT_EQ(delivery.src, chain.host_a->address());
    EXPECT_EQ(delivery.ecn, wire::Ecn::Ect0);
  });

  auto socket_a = chain.host_a->open_udp();
  const std::uint8_t payload[] = {1, 2, 3};
  socket_a->send(chain.host_b->address(), 123, payload, wire::Ecn::Ect0);
  chain.sim.run();
  ASSERT_TRUE(received);
  // 4 links x 2 ms each.
  EXPECT_EQ((arrival - SimTime::zero()).count_nanos(), (8_ms).count_nanos());
}

TEST(Network, LossyLinkDropsApproximatelyAtRate) {
  LinkParams link;
  link.loss_rate = 0.3;
  Chain chain(1, 1.0, link);
  auto socket_b = chain.host_b->open_udp(123);
  int received = 0;
  socket_b->set_receive_handler([&](const UdpDelivery&) { ++received; });
  auto socket_a = chain.host_a->open_udp();
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    socket_a->send(chain.host_b->address(), 123, {}, wire::Ecn::NotEct);
  }
  chain.sim.run();
  // Two lossy links in series: survival = 0.7^2 = 0.49.
  EXPECT_NEAR(static_cast<double>(received) / n, 0.49, 0.05);
  EXPECT_GT(chain.net.stats().dropped_loss, 0u);
}

TEST(Network, EgressPolicyAppliesBeforeDelivery) {
  Chain chain(1);
  auto policy = std::make_shared<EctUdpDropPolicy>();
  // Egress of the last router toward host B (interface 1).
  chain.net.add_egress_policy(chain.routers[0], 1, policy);

  auto socket_b = chain.host_b->open_udp(123);
  int received = 0;
  socket_b->set_receive_handler([&](const UdpDelivery&) { ++received; });
  auto socket_a = chain.host_a->open_udp();
  socket_a->send(chain.host_b->address(), 123, {}, wire::Ecn::Ect0);   // dropped
  socket_a->send(chain.host_b->address(), 123, {}, wire::Ecn::NotEct); // passes
  chain.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(policy->stats().dropped, 1u);
  EXPECT_EQ(chain.net.stats().dropped_policy, 1u);
}

TEST(Network, IngressPolicyAppliesAtReceiver) {
  Chain chain(1);
  // Ingress policy on host B's interface (0).
  chain.net.add_ingress_policy(chain.host_b_id, 0,
                               std::make_shared<EcnBleachPolicy>(1.0));
  auto socket_b = chain.host_b->open_udp(123);
  wire::Ecn seen = wire::Ecn::Ce;
  socket_b->set_receive_handler([&](const UdpDelivery& d) { seen = d.ecn; });
  auto socket_a = chain.host_a->open_udp();
  socket_a->send(chain.host_b->address(), 123, {}, wire::Ecn::Ect0);
  chain.sim.run();
  EXPECT_EQ(seen, wire::Ecn::NotEct);
}

TEST(Network, DownLinkDropsEverything) {
  Chain chain(1);
  chain.net.set_link_up(chain.host_a_id, 0, false);
  auto socket_b = chain.host_b->open_udp(123);
  int received = 0;
  socket_b->set_receive_handler([&](const UdpDelivery&) { ++received; });
  auto socket_a = chain.host_a->open_udp();
  socket_a->send(chain.host_b->address(), 123, {}, wire::Ecn::NotEct);
  chain.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(chain.net.stats().dropped_link_down, 1u);
}

TEST(Network, AddressDirectoryFindsNodes) {
  Chain chain(2);
  EXPECT_EQ(chain.net.find_by_address(chain.host_a->address()), chain.host_a_id);
  EXPECT_EQ(chain.net.find_by_address(wire::Ipv4Address(99, 9, 9, 9)), kInvalidNode);
}

TEST(Network, ConnectRejectsBadIds) {
  Simulator sim;
  Network net(sim, util::Rng(1));
  auto host = std::make_unique<Host>("h", Host::Params{}, util::Rng(2));
  const NodeId id = net.add_node(std::move(host));
  EXPECT_THROW(net.connect(id, id, LinkParams{}), std::invalid_argument);
  EXPECT_THROW(net.connect(id, 42, LinkParams{}), std::invalid_argument);
}

TEST(Network, IpIdMonotone) {
  Simulator sim;
  Network net(sim, util::Rng(1));
  const auto first = net.next_ip_id();
  EXPECT_EQ(net.next_ip_id(), static_cast<std::uint16_t>(first + 1));
}

}  // namespace
}  // namespace ecnprobe::netsim
