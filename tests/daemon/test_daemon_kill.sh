#!/usr/bin/env bash
# The daemon's crash-resume contract, end to end with real processes:
#   1. start ecnprobed, admit two campaigns (different tenants/seeds),
#   2. scrape per-campaign metrics mid-run,
#   3. SIGKILL the daemon while both campaigns are in flight,
#   4. restart on the same state dir -- both campaigns resume from their
#      journals and run to completion,
#   5. SIGTERM-drain the restarted daemon cleanly,
#   6. require the final CSV + metrics artifacts to be byte-identical to
#      uninterrupted batch-CLI runs of the same specs.
set -u

ECND="$1"
CLI="$2"
DIR="$(mktemp -d)"
STATE="$DIR/state"
DPID=""
trap '[ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null; rm -rf "$DIR"' EXIT

fail() { echo "test_daemon_kill: $1" >&2; exit 1; }

start_daemon() {  # $1: port-file path, $2: log path
  "$ECND" serve --state-dir "$STATE" --port 0 --port-file "$1" \
    --concurrency 2 --queue 8 --max-workers 2 >"$2" 2>&1 &
  DPID=$!
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    kill -0 "$DPID" 2>/dev/null || fail "daemon died at startup: $(cat "$2")"
    sleep 0.1
  done
  fail "daemon never wrote its port file"
}

ctl() { "$ECND" ctl "$@"; }

start_daemon "$DIR/port1" "$DIR/daemon1.log"
PORT=$(cat "$DIR/port1")
BASE="http://127.0.0.1:$PORT"

ctl post "$BASE/campaigns" \
  --body '{"tenant":"alpha","scale":0.05,"traces":60,"seed":5,"workers":2}' \
  >"$DIR/admit1" || fail "admission of c1 failed: $(cat "$DIR/admit1")"
grep -q '"id":"c1"' "$DIR/admit1" || fail "unexpected admit response: $(cat "$DIR/admit1")"
ctl post "$BASE/campaigns" \
  --body '{"tenant":"beta","scale":0.05,"traces":60,"seed":9,"workers":2}' \
  >"$DIR/admit2" || fail "admission of c2 failed"
grep -q '"id":"c2"' "$DIR/admit2" || fail "unexpected admit response: $(cat "$DIR/admit2")"

# Let both campaigns make real progress, then scrape them mid-run.
sleep 0.6
ctl get "$BASE/campaigns/c1/metrics" >"$DIR/mid1" || fail "mid-run scrape of c1 failed"
ctl get "$BASE/campaigns" >"$DIR/list" || fail "campaign list failed"
ctl get "$BASE/metrics" | grep -q "ecnprobed_admitted_total 2" \
  || fail "daemon /metrics missing admission counter"

# The crash: no warning, no checkpoint call, both campaigns in flight.
kill -9 "$DPID"
wait "$DPID" 2>/dev/null
DPID=""

start_daemon "$DIR/port2" "$DIR/daemon2.log"
PORT=$(cat "$DIR/port2")
BASE="http://127.0.0.1:$PORT"

# Both campaigns resume from their journals and finish.
for id in c1 c2; do
  DONE=""
  for _ in $(seq 1 600); do
    if ctl get "$BASE/campaigns/$id" | grep -q '"state":"done"'; then
      DONE=1
      break
    fi
    sleep 0.2
  done
  [ -n "$DONE" ] || fail "$id did not finish after restart: $(ctl get "$BASE/campaigns/$id")"
done

# Graceful drain of the restarted daemon.
kill -TERM "$DPID"
wait "$DPID"
CODE=$?
DPID=""
[ "$CODE" -eq 0 ] || fail "drain exited $CODE: $(cat "$DIR/daemon2.log")"

# Byte-identity vs the uninterrupted batch CLI (sequential, so the metrics
# JSON has the same runtime:null shape the daemon exports).
"$CLI" campaign --scale 0.05 --traces 60 --seed 5 --workers 1 \
  --out "$DIR/ref1.csv" --metrics-out "$DIR/ref1.json" 2>/dev/null \
  || fail "reference run 1 failed"
"$CLI" campaign --scale 0.05 --traces 60 --seed 9 --workers 1 \
  --out "$DIR/ref2.csv" --metrics-out "$DIR/ref2.json" 2>/dev/null \
  || fail "reference run 2 failed"

cmp -s "$STATE/c1.csv" "$DIR/ref1.csv" || fail "c1 CSV differs from batch CLI"
cmp -s "$STATE/c2.csv" "$DIR/ref2.csv" || fail "c2 CSV differs from batch CLI"
cmp -s "$STATE/c1.metrics.json" "$DIR/ref1.json" || fail "c1 metrics JSON differs"
cmp -s "$STATE/c2.metrics.json" "$DIR/ref2.json" || fail "c2 metrics JSON differs"
cmp -s "$STATE/c1.metrics.prom" "$DIR/ref1.prom" || fail "c1 metrics .prom differs"
cmp -s "$STATE/c2.metrics.prom" "$DIR/ref2.prom" || fail "c2 metrics .prom differs"

echo "ok: SIGKILL + restart resumed both campaigns byte-identically, drain clean"
