// ecnprobed end to end, in process: spec validation, admission and
// shedding (queue bound, tenant budget), campaign execution through the
// real ParallelCampaign with a journal in the state dir, per-campaign
// metrics/result endpoints, cancel, watchdog, and the drain -> restart ->
// resume cycle with byte-identical results.
#include "ecnprobe/daemon/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "ecnprobe/daemon/spec.hpp"
#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/event_stream.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::daemon {
namespace {

std::string unique_state_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  // Tests own their directory: wipe any leftovers from a previous run.
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

std::string http_request(std::uint16_t port, const std::string& method,
                         const std::string& target, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string request = method + " " + target +
                        " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string wait_for_state(CampaignDaemon& daemon, const std::string& id,
                           const std::string& want,
                           std::chrono::seconds deadline = std::chrono::seconds(60)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  std::string last = "<never seen>";
  while (std::chrono::steady_clock::now() < until) {
    for (const auto& status : daemon.statuses()) {
      if (status.id != id) continue;
      last = status.state;
      if (status.state == want) return want;
      // Terminal states other than the wanted one will never change.
      if (status.state == "done" || status.state == "cancelled" ||
          status.state == "failed") {
        return status.state;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return last;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The reference output: the sequential World run the daemon's artifacts
/// must match byte for byte.
std::string sequential_csv(const CampaignSpec& spec) {
  auto params = scenario::WorldParams::paper().scaled(spec.scale);
  params.seed = spec.seed;
  scenario::World world(params);
  const auto plan = measure::CampaignPlan::for_scale(spec.scale, spec.traces);
  const auto traces = world.run_campaign(plan);
  std::ostringstream out;
  measure::write_traces_csv(out, traces);
  return out.str();
}

TEST(CampaignSpecJson, RoundTripsAndValidatesLikeTheCli) {
  CampaignSpec spec;
  spec.tenant = "team-a";
  spec.scale = 0.05;
  spec.seed = 7;
  spec.traces = 4;
  spec.workers = 3;
  spec.sched = "backoff,pace-rate=50,breaker-failures=3";
  const auto round = CampaignSpec::from_json(spec.to_json());
  ASSERT_TRUE(round) << round.error().message;
  EXPECT_EQ(*round, spec);

  // Defaults apply for an empty object.
  const auto defaults = CampaignSpec::from_json("{}");
  ASSERT_TRUE(defaults);
  EXPECT_EQ(*defaults, CampaignSpec{});

  const char* rejected[] = {
      "",                                     // not JSON
      "[]",                                   // not an object
      "{\"scale\":0.1} trailing",             // trailing garbage
      "{\"falts\":\"none\"}",                 // misspelled key
      "{\"scale\":-1}",                       // bad range
      "{\"scale\":\"big\"}",                  // bad type
      "{\"seed\":1.5}",                       // non-integer
      "{\"workers\":0}",                      // below range
      "{\"tenant\":\"a b\"}",                 // bad charset
      "{\"tenant\":\"a\",\"tenant\":\"b\"}",  // duplicate key
      "{\"faults\":\"bogus-plan\"}",          // sub-spec parser rejects
      "{\"telemetry\":\"nope\"}",
      "{\"timeseries\":\"nope\"}",
      "{\"sched\":\"warp-speed\"}",
  };
  for (const char* text : rejected) {
    const auto parsed = CampaignSpec::from_json(text);
    EXPECT_FALSE(parsed) << "accepted: " << text;
    if (!parsed) {
      EXPECT_FALSE(parsed.error().message.empty());
    }
  }
}

TEST(CampaignDaemonTest, AdmitsRunsAndServesByteIdenticalArtifacts) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_basic");
  CampaignDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;
  ASSERT_NE(daemon.port(), 0);

  CampaignSpec spec;
  spec.scale = 0.02;
  spec.traces = 2;
  spec.workers = 2;
  const auto created =
      http_request(daemon.port(), "POST", "/campaigns", spec.to_json());
  EXPECT_EQ(created.find("HTTP/1.1 201"), 0u) << created;
  EXPECT_NE(created.find("\"id\":\"c1\""), std::string::npos) << created;

  ASSERT_EQ(wait_for_state(daemon, "c1", "done"), "done");

  // The daemon's CSV is byte-identical to the sequential reference run.
  const auto result = http_request(daemon.port(), "GET", "/campaigns/c1/result", "");
  EXPECT_EQ(result.find("HTTP/1.1 200"), 0u) << result;
  const auto body_at = result.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(result.substr(body_at + 4), sequential_csv(spec));
  EXPECT_EQ(read_file(options.state_dir + "/c1.csv"), sequential_csv(spec));

  // Per-campaign metrics serve the exported Prometheus artifact once done.
  const auto metrics = http_request(daemon.port(), "GET", "/campaigns/c1/metrics", "");
  EXPECT_EQ(metrics.find("HTTP/1.1 200"), 0u) << metrics;
  EXPECT_NE(metrics.find("campaign_traces_total"), std::string::npos) << metrics;

  // Status JSON and daemon-level progress/metrics cover the campaign.
  const auto status = http_request(daemon.port(), "GET", "/campaigns/c1", "");
  EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos) << status;
  const auto progress = http_request(daemon.port(), "GET", "/progress", "");
  EXPECT_NE(progress.find("\"id\":\"c1\""), std::string::npos) << progress;
  const auto daemon_metrics = http_request(daemon.port(), "GET", "/metrics", "");
  EXPECT_NE(daemon_metrics.find("ecnprobed_admitted_total 1"), std::string::npos)
      << daemon_metrics;

  EXPECT_EQ(daemon.stats().completed, 1u);
  daemon.drain();
  EXPECT_FALSE(daemon.running());
}

TEST(CampaignDaemonTest, InvalidSpecsRejectedWith400) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_invalid");
  options.max_traces = 4;
  CampaignDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const auto bad = http_request(daemon.port(), "POST", "/campaigns",
                                "{\"faults\":\"bogus\"}");
  EXPECT_EQ(bad.find("HTTP/1.1 400"), 0u) << bad;

  // A valid spec over the daemon's per-campaign trace budget is refused
  // at admission, before any resources are committed.
  const auto huge = http_request(daemon.port(), "POST", "/campaigns",
                                 "{\"scale\":0.02,\"traces\":100}");
  EXPECT_EQ(huge.find("HTTP/1.1 400"), 0u) << huge;
  EXPECT_NE(huge.find("budget"), std::string::npos) << huge;

  EXPECT_EQ(daemon.stats().rejected_invalid, 2u);
  EXPECT_EQ(daemon.stats().admitted, 0u);
  EXPECT_TRUE(daemon.statuses().empty());
  daemon.drain();
}

TEST(CampaignDaemonTest, OverloadShedsWith429AndRetryAfter) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_overload");
  options.concurrency = 1;
  options.queue_depth = 1;
  options.tenant_max_active = 8;
  options.retry_after_seconds = 3;
  CampaignDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Enough work that the first campaign is still running while we pile on.
  const std::string spec = "{\"scale\":0.05,\"traces\":40,\"workers\":2}";
  const auto first = http_request(daemon.port(), "POST", "/campaigns", spec);
  EXPECT_EQ(first.find("HTTP/1.1 201"), 0u) << first;

  // Fill the queue (runner may have already claimed c1, so c2 waits), then
  // overflow it. Admissions beyond the bound shed instead of queueing.
  int shed = 0;
  std::string last_shed;
  for (int i = 0; i < 4; ++i) {
    const auto response = http_request(daemon.port(), "POST", "/campaigns", spec);
    if (response.find("HTTP/1.1 429") == 0) {
      ++shed;
      last_shed = response;
    } else {
      EXPECT_EQ(response.find("HTTP/1.1 201"), 0u) << response;
    }
  }
  EXPECT_GE(shed, 2) << "queue bound did not shed";
  EXPECT_NE(last_shed.find("Retry-After: 3"), std::string::npos) << last_shed;
  EXPECT_NE(last_shed.find("queue full"), std::string::npos) << last_shed;
  EXPECT_GE(daemon.stats().shed_queue_full, 2u);

  // Drain completes with every admitted campaign checkpointed or finished:
  // nothing admitted may be lost or left in a running state.
  daemon.drain();
  for (const auto& status : daemon.statuses()) {
    EXPECT_TRUE(status.state == "done" || status.state == "queued")
        << status.id << " left as " << status.state;
    if (status.state == "queued") {
      // Checkpointed on disk: the spec survives for the next start().
      EXPECT_FALSE(
          read_file(options.state_dir + "/" + status.id + ".spec.json").empty());
    }
  }
}

TEST(CampaignDaemonTest, TenantBudgetShedsButOtherTenantsAdmit) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_tenant");
  options.concurrency = 1;
  options.queue_depth = 8;
  options.tenant_max_active = 1;
  CampaignDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const auto a1 = http_request(daemon.port(), "POST", "/campaigns",
                               "{\"tenant\":\"alpha\",\"scale\":0.05,\"traces\":40}");
  EXPECT_EQ(a1.find("HTTP/1.1 201"), 0u) << a1;
  const auto a2 = http_request(daemon.port(), "POST", "/campaigns",
                               "{\"tenant\":\"alpha\",\"scale\":0.05,\"traces\":40}");
  EXPECT_EQ(a2.find("HTTP/1.1 429"), 0u) << a2;
  // The body is JSON, so the inner quotes around the tenant arrive escaped.
  EXPECT_NE(a2.find("tenant \\\"alpha\\\""), std::string::npos) << a2;
  EXPECT_NE(a2.find("Retry-After:"), std::string::npos) << a2;
  // One tenant exhausting its budget must not starve another.
  const auto b1 = http_request(daemon.port(), "POST", "/campaigns",
                               "{\"tenant\":\"beta\",\"scale\":0.02,\"traces\":2}");
  EXPECT_EQ(b1.find("HTTP/1.1 201"), 0u) << b1;
  EXPECT_EQ(daemon.stats().shed_tenant_budget, 1u);
  daemon.drain();
}

TEST(CampaignDaemonTest, CancelQueuedCampaignImmediately) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_cancel");
  options.concurrency = 1;
  options.queue_depth = 4;
  CampaignDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // c1 occupies the single runner; c2 waits in the queue.
  const auto c1 = http_request(daemon.port(), "POST", "/campaigns",
                               "{\"scale\":0.05,\"traces\":40,\"workers\":2}");
  EXPECT_EQ(c1.find("HTTP/1.1 201"), 0u);
  const auto c2 = http_request(daemon.port(), "POST", "/campaigns",
                               "{\"scale\":0.05,\"traces\":40}");
  EXPECT_EQ(c2.find("HTTP/1.1 201"), 0u);

  const auto cancelled =
      http_request(daemon.port(), "POST", "/campaigns/c2/cancel", "");
  EXPECT_EQ(cancelled.find("HTTP/1.1 202"), 0u) << cancelled;
  EXPECT_EQ(wait_for_state(daemon, "c2", "cancelled"), "cancelled");
  // The marker persists the decision: a restart must not resurrect c2.
  EXPECT_FALSE(read_file(options.state_dir + "/c2.cancelled").empty());

  const auto missing =
      http_request(daemon.port(), "POST", "/campaigns/c9/cancel", "");
  EXPECT_EQ(missing.find("HTTP/1.1 404"), 0u) << missing;
  daemon.drain();
}

TEST(CampaignDaemonTest, WatchdogCancelsRunawayCampaign) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_watchdog");
  options.concurrency = 1;
  options.watchdog = std::chrono::milliseconds(1);
  CampaignDaemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Big enough that the 1 ms deadline is long past at the first watchdog
  // tick; the cancel lands at the next trace boundary.
  const auto created = http_request(daemon.port(), "POST", "/campaigns",
                                    "{\"scale\":0.05,\"traces\":200}");
  EXPECT_EQ(created.find("HTTP/1.1 201"), 0u) << created;
  ASSERT_EQ(wait_for_state(daemon, "c1", "cancelled"), "cancelled");

  const auto status = http_request(daemon.port(), "GET", "/campaigns/c1", "");
  EXPECT_NE(status.find("campaign-cancelled"), std::string::npos) << status;
  EXPECT_NE(status.find("watchdog"), std::string::npos) << status;
  EXPECT_EQ(daemon.stats().cancelled, 1u);
  daemon.drain();
}

TEST(CampaignDaemonTest, DrainCheckpointsAndRestartResumesByteIdentically) {
  CampaignDaemon::Options options;
  options.state_dir = unique_state_dir("daemon_drain");
  options.concurrency = 1;

  CampaignSpec spec;
  spec.scale = 0.05;
  spec.traces = 40;
  spec.workers = 2;

  {
    CampaignDaemon daemon(options);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    const auto created =
        http_request(daemon.port(), "POST", "/campaigns", spec.to_json());
    EXPECT_EQ(created.find("HTTP/1.1 201"), 0u) << created;
    // Let it make some progress, then drain mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    daemon.drain();
    // New admissions are refused while draining/stopped state is on disk;
    // the drained campaign is either finished or checkpointed as queued.
    bool seen = false;
    for (const auto& status : daemon.statuses()) {
      if (status.id != "c1") continue;
      seen = true;
      EXPECT_TRUE(status.state == "queued" || status.state == "done")
          << status.state;
    }
    EXPECT_TRUE(seen);
  }

  // Restart on the same state dir: the rescan re-enqueues c1, its journal
  // replays, and the finished artifacts match the sequential reference.
  CampaignDaemon resumed(options);
  std::string error;
  ASSERT_TRUE(resumed.start(&error)) << error;
  ASSERT_EQ(wait_for_state(resumed, "c1", "done"), "done");
  EXPECT_EQ(read_file(options.state_dir + "/c1.csv"), sequential_csv(spec));
  resumed.drain();

  // A third start sees the done marker and does not re-run anything.
  CampaignDaemon third(options);
  ASSERT_TRUE(third.start(&error)) << error;
  const auto statuses = third.statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].state, "done");
  EXPECT_EQ(statuses[0].completed_traces, statuses[0].total_traces);
  third.drain();
}

}  // namespace
}  // namespace ecnprobe::daemon
