// The live plane's real-socket HTTP server, driven by raw loopback
// clients: endpoint routing, SSE framing (id/event/data ordering,
// keep-alive comments, resume-after id monotonicity), disconnect
// mid-stream, and clean start/stop. Named test_obs_server so the
// ThreadSanitizer CI job's 'obs' regex covers it -- the server threads,
// the SSE poller, and the emitting test thread genuinely race here.
#include "ecnprobe/http/obs_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "ecnprobe/obs/event_stream.hpp"

namespace ecnprobe::http {
namespace {

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string http_get(std::uint16_t port, const char* target) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  const std::string request = std::string("GET ") + target +
                              " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Reads from `fd` until `needle` appears in the accumulated text or the
/// deadline passes; returns everything read.
std::string read_until(int fd, const std::string& needle,
                       std::chrono::milliseconds deadline) {
  std::string text;
  const auto until = std::chrono::steady_clock::now() + deadline;
  timeval timeout{0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char buf[4096];
  while (std::chrono::steady_clock::now() < until &&
         text.find(needle) == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) text.append(buf, static_cast<std::size_t>(n));
    if (n == 0) break;  // peer closed
  }
  return text;
}

class ObsServerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::EventStream::process().clear(); }
  void TearDown() override { obs::EventStream::process().clear(); }
};

TEST_F(ObsServerTest, ServesMetricsProgressAnd404) {
  ObsHttpServer::Providers providers;
  providers.metrics = [] {
    return std::string("# TYPE t_total counter\nt_total 7\n");
  };
  providers.progress = [] { return std::string("{\"completed\":3}"); };
  ObsHttpServer server(ObsHttpServer::Options{}, std::move(providers));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.port(), 0);

  const auto metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.find("HTTP/1.1 200 OK"), 0u) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("t_total 7"), std::string::npos);

  const auto progress = http_get(server.port(), "/progress");
  EXPECT_EQ(progress.find("HTTP/1.1 200 OK"), 0u);
  EXPECT_NE(progress.find("application/json"), std::string::npos);
  EXPECT_NE(progress.find("{\"completed\":3}"), std::string::npos);

  const auto missing = http_get(server.port(), "/nope");
  EXPECT_EQ(missing.find("HTTP/1.1 404"), 0u);

  const auto stats = server.stats();
  EXPECT_GE(stats.sessions, 3u);
  EXPECT_GE(stats.requests, 3u);
  EXPECT_GT(stats.bytes_sent, 0u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ObsServerTest, SseFramesArriveInEmissionOrder) {
  ObsHttpServer server(ObsHttpServer::Options{}, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string request =
      "GET /events HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  // Wait for the SSE head before emitting, so no event can slip between
  // the handshake and the first poll.
  auto text = read_until(fd, "text/event-stream", std::chrono::milliseconds(2000));
  ASSERT_NE(text.find("text/event-stream"), std::string::npos) << text;

  auto& stream = obs::EventStream::process();
  ASSERT_TRUE(stream.enabled());  // start() flips the process gate on
  stream.emit("window", "trace=0 window=1");
  stream.emit("quarantine", "trace=3 vantage=EC2-Vir");
  stream.emit("breaker", "scope=server closed -> open");

  text += read_until(fd, "breaker", std::chrono::milliseconds(2000));
  const auto window_at = text.find("event: window");
  const auto quarantine_at = text.find("event: quarantine");
  const auto breaker_at = text.find("event: breaker");
  ASSERT_NE(window_at, std::string::npos) << text;
  ASSERT_NE(quarantine_at, std::string::npos);
  ASSERT_NE(breaker_at, std::string::npos);
  EXPECT_LT(window_at, quarantine_at);
  EXPECT_LT(quarantine_at, breaker_at);
  EXPECT_NE(text.find("data: trace=0 window=1"), std::string::npos);
  // Every frame carries its monotonically increasing id line.
  EXPECT_NE(text.find("id: "), std::string::npos);

  ::close(fd);
  server.stop();
}

TEST_F(ObsServerTest, SseKeepAliveCommentsFlowWhileIdle) {
  ObsHttpServer::Options options;
  options.keepalive = std::chrono::milliseconds(100);
  ObsHttpServer server(options, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /events HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  const auto text =
      read_until(fd, ": keep-alive", std::chrono::milliseconds(3000));
  EXPECT_NE(text.find(": keep-alive\n\n"), std::string::npos) << text;
  ::close(fd);
  server.stop();
}

TEST_F(ObsServerTest, ClientDisconnectMidStreamLeavesServerServing) {
  ObsHttpServer::Options options;
  options.keepalive = std::chrono::milliseconds(50);
  ObsHttpServer::Providers providers;
  providers.metrics = [] { return std::string("ok 1\n"); };
  ObsHttpServer server(options, std::move(providers));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Open an SSE stream, read the head, then hang up abruptly while the
  // server is mid keep-alive cadence.
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /events HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  (void)read_until(fd, ": keep-alive", std::chrono::milliseconds(2000));
  ::close(fd);

  // The dropped client's thread unwinds on its next send; the server must
  // keep answering new requests afterwards.
  auto& stream = obs::EventStream::process();
  stream.emit("window", "trace=1 window=1");
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.find("HTTP/1.1 200 OK"), 0u) << metrics;
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ObsServerTest, StopUnblocksOpenSseClients) {
  ObsHttpServer server(ObsHttpServer::Options{}, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /events HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  ASSERT_NE(read_until(fd, "text/event-stream", std::chrono::milliseconds(2000))
                .find("text/event-stream"),
            std::string::npos);

  // stop() must shut the open stream down and join within bounded time --
  // read_until sees EOF (empty tail or peer close) instead of hanging.
  const auto before = std::chrono::steady_clock::now();
  server.stop();
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_FALSE(obs::EventStream::process().enabled());  // gate off again
  ::close(fd);
}

TEST_F(ObsServerTest, SlowClientShedWith408) {
  ObsHttpServer::Options options;
  options.read_deadline = std::chrono::milliseconds(200);
  ObsHttpServer server(options, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Slowloris: open a connection, dribble half a request line, then stall.
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string partial = "GET /metr";
  ASSERT_GT(::send(fd, partial.data(), partial.size(), 0), 0);
  const auto response = read_until(fd, "\r\n\r\n", std::chrono::milliseconds(3000));
  EXPECT_EQ(response.find("HTTP/1.1 408"), 0u) << response;
  ::close(fd);
  EXPECT_GE(server.stats().rejected_timeout, 1u);

  // The deadline sheds one slow client, not the listener.
  const auto metrics = http_get(server.port(), "/progress");
  EXPECT_EQ(metrics.find("HTTP/1.1 200"), 0u) << metrics;
  server.stop();
}

TEST_F(ObsServerTest, OversizedHeaderShedWith431) {
  ObsHttpServer::Options options;
  options.max_header_bytes = 1024;
  ObsHttpServer server(options, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // A header section that never terminates: 4 KiB of padding with no
  // blank line, so the head cannot complete before the cap trips.
  std::string request = "GET /metrics HTTP/1.1\r\nX-Pad: ";
  request.append(4096, 'a');
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  const auto response = read_until(fd, "\r\n\r\n", std::chrono::milliseconds(3000));
  EXPECT_EQ(response.find("HTTP/1.1 431"), 0u) << response;
  ::close(fd);
  EXPECT_GE(server.stats().rejected_oversized, 1u);
  server.stop();
}

TEST_F(ObsServerTest, OversizedBodyShedWith413) {
  ObsHttpServer::Options options;
  options.max_body_bytes = 64;
  ObsHttpServer server(options, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // The declared length alone must trigger the refusal -- the server
  // must not buffer toward a 100 KB body hoping it stays small.
  const std::string request =
      "POST /campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 100000\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  const auto response = read_until(fd, "\r\n\r\n", std::chrono::milliseconds(3000));
  EXPECT_EQ(response.find("HTTP/1.1 413"), 0u) << response;
  ::close(fd);
  EXPECT_GE(server.stats().rejected_oversized, 1u);
  server.stop();
}

TEST_F(ObsServerTest, MalformedRequestShedWith400) {
  ObsHttpServer server(ObsHttpServer::Options{}, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string junk = "NOT A REQUEST\r\n\r\n";
  ASSERT_GT(::send(fd, junk.data(), junk.size(), 0), 0);
  const auto response = read_until(fd, "\r\n\r\n", std::chrono::milliseconds(3000));
  EXPECT_EQ(response.find("HTTP/1.1 400"), 0u) << response;
  ::close(fd);
  server.stop();
}

TEST_F(ObsServerTest, HandlerRoutesPostsAndExtraHeaders) {
  ObsHttpServer server(ObsHttpServer::Options{}, ObsHttpServer::Providers{});
  server.set_handler([](const wire::HttpRequest& request) {
    ObsHttpServer::Response response;
    if (request.method == "POST" && request.target == "/campaigns") {
      response.status = 429;
      response.reason = "Too Many Requests";
      response.body = "{\"error\":\"full\"}";
      response.content_type = "application/json";
      response.headers.push_back({"Retry-After", "2"});
      // Echo the body length so the test proves the body reached us.
      response.headers.push_back(
          {"X-Body-Bytes", std::to_string(request.body.size())});
      return response;
    }
    response.status = 404;
    response.reason = "Not Found";
    return response;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string body = "{\"scale\":0.05}";
  const std::string request =
      "POST /campaigns HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.find("HTTP/1.1 429"), 0u) << response;
  EXPECT_NE(response.find("Retry-After: 2"), std::string::npos) << response;
  EXPECT_NE(response.find("X-Body-Bytes: " + std::to_string(body.size())),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("{\"error\":\"full\"}"), std::string::npos);
  server.stop();
}

TEST_F(ObsServerTest, PostWithoutHandlerIs405) {
  ObsHttpServer server(ObsHttpServer::Options{}, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string request =
      "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  const auto response = read_until(fd, "\r\n\r\n", std::chrono::milliseconds(3000));
  EXPECT_EQ(response.find("HTTP/1.1 405"), 0u) << response;
  ::close(fd);
  server.stop();
}

TEST_F(ObsServerTest, MetricsExportObsEventsDroppedTotal) {
  ObsHttpServer server(ObsHttpServer::Options{}, ObsHttpServer::Providers{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto& stream = obs::EventStream::process();
  ASSERT_TRUE(stream.enabled());
  // Overflow the bounded ring by exactly 5 events with no consumer.
  for (int i = 0; i < static_cast<int>(obs::EventStream::kCapacity) + 5; ++i) {
    stream.emit("window", "n=" + std::to_string(i));
  }
  EXPECT_EQ(stream.dropped(), 5u);

  const auto metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE ecnprobe_obs_events_dropped_total counter"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("ecnprobe_obs_events_dropped_total 5"),
            std::string::npos)
      << metrics;
  server.stop();
}

}  // namespace
}  // namespace ecnprobe::http
