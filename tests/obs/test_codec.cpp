#include "ecnprobe/obs/codec.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/obs/metrics.hpp"

namespace ecnprobe::obs {
namespace {

ObsSnapshot sample_snapshot() {
  MetricsRegistry registry;
  registry.counter("probes_sent_total", {{"ecn", "ect0"}}, "probes sent")->inc(17);
  registry.counter("probes_sent_total", {{"ecn", "not-ect"}})->inc(3);
  registry.gauge("inflight", {}, "in-flight probes")->set(-4);
  auto* hist = registry.histogram("rtt_ms", {1.0, 10.0, 100.5}, {{"vantage", "UGla wired"}},
                                  "round trips");
  hist->observe(0.5);
  hist->observe(42.0);
  hist->observe(5000.0);

  Observability obs;
  obs.ledger.record_drop(Layer::Link, DropCause::LinkLoss, "r1");
  obs.ledger.record_drop(Layer::Link, DropCause::LinkLoss, "r1");
  obs.ledger.record_drop(Layer::Measure, DropCause::TraceQuarantined, "EC2 Tok");
  obs.ledger.record_rewrite(Layer::Policy, RewriteCause::Bleached, "r2");

  ObsSnapshot snapshot;
  snapshot.metrics = registry.snapshot();
  snapshot.ledger = obs.ledger.aggregate();
  return snapshot;
}

TEST(ObsCodec, RoundTripsByteExactly) {
  const auto snapshot = sample_snapshot();
  const auto text = encode_obs(snapshot);
  const auto decoded = decode_obs(text);
  ASSERT_TRUE(decoded) << decoded.error().message;
  // The codec's contract: decode(encode(s)) re-encodes to the same bytes.
  EXPECT_EQ(encode_obs(*decoded), text);
  EXPECT_EQ(decoded->ledger.total_drops(), snapshot.ledger.total_drops());
  EXPECT_EQ(decoded->ledger.total_rewrites(), snapshot.ledger.total_rewrites());
}

TEST(ObsCodec, EmptySnapshotRoundTrips) {
  const ObsSnapshot empty;
  const auto decoded = decode_obs(encode_obs(empty));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->metrics.empty());
  EXPECT_EQ(decoded->ledger.total_drops(), 0u);
}

TEST(ObsCodec, TokensSurviveHostileStrings) {
  // Labels with spaces, percent signs, newlines, and the empty string.
  for (const std::string raw : {"", " ", "a b", "100%", "line\nbreak", "%20", "\r\n%"}) {
    const auto token = escape_token(raw);
    EXPECT_FALSE(token.empty());
    EXPECT_EQ(token.find(' '), std::string::npos) << raw;
    EXPECT_EQ(token.find('\n'), std::string::npos) << raw;
    const auto back = unescape_token(token);
    ASSERT_TRUE(back) << raw;
    EXPECT_EQ(*back, raw);
  }
}

TEST(ObsCodec, MalformedInputRejectedNotCrashed) {
  EXPECT_FALSE(decode_obs("S 0 1 0 0 0 0"));      // sample before any family
  EXPECT_FALSE(decode_obs("M onlyname"));          // short family line
  EXPECT_FALSE(decode_obs("D link"));              // short ledger line
  EXPECT_FALSE(decode_obs("X what is this"));      // unknown record type
  EXPECT_FALSE(decode_obs("D link link-loss notanumber"));
}

TEST(ObsCodec, MergeOfDecodedDeltasMatchesDirectMerge) {
  // The resume path decodes per-trace deltas and merges them; that must
  // equal merging the originals.
  const auto a = sample_snapshot();
  auto direct = sample_snapshot();
  direct.merge(a);

  auto via_codec = *decode_obs(encode_obs(a));
  via_codec.merge(*decode_obs(encode_obs(a)));
  EXPECT_EQ(encode_obs(via_codec), encode_obs(direct));
}

}  // namespace
}  // namespace ecnprobe::obs
