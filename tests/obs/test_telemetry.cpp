// Telemetry layer contract: --telemetry spec parsing, the budget
// accountant, head-based trace sampling and exemplar determinism in the
// recorder, plan-order folding in the aggregate, and the journal codec
// round-trip for telemetry deltas (including exact-mode byte stability).
#include "ecnprobe/obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ecnprobe/obs/codec.hpp"
#include "ecnprobe/obs/ledger.hpp"

namespace ecnprobe::obs {
namespace {

TelemetryConfig sketched_config(std::uint64_t seed, int sample_every = 4) {
  TelemetryConfig config;
  config.mode = TelemetryMode::Sketched;
  config.sample_every = sample_every;
  return config.resolved(seed);
}

TEST(TelemetryConfig, ParsesExactAndSketchedSpecs) {
  const auto exact = TelemetryConfig::parse("exact");
  ASSERT_TRUE(exact);
  EXPECT_FALSE(exact->sketched());

  const auto sketched = TelemetryConfig::parse(
      "sketched,eps=0.01,delta=0.05,alpha=0.02,sample-every=16,reservoir=4,"
      "budget-kb=64,seed=7");
  ASSERT_TRUE(sketched);
  EXPECT_TRUE(sketched->sketched());
  EXPECT_DOUBLE_EQ(sketched->epsilon, 0.01);
  EXPECT_DOUBLE_EQ(sketched->delta, 0.05);
  EXPECT_DOUBLE_EQ(sketched->alpha, 0.02);
  EXPECT_EQ(sketched->sample_every, 16);
  EXPECT_EQ(sketched->reservoir, 4);
  EXPECT_EQ(sketched->budget_bytes, std::size_t{64} * 1024);
  EXPECT_EQ(sketched->seed, 7u);
}

TEST(TelemetryConfig, RejectsMalformedSpecs) {
  EXPECT_FALSE(TelemetryConfig::parse(""));
  EXPECT_FALSE(TelemetryConfig::parse("bogus"));
  EXPECT_FALSE(TelemetryConfig::parse("exact,eps=0.1"));
  EXPECT_FALSE(TelemetryConfig::parse("sketched,eps=banana"));
  EXPECT_FALSE(TelemetryConfig::parse("sketched,eps=0"));
  EXPECT_FALSE(TelemetryConfig::parse("sketched,sample-every=-3"));
  EXPECT_FALSE(TelemetryConfig::parse("sketched,unknown=1"));
}

TEST(TelemetryConfig, ResolvedInheritsCampaignSeed) {
  TelemetryConfig config;
  config.mode = TelemetryMode::Sketched;
  EXPECT_EQ(config.resolved(42).seed, 42u);
  config.seed = 9;
  EXPECT_EQ(config.resolved(42).seed, 9u);
}

TEST(TelemetryBudget, ChargesAndRejectsAtCap) {
  TelemetryBudget budget(100);
  EXPECT_TRUE(budget.try_charge(60));
  EXPECT_TRUE(budget.try_charge(40));
  EXPECT_FALSE(budget.try_charge(1));
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_EQ(budget.admitted(), 2u);
  EXPECT_EQ(budget.rejected(), 1u);
  budget.release(40);
  EXPECT_EQ(budget.used(), 60u);
  EXPECT_EQ(budget.peak(), 100u);
  // Zero cap = unlimited.
  TelemetryBudget unlimited;
  EXPECT_TRUE(unlimited.try_charge(std::size_t{1} << 40));
}

TEST(TelemetryRecorder, HeadBasedSamplingKeepsEveryNthTrace) {
  TelemetryRecorder recorder;
  recorder.arm(sketched_config(1, 4));
  for (int trace = 0; trace < 12; ++trace) {
    recorder.begin_trace(trace);
    EXPECT_EQ(recorder.trace_sampled_exact(), trace % 4 == 0) << trace;
  }
  recorder.disarm();
  recorder.begin_trace(3);
  // Disarmed = exact mode: every trace keeps exact records.
  EXPECT_TRUE(recorder.trace_sampled_exact());
}

TEST(TelemetryRecorder, ComposesCauseHopAndAsKeys) {
  TelemetryRecorder recorder;
  recorder.arm(sketched_config(1, 1));
  recorder.set_as_labeler([](const std::string& node) {
    return node == "10.0.0.1" ? "AS64496" : std::string();
  });
  recorder.begin_trace(0);
  recorder.on_drop("policy", "ect-udp-filter", "10.0.0.1");
  recorder.on_drop("policy", "ect-udp-filter", "10.0.0.2");
  recorder.on_rewrite("ip", "ecn-bleach");
  const auto delta = recorder.collect_delta();
  EXPECT_EQ(delta.counts.at("cause:policy/ect-udp-filter"), 2u);
  EXPECT_EQ(delta.counts.at("hop:10.0.0.1/ect-udp-filter"), 1u);
  EXPECT_EQ(delta.counts.at("hop:10.0.0.2/ect-udp-filter"), 1u);
  EXPECT_EQ(delta.counts.at("as:AS64496/ect-udp-filter"), 1u);
  EXPECT_EQ(delta.counts.at("rewrite:ip/ecn-bleach"), 1u);
  EXPECT_EQ(delta.counts.count("as:/ect-udp-filter"), 0u);
}

TEST(TelemetryRecorder, FoldedTracesReserveDeterministicExemplars) {
  const auto run = [](std::uint64_t seed) {
    TelemetryRecorder recorder;
    auto config = sketched_config(seed, 100);
    config.reservoir = 2;
    recorder.arm(config);
    recorder.begin_trace(1);  // unsampled: 1 % 100 != 0
    EXPECT_FALSE(recorder.trace_sampled_exact());
    for (int i = 0; i < 50; ++i) {
      recorder.on_drop("policy", "drop", "node-" + std::to_string(i));
    }
    return recorder.collect_delta();
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a.folded_records, 50u);
  EXPECT_EQ(a.exemplars.size(), 2u);
  EXPECT_EQ(a, b);  // reservoir choices are a pure function of (seed, trace)
  const auto c = run(8);
  EXPECT_EQ(c.folded_records, 50u);  // counts identical even if picks differ
}

TEST(TelemetryAggregate, FoldReconcilesWithinBound) {
  const auto config = sketched_config(42, 1);
  TelemetryAggregate aggregate(config);
  ASSERT_TRUE(aggregate.active());

  TelemetryRecorder recorder;
  recorder.arm(config);
  std::map<std::string, std::uint64_t> truth;
  for (int trace = 0; trace < 20; ++trace) {
    recorder.begin_trace(trace);
    for (int i = 0; i < 30; ++i) {
      const std::string node = "10.0." + std::to_string(trace) + "." + std::to_string(i);
      recorder.on_drop("policy", "ect-udp-filter", node);
      truth["cause:policy/ect-udp-filter"] += 1;
      truth["hop:" + node + "/ect-udp-filter"] += 1;
    }
    aggregate.fold(recorder.collect_delta());
  }
  EXPECT_EQ(aggregate.traces_folded(), 20u);
  const auto bound = aggregate.error_bound();
  for (const auto& [key, count] : truth) {
    const auto estimate = aggregate.estimate(key);
    EXPECT_GE(estimate, count) << key;
    EXPECT_LE(estimate, count + bound) << key;
  }
}

TEST(TelemetryAggregate, InactiveAggregateIgnoresFolds) {
  TelemetryAggregate aggregate;
  EXPECT_FALSE(aggregate.active());
  TelemetryDelta delta;
  delta.counts["cause:a/b"] = 3;
  aggregate.fold(delta);
  EXPECT_EQ(aggregate.estimate("cause:a/b"), 0u);
  EXPECT_EQ(aggregate.traces_folded(), 0u);
}

TEST(TelemetryCodec, DeltaRoundTripsThroughJournalCodec) {
  ObsSnapshot snapshot;
  snapshot.telemetry.counts["cause:policy/ect-udp-filter"] = 7;
  snapshot.telemetry.counts["hop:10.0.0.1/timeout"] = 2;
  snapshot.telemetry.rtt_buckets[12] = 5;
  snapshot.telemetry.rtt_count = 5;
  snapshot.telemetry.rtt_sum_nanos = 123456789;
  snapshot.telemetry.folded_records = 9;
  snapshot.telemetry.sampled_exact = 0;
  snapshot.telemetry.exemplars.push_back({3, "policy", "ect udp", "10.0.0.1"});

  const auto encoded = encode_obs(snapshot);
  const auto decoded = decode_obs(encoded);
  ASSERT_TRUE(decoded) << decoded.error().message;
  EXPECT_EQ(decoded->telemetry, snapshot.telemetry);
  EXPECT_EQ(encode_obs(*decoded), encoded);
}

TEST(TelemetryCodec, ExactModeSnapshotsEncodeWithoutTelemetryRecords) {
  ObsSnapshot snapshot;  // empty telemetry delta = exact mode
  const auto encoded = encode_obs(snapshot);
  EXPECT_EQ(encoded.find("\nT "), std::string::npos);
  EXPECT_EQ(encoded.find("\nL "), std::string::npos);
  EXPECT_EQ(encoded.find("\nQ "), std::string::npos);
  EXPECT_EQ(encoded.find("\nF "), std::string::npos);
  EXPECT_EQ(encoded.find("\nE "), std::string::npos);
  EXPECT_NE(encoded.rfind("T ", 0), 0u);
}

}  // namespace
}  // namespace ecnprobe::obs
