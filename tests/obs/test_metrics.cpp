// MetricsRegistry contract tests: exact concurrent counting, histogram
// bucket-boundary semantics, snapshot algebra (merge/delta), and the
// deterministic JSON/Prometheus encoders.
#include "ecnprobe/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "ecnprobe/obs/export.hpp"

namespace ecnprobe::obs {
namespace {

TEST(MetricsRegistry, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  auto* counter = registry.counter("hits_total", {}, "test counter");
  auto* gauge = registry.gauge("depth", {}, "test gauge");
  auto* histogram = registry.histogram("lat_ms", {1.0, 10.0, 100.0}, {}, "test histo");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->inc();
        gauge->add(1);
        gauge->add(-1);
        histogram->observe(5.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->sum_milli(),
            static_cast<std::int64_t>(kThreads) * kPerThread * 5000);
}

TEST(MetricsRegistry, InstrumentPointersAreStable) {
  MetricsRegistry registry;
  auto* first = registry.counter("a_total", {{"k", "v"}});
  // Registering many more instruments must not move the first one.
  for (int i = 0; i < 100; ++i) {
    registry.counter("a_total", {{"k", "v" + std::to_string(i)}});
  }
  EXPECT_EQ(registry.counter("a_total", {{"k", "v"}}), first);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.5, 10.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (boundary lands in its own bucket)
  h.observe(1.001); // <= 2.5
  h.observe(2.5);   // <= 2.5
  h.observe(10.0);  // <= 10.0
  h.observe(10.5);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h.count(), 6u);
  // Sum in exact fixed-point millis: 0.5+1+1.001+2.5+10+10.5 = 25.501.
  EXPECT_EQ(h.sum_milli(), 25501);
}

TEST(MetricsSnapshot, DeltaDropsUntouchedInstrumentsAndMergeRestores) {
  MetricsRegistry registry;
  auto* warm = registry.counter("warm_total");
  registry.counter("cold_total");  // registered, never incremented
  warm->inc(3);

  const auto base = registry.snapshot();
  warm->inc(4);
  const auto delta = registry.snapshot().delta_since(base);

  // Only the family that moved appears in the delta, with just the motion.
  ASSERT_TRUE(delta.families.contains("warm_total"));
  EXPECT_FALSE(delta.families.contains("cold_total"));
  EXPECT_EQ(delta.families.at("warm_total").samples.at({}).counter, 4u);

  // base + delta == current.
  MetricsSnapshot reconstructed = base;
  reconstructed.merge(delta);
  EXPECT_EQ(reconstructed.families.at("warm_total").samples.at({}).counter, 7u);
}

TEST(MetricsExport, EqualRegistriesEncodeToEqualBytes) {
  auto populate = [](MetricsRegistry& r) {
    // Deliberately different registration order: encoding must canonicalize.
    r.counter("z_total", {{"b", "2"}, {"a", "1"}})->inc(5);
    r.histogram("h_ms", {1.0, 5.0}, {{"v", "x"}})->observe(3.25);
    r.counter("a_total")->inc(1);
    r.gauge("g", {{"v", "y"}})->set(-4);
  };
  auto populate_reversed = [](MetricsRegistry& r) {
    r.gauge("g", {{"v", "y"}})->set(-4);
    r.counter("a_total")->inc(1);
    r.histogram("h_ms", {1.0, 5.0}, {{"a", "ignored-labels-differ"}});
    r.histogram("h_ms", {1.0, 5.0}, {{"v", "x"}})->observe(3.25);
    r.counter("z_total", {{"a", "1"}, {"b", "2"}})->inc(5);
  };
  MetricsRegistry one;
  MetricsRegistry two;
  populate(one);
  populate_reversed(two);
  // `two` has one extra registered-but-untouched histogram cell; deltas from
  // empty drop it, so the deltas encode identically.
  const auto snap_one = one.snapshot().delta_since({});
  const auto snap_two = two.snapshot().delta_since({});
  EXPECT_EQ(to_json(snap_one), to_json(snap_two));
  EXPECT_EQ(to_prometheus(snap_one), to_prometheus(snap_two));
}

TEST(MetricsExport, JsonAndPrometheusCarryTheSameNumbers) {
  MetricsRegistry registry;
  registry.counter("requests_total", {{"code", "200"}}, "requests")->inc(42);
  auto* h = registry.histogram("rtt_ms", {10.0, 50.0}, {}, "round trips");
  h->observe(7.0);
  h->observe(20.0);
  h->observe(99.0);
  const auto snap = registry.snapshot();

  const auto json = to_json(snap);
  EXPECT_NE(json.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"200\""), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":126.000"), std::string::npos);

  const auto prom = to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(prom.find("requests_total{code=\"200\"} 42"), std::string::npos);
  // Cumulative buckets: le="50" covers both the 7 and the 20.
  EXPECT_NE(prom.find("rtt_ms_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("rtt_ms_bucket{le=\"50\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("rtt_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("rtt_ms_count 3"), std::string::npos);
}

TEST(MetricsSnapshot, MergeIsCommutativeOnDisjointAndSharedFamilies) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("shared_total")->inc(2);
  a.counter("only_a_total")->inc(1);
  b.counter("shared_total")->inc(5);
  b.counter("only_b_total")->inc(9);

  auto ab = a.snapshot();
  ab.merge(b.snapshot());
  auto ba = b.snapshot();
  ba.merge(a.snapshot());
  EXPECT_EQ(to_json(ab), to_json(ba));
  EXPECT_EQ(ab.families.at("shared_total").samples.at({}).counter, 7u);
}

TEST(MetricsSnapshot, MergeRejectsMismatchedHistogramBounds) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("rtt_ms", {1.0, 10.0, 100.0})->observe(5.0);
  b.histogram("rtt_ms", {2.0, 20.0})->observe(5.0);
  auto merged = a.snapshot();
  // Summing per-bucket counts across different bounds would silently
  // misalign every bucket; the merge must refuse loudly instead.
  EXPECT_THROW(merged.merge(b.snapshot()), std::invalid_argument);

  // Same bounds still merge fine, and a bounds-less side adopts the
  // other's layout (the journal codec can produce header-only families).
  MetricsRegistry c;
  c.histogram("rtt_ms", {1.0, 10.0, 100.0})->observe(50.0);
  auto ok = a.snapshot();
  ok.merge(c.snapshot());
  EXPECT_EQ(ok.families.at("rtt_ms").samples.at({}).count, 2u);
}

}  // namespace
}  // namespace ecnprobe::obs
