// Prometheus text-format label escaping: label values containing
// backslashes, double quotes, or newlines must come out as \\, \", and \n
// per the exposition format -- a hostile node or cause name must never be
// able to break a sample line in two or smuggle in an extra label.
#include <gtest/gtest.h>

#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/obs/metrics.hpp"

namespace ecnprobe::obs {
namespace {

TEST(PrometheusEscape, HostileLabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("drops_total", {{"node", "fw\\9"}}, "test")->inc();
  registry.counter("drops_total", {{"node", "evil\"quote"}}, "test")->inc(2);
  registry.counter("drops_total", {{"node", "line\nbreak"}}, "test")->inc(3);

  const auto text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("node=\"fw\\\\9\""), std::string::npos) << text;
  EXPECT_NE(text.find("node=\"evil\\\"quote\""), std::string::npos) << text;
  EXPECT_NE(text.find("node=\"line\\nbreak\""), std::string::npos) << text;
}

TEST(PrometheusEscape, NoRawNewlineInsideAnySample) {
  MetricsRegistry registry;
  registry.counter("drops_total", {{"cause", "a\nb\nc"}}, "test")->inc();
  const auto text = to_prometheus(registry.snapshot());

  // Every line that is not a comment must be a complete sample: a newline
  // that survived unescaped inside a label value would leave a line with an
  // unbalanced brace.
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const auto line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      const auto open = line.find('{');
      if (open != std::string::npos) {
        EXPECT_NE(line.find('}', open), std::string::npos)
            << "sample line split by raw newline: " << line;
      }
    }
    start = end + 1;
  }
}

TEST(PrometheusEscape, CleanValuesPassThroughUnchanged) {
  MetricsRegistry registry;
  registry.counter("hits_total", {{"vantage", "EC2 Tok"}}, "test")->inc(7);
  const auto text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("hits_total{vantage=\"EC2 Tok\"} 7"), std::string::npos) << text;
}

}  // namespace
}  // namespace ecnprobe::obs
