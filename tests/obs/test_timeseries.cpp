#include "ecnprobe/obs/timeseries.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/obs/codec.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/obs/loghist.hpp"

namespace ecnprobe::obs {
namespace {

TimeSeriesConfig enabled_config(std::int64_t window_ms = 1000) {
  TimeSeriesConfig config;
  config.enabled = true;
  config.window_nanos = window_ms * 1'000'000;
  return config;
}

TEST(TimeSeriesConfig, ParseGrammar) {
  const auto off = TimeSeriesConfig::parse("off");
  ASSERT_TRUE(off);
  EXPECT_FALSE(off->enabled);

  const auto bare = TimeSeriesConfig::parse("250");
  ASSERT_TRUE(bare);
  EXPECT_TRUE(bare->enabled);
  EXPECT_EQ(bare->window_nanos, 250'000'000);

  const auto full = TimeSeriesConfig::parse("window-ms=50,alpha=0.05,max-windows=64");
  ASSERT_TRUE(full);
  EXPECT_TRUE(full->enabled);
  EXPECT_EQ(full->window_nanos, 50'000'000);
  EXPECT_DOUBLE_EQ(full->alpha, 0.05);
  EXPECT_EQ(full->max_windows, 64);

  EXPECT_FALSE(TimeSeriesConfig::parse(""));
  EXPECT_FALSE(TimeSeriesConfig::parse("banana"));
  EXPECT_FALSE(TimeSeriesConfig::parse("0"));
  EXPECT_FALSE(TimeSeriesConfig::parse("-5"));
  EXPECT_FALSE(TimeSeriesConfig::parse("window-ms=0"));
  EXPECT_FALSE(TimeSeriesConfig::parse("alpha=2"));
  EXPECT_FALSE(TimeSeriesConfig::parse("max-windows=x"));
  EXPECT_FALSE(TimeSeriesConfig::parse("unknown=1"));
}

TEST(TimeSeriesRecorder, DisabledRecorderStaysInert) {
  TimeSeriesRecorder recorder;
  recorder.begin_trace(0);
  recorder.on_probe("udp-plain", "ok");
  recorder.on_drop("link", "link-loss");
  recorder.observe_rtt(util::SimDuration::nanos(1'000'000));
  EXPECT_FALSE(recorder.armed());
  EXPECT_TRUE(recorder.collect_delta().empty());
}

TEST(TimeSeriesRecorder, WindowsAreEpochRelative) {
  TimeSeriesRecorder recorder;
  std::int64_t now = 0;
  recorder.set_clock([&now] { return now; });
  recorder.arm(enabled_config(1000));  // 1 s windows

  // Trace epoch starts at an arbitrary absolute sim time: the recorder
  // must subtract it, so window 0 covers [origin, origin + 1s).
  now = 5'500'000'000;
  recorder.begin_trace(7);
  recorder.on_probe("udp-plain", "ok");       // window 0
  now += 300'000'000;
  recorder.on_drop("link", "link-loss");      // still window 0
  now += 800'000'000;                          // 1.1 s after origin
  recorder.on_probe("udp-plain", "timeout");  // window 1
  now += 2'000'000'000;                        // 3.1 s after origin
  recorder.observe_rtt(util::SimDuration::nanos(2'000'000));  // window 3

  const auto delta = recorder.collect_delta();
  ASSERT_EQ(delta.windows.size(), 3u);
  EXPECT_EQ(delta.windows.at(0).counts.at("probe:udp-plain/ok"), 1u);
  EXPECT_EQ(delta.windows.at(0).counts.at("drop:link/link-loss"), 1u);
  EXPECT_EQ(delta.windows.at(1).counts.at("probe:udp-plain/timeout"), 1u);
  EXPECT_EQ(delta.windows.at(3).rtt_count, 1u);
  EXPECT_EQ(delta.windows.at(3).rtt_sum_nanos, 2'000'000);
  const int bucket = LogHistogram::bucket_index(2'000'000, delta.rtt_subbits);
  EXPECT_EQ(delta.windows.at(3).rtt_buckets.at(bucket), 1u);

  // A new trace resets the origin: the same offsets land in the same
  // windows regardless of absolute time (the determinism property).
  now = 42'000'000'000;
  recorder.begin_trace(8);
  recorder.on_probe("udp-plain", "ok");
  const auto second = recorder.collect_delta();
  ASSERT_EQ(second.windows.size(), 1u);
  EXPECT_EQ(second.windows.at(0).counts.at("probe:udp-plain/ok"), 1u);
}

TEST(TimeSeriesRecorder, LateSamplesClampIntoLastWindow) {
  TimeSeriesRecorder recorder;
  std::int64_t now = 0;
  recorder.set_clock([&now] { return now; });
  auto config = enabled_config(10);
  config.max_windows = 4;
  recorder.arm(config);
  recorder.begin_trace(0);
  now = 1'000'000'000;  // way past 4 windows of 10 ms
  recorder.on_probe("udp-plain", "ok");
  const auto delta = recorder.collect_delta();
  ASSERT_EQ(delta.windows.size(), 1u);
  EXPECT_EQ(delta.windows.begin()->first, 3);
}

TEST(TimeSeriesDelta, MergeIsCommutativeAndChecksConfig) {
  TimeSeriesDelta a;
  a.window_nanos = 1'000'000'000;
  a.rtt_subbits = 5;
  a.windows[0].counts["probe:udp-plain/ok"] = 2;
  a.windows[2].rtt_count = 1;
  a.windows[2].rtt_sum_nanos = 10;

  TimeSeriesDelta b;
  b.window_nanos = 1'000'000'000;
  b.rtt_subbits = 5;
  b.windows[0].counts["probe:udp-plain/ok"] = 3;
  b.windows[0].counts["drop:link/link-loss"] = 1;

  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.windows.at(0).counts.at("probe:udp-plain/ok"), 5u);

  // Inert sides adopt the other's config; conflicting configs throw.
  TimeSeriesDelta inert;
  inert.merge(a);
  EXPECT_EQ(inert, a);
  TimeSeriesDelta other_config = b;
  other_config.window_nanos = 2'000'000'000;
  EXPECT_THROW(ab.merge(other_config), std::invalid_argument);
}

TEST(TimeSeriesCodec, RoundTripsByteExactly) {
  ObsSnapshot snapshot;
  snapshot.timeseries.window_nanos = 500'000'000;
  snapshot.timeseries.rtt_subbits = 5;
  auto& w0 = snapshot.timeseries.windows[0];
  w0.counts["probe:udp-plain/ok"] = 4;
  w0.counts["drop:router/ecn-blackhole"] = 1;
  w0.rtt_buckets[123] = 4;
  w0.rtt_count = 4;
  w0.rtt_sum_nanos = 8'000'000;
  snapshot.timeseries.windows[7].counts["rewrite:policy/bleached"] = 2;

  const auto text = encode_obs(snapshot);
  const auto decoded = decode_obs(text);
  ASSERT_TRUE(decoded) << decoded.error().message;
  EXPECT_EQ(decoded->timeseries, snapshot.timeseries);
  EXPECT_EQ(encode_obs(*decoded), text);
}

TEST(TimeSeriesCodec, EmptySeriesKeepsLegacyBytes) {
  // The whole byte-compat story: a snapshot without a series must encode
  // to the exact same bytes as before the series layer existed (no Z/W/X/Y
  // records), so old journals and goldens replay unchanged.
  const ObsSnapshot empty;
  const auto text = encode_obs(empty);
  EXPECT_EQ(text.find('Z'), std::string::npos);
  const auto decoded = decode_obs(text);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->timeseries.empty());
}

TEST(TimeSeriesCodec, MalformedRecordsRejected) {
  EXPECT_FALSE(decode_obs("Z 0 5"));          // window width < 1
  EXPECT_FALSE(decode_obs("Z 1000 65"));      // subbits out of range
  EXPECT_FALSE(decode_obs("W -1 key 3"));     // negative window index
  EXPECT_FALSE(decode_obs("W 0 key"));        // short count record
  EXPECT_FALSE(decode_obs("X 0 -2 1"));       // negative bucket
  EXPECT_FALSE(decode_obs("Y 0 1"));          // short totals record
}

TEST(TimeSeriesExport, JsonAndPrometheusOmittedWhenEmpty) {
  const ObsSnapshot empty;
  EXPECT_EQ(to_json(empty).find("timeseries"), std::string::npos);
  EXPECT_TRUE(to_prometheus(empty.timeseries).empty());
}

TEST(TimeSeriesExport, JsonAndPrometheusCarryWindows) {
  ObsSnapshot snapshot;
  snapshot.timeseries.window_nanos = 1'000'000'000;
  snapshot.timeseries.rtt_subbits = 5;
  auto& w0 = snapshot.timeseries.windows[0];
  w0.counts["probe:udp-plain/ok"] = 4;
  w0.rtt_buckets[100] = 4;
  w0.rtt_count = 4;
  w0.rtt_sum_nanos = 8'000'000;

  const auto json = to_json(snapshot);
  EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(json.find("\"window_nanos\":1000000000"), std::string::npos);
  EXPECT_NE(json.find("probe:udp-plain/ok"), std::string::npos);

  const auto prom = to_prometheus(snapshot.timeseries);
  EXPECT_NE(prom.find("# TYPE ecnprobe_timeseries_events_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ecnprobe_timeseries_rtt_nanos_count"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::obs
