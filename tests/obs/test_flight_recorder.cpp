// FlightRecorder contract tests: arming/disarming, flight lifecycle
// (begin_flight / stage_reply / take_pending / origin gating), the bounded
// ring's drop-oldest overflow with eviction-stable cursors, epoch-relative
// timestamps, and the pcapng / Chrome-trace exporters' framing.
#include "ecnprobe/obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "ecnprobe/obs/flight_export.hpp"

namespace ecnprobe::obs {
namespace {

using util::SimTime;

FlightEvent sample_event(int probe, SpanEvent type, std::vector<std::uint8_t> wire) {
  FlightEvent event;
  event.key = {3, probe, 0};
  event.type = type;
  event.time = SimTime::from_nanos(1'500'000'123);
  event.layer = Layer::Host;
  event.node = "vp-test";
  event.node_addr = 0x0a000001;
  event.detail = "dst=10.0.0.2";
  event.wire = std::move(wire);
  return event;
}

TEST(FlightRecorder, DisarmedIsInert) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.armed());
  EXPECT_EQ(recorder.begin_flight(false), 0u);
  recorder.record(1, SpanEvent::ProbeSent, SimTime::zero(), Layer::Host, "n", 0, "d");
  recorder.record_here(SpanEvent::Timeout, SimTime::zero(), Layer::App, "n", 0, "d");
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_FALSE(recorder.take_pending().has_value());
}

TEST(FlightRecorder, FlightLifecycleAndOriginGating) {
  FlightRecorder recorder;
  recorder.arm(64);
  recorder.set_trace(7);
  recorder.set_probe(2);
  recorder.set_seq(1);

  const auto flight = recorder.begin_flight(/*retransmit=*/true);
  EXPECT_EQ(flight, 1u);
  const auto pending = recorder.take_pending();
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->flight, flight);
  EXPECT_TRUE(pending->retransmit);
  EXPECT_FALSE(pending->is_reply);
  EXPECT_FALSE(recorder.take_pending().has_value());  // consumed

  recorder.set_flight_origin(flight, 42);
  EXPECT_TRUE(recorder.flight_origin_is(flight, 42));
  EXPECT_FALSE(recorder.flight_origin_is(flight, 43));
  EXPECT_FALSE(recorder.flight_origin_is(999, 42));  // unknown flight

  recorder.record(flight, SpanEvent::ProbeSent, SimTime::from_nanos(10), Layer::Host,
                  "vp", 1, "detail", {0x45, 0x00});
  const auto events = recorder.collect_since(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].key, (SpanKey{7, 2, 1}));  // context captured at begin_flight
  EXPECT_EQ(events[0].wire.size(), 2u);

  // Replies inherit the request's flight and carry no retransmit flag.
  recorder.stage_reply(flight);
  const auto reply = recorder.take_pending();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->is_reply);
  EXPECT_EQ(reply->flight, flight);
}

TEST(FlightRecorder, UnknownFlightAndStaleStragglersAreIgnored) {
  FlightRecorder recorder;
  recorder.arm(8);
  recorder.set_trace(0);
  const auto flight = recorder.begin_flight(false);
  recorder.set_trace(1);  // trace boundary clears the flight table
  recorder.record(flight, SpanEvent::HopForward, SimTime::zero(), Layer::Router, "r", 0,
                  "ttl=3");
  EXPECT_EQ(recorder.size(), 0u);
  // And flight ids restart per trace, keeping worker sequences aligned.
  EXPECT_EQ(recorder.begin_flight(false), 1u);
}

TEST(FlightRecorder, TimestampsAreEpochRelative) {
  FlightRecorder recorder;
  recorder.arm(8);
  // A shard whose clock already advanced to 5s starts a new trace epoch:
  // recorded times must be offsets from the epoch, not absolute.
  recorder.set_trace(4, SimTime::from_nanos(5'000'000'000));
  recorder.begin_flight(false);
  recorder.record(1, SpanEvent::ProbeSent, SimTime::from_nanos(5'000'000'250),
                  Layer::Host, "vp", 0, "d");
  const auto events = recorder.collect_since(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].time.count_nanos(), 250);
}

TEST(FlightRecorder, RingDropsOldestAndCursorsSurviveEviction) {
  FlightRecorder recorder;
  recorder.arm(4);
  recorder.set_trace(0);
  recorder.begin_flight(false);
  for (int i = 0; i < 6; ++i) {
    recorder.record(1, SpanEvent::HopForward, SimTime::from_nanos(i), Layer::Router,
                    "r", 0, std::to_string(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 2u);
  EXPECT_EQ(recorder.cursor(), 6u);

  // collect_since(0) returns what survives: the newest four. The end of a
  // packet's story outlives overflow.
  const auto survivors = recorder.collect_since(0);
  ASSERT_EQ(survivors.size(), 4u);
  EXPECT_EQ(survivors.front().detail, "2");
  EXPECT_EQ(survivors.back().detail, "5");

  // A mark taken mid-stream still slices correctly after eviction.
  const auto tail = recorder.collect_since(5);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].detail, "5");
  EXPECT_TRUE(recorder.collect_since(6).empty());
}

TEST(FlightExport, PcapngFramesAreWellFormed) {
  std::vector<FlightEvent> events;
  events.push_back(sample_event(0, SpanEvent::ProbeSent, {0x45, 0x00, 0x00, 0x14}));
  events.push_back(sample_event(0, SpanEvent::Timeout, {}));  // no wire: skipped
  events.push_back(sample_event(1, SpanEvent::PolicyDrop, {0x45, 0x00, 0x00, 0x1c}));

  std::ostringstream os;
  const auto packets = write_pcapng(os, events);
  EXPECT_EQ(packets, 2u);
  const auto bytes = os.str();
  // Section Header Block: type 0x0a0d0d0a then the little-endian byte-order
  // magic 0x1a2b3c4d.
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[0]), 0x0a);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[1]), 0x0d);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[2]), 0x0d);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[3]), 0x0a);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[8]), 0x4d);
  EXPECT_EQ(static_cast<std::uint8_t>(bytes[11]), 0x1a);
  // The per-packet comment names the span and the emitting node.
  EXPECT_NE(bytes.find("trace=3 probe=0 seq=0 event=probe-sent"), std::string::npos);
  EXPECT_NE(bytes.find("node=vp-test"), std::string::npos);

  // Deterministic: the same events encode to the same bytes.
  std::ostringstream again;
  write_pcapng(again, events);
  EXPECT_EQ(bytes, again.str());
}

TEST(FlightExport, ChromeTraceJsonCoversWirelessEvents) {
  std::vector<FlightEvent> events;
  events.push_back(sample_event(0, SpanEvent::ProbeSent, {0x45}));
  events.push_back(sample_event(0, SpanEvent::Timeout, {}));

  const auto json = to_chrome_trace_json(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"probe-sent\""), std::string::npos);
  // Timeouts have no packet but still appear on the timeline.
  EXPECT_NE(json.find("\"timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  // Exact-nanosecond timestamps: 1500000123 ns = 1500000.123 us.
  EXPECT_NE(json.find("1500000.123"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::obs
