// Drop-attribution ledger tests on crafted mini-nets: each middlebox or
// failure mode must leave exactly one ledger record with the right layer,
// cause, and hop -- the property that lets the loss-autopsy table explain
// every failed probe.
#include "ecnprobe/obs/ledger.hpp"

#include <gtest/gtest.h>

#include "../netsim/mini_net.hpp"
#include "ecnprobe/netsim/policy.hpp"
#include "ecnprobe/obs/export.hpp"

namespace ecnprobe::obs {
namespace {

using netsim::testutil::Chain;

// A chain with a test-private Observability, so records from other tests
// (or the process-wide default) can't leak in.
struct ObservedChain : Chain {
  Observability obs;
  explicit ObservedChain(int n_routers) : Chain(n_routers) {
    net.set_observability(&obs);
  }
  void send_udp(wire::Ecn ecn, std::uint16_t port = 123,
                std::uint8_t ttl = wire::Ipv4Header::kDefaultTtl) {
    auto socket = host_a->open_udp();
    socket->send(host_b->address(), port, {}, ecn, ttl);
    sim.run();
  }
};

TEST(DropAttribution, GreylistDropIsAttributedToPolicyLayer) {
  ObservedChain chain(2);
  netsim::GreylistUdpPolicy::Params params;
  params.flaky_prob = 0.0;
  params.dead_prob = 1.0;  // wedged firewall: every UDP packet greylisted
  chain.net.add_egress_policy(chain.routers[1], 1,
                              std::make_shared<netsim::GreylistUdpPolicy>(params));
  auto receiver = chain.host_b->open_udp(123);
  chain.send_udp(wire::Ecn::NotEct);

  ASSERT_EQ(chain.obs.ledger.drops().size(), 1u);
  const auto& record = chain.obs.ledger.drops()[0];
  EXPECT_EQ(record.layer, Layer::Policy);
  EXPECT_EQ(record.cause, DropCause::Greylist);
  EXPECT_EQ(record.node, "r1");
  EXPECT_TRUE(chain.obs.ledger.rewrites().empty());
}

TEST(DropAttribution, CongestionCeMarkIsOneRewriteRecord) {
  ObservedChain chain(2);
  // RFC 3168 AQM: always mark, never drop -- the packet survives but its
  // codepoint changes, which is a rewrite record, not a drop.
  chain.net.add_egress_policy(chain.routers[0], 1,
                              std::make_shared<netsim::CongestionPolicy>(1.0, 0.0));
  auto receiver = chain.host_b->open_udp(123);
  wire::Ecn seen = wire::Ecn::NotEct;
  receiver->set_receive_handler(
      [&](const netsim::UdpDelivery& d) { seen = d.ecn; });
  chain.send_udp(wire::Ecn::Ect0);

  EXPECT_EQ(seen, wire::Ecn::Ce);
  EXPECT_TRUE(chain.obs.ledger.drops().empty());
  ASSERT_EQ(chain.obs.ledger.rewrites().size(), 1u);
  const auto& record = chain.obs.ledger.rewrites()[0];
  EXPECT_EQ(record.layer, Layer::Policy);
  EXPECT_EQ(record.cause, RewriteCause::CeMarked);
  EXPECT_EQ(record.node, "r0");
}

TEST(DropAttribution, BleachingHopIsOneRewriteRecord) {
  ObservedChain chain(3);
  chain.net.add_egress_policy(chain.routers[1], 1,
                              std::make_shared<netsim::EcnBleachPolicy>(1.0));
  auto receiver = chain.host_b->open_udp(123);
  wire::Ecn seen = wire::Ecn::Ce;
  receiver->set_receive_handler(
      [&](const netsim::UdpDelivery& d) { seen = d.ecn; });
  chain.send_udp(wire::Ecn::Ect0);

  EXPECT_EQ(seen, wire::Ecn::NotEct);
  ASSERT_EQ(chain.obs.ledger.rewrites().size(), 1u);
  const auto& record = chain.obs.ledger.rewrites()[0];
  EXPECT_EQ(record.cause, RewriteCause::Bleached);
  EXPECT_EQ(record.node, "r1");
}

TEST(DropAttribution, TtlExpiryIsAttributedToTheExpiringRouter) {
  ObservedChain chain(4);
  auto receiver = chain.host_b->open_udp(123);
  chain.send_udp(wire::Ecn::NotEct, 123, /*ttl=*/2);

  ASSERT_EQ(chain.obs.ledger.drops().size(), 1u);
  const auto& record = chain.obs.ledger.drops()[0];
  EXPECT_EQ(record.layer, Layer::Router);
  EXPECT_EQ(record.cause, DropCause::TtlExpired);
  EXPECT_EQ(record.node, "r1");  // ttl=2 survives r0, expires at r1
}

TEST(DropAttribution, EctUdpFirewallAndTosFilterCausesAreDistinct) {
  ObservedChain chain(2);
  chain.net.add_egress_policy(chain.routers[0], 1,
                              std::make_shared<netsim::EctUdpDropPolicy>());
  auto receiver = chain.host_b->open_udp(123);
  chain.send_udp(wire::Ecn::Ect0);
  ASSERT_EQ(chain.obs.ledger.drops().size(), 1u);
  EXPECT_EQ(chain.obs.ledger.drops()[0].cause, DropCause::EctUdpFilter);

  ObservedChain tos_chain(2);
  tos_chain.net.add_egress_policy(tos_chain.host_a_id, 0,
                                  std::make_shared<netsim::TosSensitiveDropPolicy>(1.0));
  auto tos_receiver = tos_chain.host_b->open_udp(123);
  tos_chain.send_udp(wire::Ecn::Ect0);
  ASSERT_EQ(tos_chain.obs.ledger.drops().size(), 1u);
  EXPECT_EQ(tos_chain.obs.ledger.drops()[0].cause, DropCause::TosFilter);
  EXPECT_EQ(tos_chain.obs.ledger.drops()[0].node, "hostA");
}

TEST(DropAttribution, NoSocketDeliveryIsAHostLayerDrop) {
  ObservedChain chain(1);
  chain.send_udp(wire::Ecn::NotEct, /*port=*/9999);  // nobody listening
  ASSERT_EQ(chain.obs.ledger.drops().size(), 1u);
  EXPECT_EQ(chain.obs.ledger.drops()[0].layer, Layer::Host);
  EXPECT_EQ(chain.obs.ledger.drops()[0].cause, DropCause::NoSocket);
  EXPECT_EQ(chain.obs.ledger.drops()[0].node, "hostB");
}

TEST(DropAttribution, TraceIndexStampsRecords) {
  ObservedChain chain(1);
  chain.obs.ledger.set_trace(7);
  chain.send_udp(wire::Ecn::NotEct, /*port=*/9999);
  ASSERT_EQ(chain.obs.ledger.drops().size(), 1u);
  EXPECT_EQ(chain.obs.ledger.drops()[0].trace, 7);
}

TEST(DropAttribution, RecordsMirrorIntoCounterFamilies) {
  ObservedChain chain(2);
  chain.net.add_egress_policy(chain.routers[0], 1,
                              std::make_shared<netsim::EcnBleachPolicy>(1.0));
  auto receiver = chain.host_b->open_udp(123);
  chain.send_udp(wire::Ecn::Ect0);
  chain.send_udp(wire::Ecn::NotEct, /*port=*/9999);

  const auto snap = chain.obs.registry.snapshot();
  ASSERT_TRUE(snap.families.contains("ecn_rewrites_total"));
  ASSERT_TRUE(snap.families.contains("ecn_drops_total"));
  const LabelSet bleach{{"cause", "bleached"}, {"layer", "policy"}};
  EXPECT_EQ(snap.families.at("ecn_rewrites_total").samples.at(bleach).counter, 1u);
  const LabelSet nosock{{"cause", "no-socket"}, {"layer", "host"}};
  EXPECT_EQ(snap.families.at("ecn_drops_total").samples.at(nosock).counter, 1u);
}

TEST(DropAttribution, AggregateSlicesAndAutopsyTotalsReconcile) {
  ObservedChain chain(2);
  chain.net.add_egress_policy(chain.routers[0], 1,
                              std::make_shared<netsim::EctUdpDropPolicy>());
  auto receiver = chain.host_b->open_udp(123);
  chain.send_udp(wire::Ecn::Ect0);   // dropped by the firewall
  const auto mark = chain.obs.ledger.drops().size();
  chain.send_udp(wire::Ecn::Ect1);   // dropped again, second slice
  chain.send_udp(wire::Ecn::NotEct, /*port=*/9999);  // host-layer drop

  const auto full = chain.obs.ledger.aggregate();
  EXPECT_EQ(full.total_drops(), 3u);
  EXPECT_EQ(full.drops_for_cause("ect-udp-filter"), 2u);

  const auto tail = chain.obs.ledger.aggregate(mark, 0);
  EXPECT_EQ(tail.total_drops(), 2u);
  EXPECT_EQ(tail.drops_for_cause("ect-udp-filter"), 1u);

  const auto autopsy = render_loss_autopsy(full);
  EXPECT_NE(autopsy.find("ect-udp-filter"), std::string::npos);
  EXPECT_NE(autopsy.find("no-socket"), std::string::npos);
  EXPECT_NE(autopsy.find("total"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::obs
