// CountMinSketch property suite: the Cormode-Muthukrishnan contract
// (never undercount; overcount bounded by epsilon * N with probability
// >= 1 - delta) checked over a 10k-key synthetic stream, plus the
// determinism and merge-compatibility guarantees the campaign fold
// relies on.
#include "ecnprobe/obs/sketch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::obs {
namespace {

// A deterministic skewed stream: key i gets weight (i % 97) + 1, so the
// stream mixes heavy hitters with a long tail of light keys.
std::map<std::string, std::uint64_t> synthetic_stream(int keys) {
  std::map<std::string, std::uint64_t> stream;
  for (int i = 0; i < keys; ++i) {
    stream["key-" + std::to_string(i)] = static_cast<std::uint64_t>(i % 97) + 1;
  }
  return stream;
}

TEST(CountMinSketch, NeverUndercountsAndOvercountBoundHolds) {
  constexpr int kKeys = 10000;
  const auto stream = synthetic_stream(kKeys);
  CountMinSketch sketch(0.001, 0.01, 42);
  std::uint64_t total = 0;
  for (const auto& [key, weight] : stream) {
    sketch.add(key, weight);
    total += weight;
  }
  ASSERT_EQ(sketch.total(), total);
  const std::uint64_t bound = sketch.error_bound();
  // Spot-check the bound's arithmetic: ceil(epsilon * N).
  EXPECT_GE(bound * 1000, total);

  int beyond_bound = 0;
  for (const auto& [key, weight] : stream) {
    const auto estimate = sketch.estimate(key);
    // The hard guarantee: row minimums can only overcount.
    ASSERT_GE(estimate, weight) << key;
    if (estimate > weight + bound) ++beyond_bound;
  }
  // delta = 1% failure probability per key; allow generous slack (5%) so
  // the test never flakes on an unlucky but legal seed.
  EXPECT_LE(beyond_bound, kKeys / 20);
}

TEST(CountMinSketch, NeverAddedKeyUnderReportsNothing) {
  CountMinSketch sketch(0.01, 0.01, 7);
  EXPECT_EQ(sketch.estimate("ghost"), 0u);
  sketch.add("present", 3);
  // "ghost" may collide and read up to the bound, never below zero truth.
  EXPECT_LE(sketch.estimate("ghost"), 3u);
}

TEST(CountMinSketch, MergeEqualsBulkConstruction) {
  const auto stream = synthetic_stream(2000);
  CountMinSketch bulk(0.005, 0.05, 99);
  CountMinSketch left(0.005, 0.05, 99);
  CountMinSketch right(0.005, 0.05, 99);
  int i = 0;
  for (const auto& [key, weight] : stream) {
    bulk.add(key, weight);
    ((i++ % 2) == 0 ? left : right).add(key, weight);
  }
  left.merge(right);
  EXPECT_EQ(left.total(), bulk.total());
  for (const auto& [key, weight] : stream) {
    EXPECT_EQ(left.estimate(key), bulk.estimate(key)) << key;
  }
}

TEST(CountMinSketch, MergeRejectsIncompatibleSketches) {
  CountMinSketch a(0.01, 0.01, 1);
  CountMinSketch b(0.01, 0.01, 2);   // same dims, different seed
  CountMinSketch c(0.02, 0.01, 1);   // different width
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(CountMinSketch, MergeIntoInertAdoptsOther) {
  CountMinSketch inert;
  CountMinSketch full(0.01, 0.01, 5);
  full.add("k", 4);
  inert.merge(full);
  EXPECT_TRUE(inert.active());
  EXPECT_EQ(inert.estimate("k"), 4u);
  // Inert into inert stays a no-op.
  CountMinSketch empty;
  CountMinSketch other;
  empty.merge(other);
  EXPECT_FALSE(empty.active());
}

TEST(CountMinSketch, DeterministicAcrossConstructions) {
  const auto stream = synthetic_stream(500);
  CountMinSketch a(0.01, 0.02, 1234);
  CountMinSketch b(0.01, 0.02, 1234);
  for (const auto& [key, weight] : stream) {
    a.add(key, weight);
    b.add(key, weight);
  }
  for (const auto& [key, weight] : stream) {
    EXPECT_EQ(a.estimate(key), b.estimate(key)) << key;
  }
  // A different seed hashes differently but obeys the same bounds.
  CountMinSketch c(0.01, 0.02, 5678);
  for (const auto& [key, weight] : stream) c.add(key, weight);
  for (const auto& [key, weight] : stream) {
    EXPECT_GE(c.estimate(key), weight) << key;
  }
}

TEST(CountMinSketch, RejectsBadParameters) {
  EXPECT_THROW(CountMinSketch(0.0, 0.01, 1), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(1.5, 0.01, 1), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(0.01, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(0.01, 1.5, 1), std::invalid_argument);
  // Tiny epsilon would need a table beyond the 64M-cell cap.
  EXPECT_THROW(CountMinSketch(1e-9, 0.01, 1), std::invalid_argument);
}

TEST(CountMinSketch, MemoryIsFixedRegardlessOfStream) {
  CountMinSketch sketch(0.01, 0.01, 3);
  const auto before = sketch.memory_bytes();
  util::Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    sketch.add("k" + std::to_string(rng.next_below(100000)));
  }
  EXPECT_EQ(sketch.memory_bytes(), before);
}

}  // namespace
}  // namespace ecnprobe::obs
