// LogHistogram contract: pure-integer bucket mapping with bounded
// relative error, exact unit buckets below 2^subbits, quantiles within
// the declared error of the true order statistics, and commutative
// bucket-wise merge.
#include "ecnprobe/obs/loghist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::obs {
namespace {

TEST(LogHistogram, BucketUpperBoundsValueWithinAlpha) {
  const LogHistogram hist(0.01);
  const int subbits = hist.subbits();
  ASSERT_GT(subbits, 0);
  const double bound = hist.relative_error();
  EXPECT_LE(bound, 0.01);
  // Sweep values across 9 decades, including power-of-two edges where
  // the group arithmetic is easiest to get wrong.
  util::Rng rng(11);
  std::vector<std::int64_t> values;
  for (std::int64_t v = 1; v < (std::int64_t{1} << 40); v *= 3) values.push_back(v);
  for (int e = 0; e < 40; ++e) {
    values.push_back((std::int64_t{1} << e) - 1);
    values.push_back(std::int64_t{1} << e);
    values.push_back((std::int64_t{1} << e) + 1);
    values.push_back(static_cast<std::int64_t>(
        rng.next_below(std::uint64_t{1} << std::min(e + 1, 62))));
  }
  for (const auto v : values) {
    if (v <= 0) continue;
    const auto index = LogHistogram::bucket_index(v, subbits);
    const auto upper = LogHistogram::bucket_upper(index, subbits);
    ASSERT_GE(upper, v) << v;
    // Inclusive upper edge: v+... must fall in a later bucket.
    EXPECT_GT(LogHistogram::bucket_index(upper + 1, subbits), index) << v;
    const double overshoot = static_cast<double>(upper - v);
    EXPECT_LE(overshoot, bound * static_cast<double>(v) + 1.0) << v;
  }
}

TEST(LogHistogram, SmallValuesAreExact) {
  const LogHistogram hist(0.01);
  const int subbits = hist.subbits();
  for (std::int64_t v = 0; v < (std::int64_t{1} << subbits); ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v, subbits), static_cast<std::int32_t>(v));
    EXPECT_EQ(LogHistogram::bucket_upper(static_cast<std::int32_t>(v), subbits), v);
  }
}

TEST(LogHistogram, QuantilesTrackTrueOrderStatistics) {
  LogHistogram hist(0.01);
  std::vector<std::int64_t> values;
  util::Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish RTT spread: 10us .. ~1s in nanoseconds.
    const auto v = static_cast<std::int64_t>(10000 + rng.next_below(1000000000));
    values.push_back(v);
    hist.observe(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(hist.count(), values.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
    const double truth = static_cast<double>(values[rank]);
    const double est = static_cast<double>(hist.quantile(q));
    // The estimate is a bucket upper edge within relative_error of a value
    // whose rank is exact, so it may only overshoot by the bucket width
    // (plus one rank step of the empirical distribution).
    EXPECT_GE(est, truth * (1.0 - 2.0 * hist.relative_error())) << q;
    EXPECT_LE(est, truth * (1.0 + 2.0 * hist.relative_error()) + 1.0) << q;
  }
  // Monotonic in q.
  EXPECT_LE(hist.quantile(0.1), hist.quantile(0.5));
  EXPECT_LE(hist.quantile(0.5), hist.quantile(0.9));
  EXPECT_LE(hist.quantile(0.9), hist.quantile(1.0));
}

TEST(LogHistogram, MergeEqualsBulkAndRejectsMismatch) {
  LogHistogram bulk(0.02);
  LogHistogram left(0.02);
  LogHistogram right(0.02);
  util::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    const auto v = static_cast<std::int64_t>(1 + rng.next_below(1 << 20));
    bulk.observe(v);
    (i % 2 == 0 ? left : right).observe(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_EQ(left.sum(), bulk.sum());
  EXPECT_EQ(left.buckets(), bulk.buckets());

  LogHistogram coarse(0.5);  // different subbits
  if (coarse.subbits() != bulk.subbits()) {
    EXPECT_THROW(bulk.merge(coarse), std::invalid_argument);
  }
  // Merging an inert histogram is a no-op; merging into inert adopts.
  LogHistogram inert;
  bulk.merge(inert);
  EXPECT_EQ(bulk.count(), 4000u);
  inert.merge(bulk);
  EXPECT_EQ(inert.count(), bulk.count());
}

TEST(LogHistogram, FoldingPreBucketedCountsMatchesObserve) {
  LogHistogram direct(0.01);
  LogHistogram folded(0.01);
  std::int64_t sum = 0;
  for (const std::int64_t v : {123, 4567, 89012, 3456789, 12}) {
    direct.observe(v);
    folded.add_bucket(LogHistogram::bucket_index(v, folded.subbits()), 1);
    sum += v;
  }
  folded.add_sum(sum);
  EXPECT_EQ(folded.buckets(), direct.buckets());
  EXPECT_EQ(folded.count(), direct.count());
  EXPECT_EQ(folded.sum(), direct.sum());
}

TEST(LogHistogram, RejectsBadAlphaAndHandlesNonPositive) {
  EXPECT_THROW(LogHistogram(0.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(-1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.5), std::invalid_argument);
  LogHistogram hist(0.01);
  hist.observe(0);
  hist.observe(-5);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.buckets().at(0), 2u);
}

}  // namespace
}  // namespace ecnprobe::obs
