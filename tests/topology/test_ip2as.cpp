#include "ecnprobe/topology/ip2as.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::topology {
namespace {

TEST(IpToAsMap, LongestPrefixWins) {
  IpToAsMap map;
  map.add(wire::Ipv4Address(11, 0, 0, 0), 8, 100);
  map.add(wire::Ipv4Address(11, 1, 0, 0), 16, 200);
  map.add(wire::Ipv4Address(11, 1, 2, 3), 32, 300);

  EXPECT_EQ(map.lookup(wire::Ipv4Address(11, 9, 9, 9)), 100u);
  EXPECT_EQ(map.lookup(wire::Ipv4Address(11, 1, 9, 9)), 200u);
  EXPECT_EQ(map.lookup(wire::Ipv4Address(11, 1, 2, 3)), 300u);
  EXPECT_FALSE(map.lookup(wire::Ipv4Address(12, 0, 0, 1)).has_value());
}

TEST(IpToAsMap, DefaultRoutePrefixZero) {
  IpToAsMap map;
  map.add(wire::Ipv4Address(0, 0, 0, 0), 0, 7);
  EXPECT_EQ(map.lookup(wire::Ipv4Address(200, 1, 2, 3)), 7u);
}

TEST(IpToAsMap, DuplicateAddReplaces) {
  IpToAsMap map;
  map.add(wire::Ipv4Address(10, 0, 0, 0), 8, 1);
  map.add(wire::Ipv4Address(10, 0, 0, 0), 8, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.lookup(wire::Ipv4Address(10, 1, 1, 1)), 2u);
}

TEST(IpToAsMap, ErrorInjectionRemapsFraction) {
  IpToAsMap map;
  for (std::uint32_t i = 0; i < 200; ++i) {
    map.add(wire::Ipv4Address((11u << 24) | (i << 8)), 24, 100 + i);
  }
  util::Rng rng(5);
  const auto noisy = map.with_errors(0.3, rng);
  EXPECT_EQ(noisy.size(), map.size());
  int changed = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const wire::Ipv4Address addr((11u << 24) | (i << 8) | 1);
    if (noisy.lookup(addr) != map.lookup(addr)) ++changed;
  }
  EXPECT_NEAR(changed / 200.0, 0.3, 0.1);
}

TEST(IpToAsMap, ZeroErrorRateIsIdentity) {
  IpToAsMap map;
  map.add(wire::Ipv4Address(11, 0, 0, 0), 16, 5);
  map.add(wire::Ipv4Address(12, 0, 0, 0), 16, 6);
  util::Rng rng(1);
  const auto copy = map.with_errors(0.0, rng);
  EXPECT_EQ(copy.lookup(wire::Ipv4Address(11, 0, 5, 5)), 5u);
  EXPECT_EQ(copy.lookup(wire::Ipv4Address(12, 0, 5, 5)), 6u);
}

}  // namespace
}  // namespace ecnprobe::topology
