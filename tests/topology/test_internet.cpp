#include "ecnprobe/topology/internet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ecnprobe::topology {
namespace {

TopologyParams small_params() {
  TopologyParams p;
  p.tier1_count = 3;
  p.tier2_per_region = 2;
  p.stub_count = 18;
  p.routers_per_tier1 = 3;
  p.routers_per_tier2 = 2;
  p.routers_per_stub = 2;
  p.icmp_response_prob_min = 1.0;
  p.icmp_response_prob_max = 1.0;
  return p;
}

class InternetTest : public ::testing::Test {
protected:
  void SetUp() override {
    internet = Internet::build(sim, small_params(), util::Rng(7));
  }
  netsim::Simulator sim;
  std::unique_ptr<Internet> internet;
};

TEST_F(InternetTest, BuildsExpectedAsCounts) {
  int tier1 = 0;
  int tier2 = 0;
  int stubs = 0;
  for (const auto& as : internet->ases()) {
    if (as.tier == 1) ++tier1;
    else if (as.tier == 2) ++tier2;
    else ++stubs;
  }
  EXPECT_EQ(tier1, 3);
  EXPECT_EQ(tier2, 2 * 6);  // per region x 6 regions
  EXPECT_EQ(stubs, 18);
}

TEST_F(InternetTest, EveryRegionHasAtLeastOneStub) {
  for (const auto region :
       {geo::Region::Europe, geo::Region::NorthAmerica, geo::Region::Asia,
        geo::Region::Australia, geo::Region::SouthAmerica, geo::Region::Africa}) {
    EXPECT_FALSE(internet->stub_ases(region).empty()) << geo::to_string(region);
  }
}

TEST_F(InternetTest, AddressesMapToOwningAs) {
  for (const auto& as : internet->ases()) {
    for (const auto router : as.routers) {
      const auto addr = internet->net().node(router).address();
      EXPECT_EQ(internet->asn_of(addr), as.asn);
    }
  }
}

TEST_F(InternetTest, HostsAttachAndGetRoutableAddresses) {
  const auto stubs = internet->stub_ases(geo::Region::Europe);
  ASSERT_FALSE(stubs.empty());
  auto host = std::make_unique<netsim::Host>("h", netsim::Host::Params{}, util::Rng(1));
  netsim::Host* raw = host.get();
  const auto attachment =
      internet->attach_host(stubs[0], std::move(host), netsim::LinkParams{});
  EXPECT_NE(attachment.host, netsim::kInvalidNode);
  EXPECT_FALSE(raw->address().is_unspecified());
  EXPECT_EQ(internet->asn_of(raw->address()), stubs[0]);
  EXPECT_NE(internet->attachment_of(raw->address()), nullptr);
}

TEST_F(InternetTest, EndToEndDeliveryAcrossRegions) {
  // Attach one host in Europe and one in Australia and exchange a packet.
  auto h1 = std::make_unique<netsim::Host>("eu", netsim::Host::Params{}, util::Rng(1));
  auto h2 = std::make_unique<netsim::Host>("au", netsim::Host::Params{}, util::Rng(2));
  netsim::Host* eu = h1.get();
  netsim::Host* au = h2.get();
  internet->attach_host(internet->stub_ases(geo::Region::Europe)[0], std::move(h1),
                        netsim::LinkParams{});
  internet->attach_host(internet->stub_ases(geo::Region::Australia)[0], std::move(h2),
                        netsim::LinkParams{});

  auto server = au->open_udp(123);
  bool received = false;
  server->set_receive_handler([&](const netsim::UdpDelivery& d) {
    received = true;
    server->send(d.src, d.src_port, d.payload, wire::Ecn::NotEct);
  });
  auto client = eu->open_udp();
  bool replied = false;
  client->set_receive_handler([&](const netsim::UdpDelivery&) { replied = true; });
  client->send(au->address(), 123, {}, wire::Ecn::Ect0);
  sim.run();
  EXPECT_TRUE(received);
  EXPECT_TRUE(replied);
}

TEST_F(InternetTest, EcnMarkSurvivesCleanPath) {
  auto h1 = std::make_unique<netsim::Host>("a", netsim::Host::Params{}, util::Rng(3));
  auto h2 = std::make_unique<netsim::Host>("b", netsim::Host::Params{}, util::Rng(4));
  netsim::Host* a = h1.get();
  netsim::Host* b = h2.get();
  internet->attach_host(internet->stub_ases(geo::Region::Asia)[0], std::move(h1),
                        netsim::LinkParams{});
  internet->attach_host(internet->stub_ases(geo::Region::NorthAmerica)[0], std::move(h2),
                        netsim::LinkParams{});
  auto server = b->open_udp(123);
  wire::Ecn seen = wire::Ecn::NotEct;
  server->set_receive_handler([&](const netsim::UdpDelivery& d) { seen = d.ecn; });
  auto client = a->open_udp();
  client->send(b->address(), 123, {}, wire::Ecn::Ect0);
  sim.run();
  // No bleachers installed by the bare topology: the mark must survive.
  EXPECT_EQ(seen, wire::Ecn::Ect0);
}

TEST_F(InternetTest, InterAsLinksAreGroundTruthBoundaries) {
  ASSERT_FALSE(internet->inter_as_links().empty());
  for (const auto& link : internet->inter_as_links()) {
    EXPECT_NE(link.asn_a, link.asn_b);
    EXPECT_TRUE(internet->is_inter_as_interface(link.a.node, link.a.if_index));
    EXPECT_TRUE(internet->is_inter_as_interface(link.b.node, link.b.if_index));
  }
  for (const auto& iface : internet->intra_as_interfaces()) {
    EXPECT_FALSE(internet->is_inter_as_interface(iface.node, iface.if_index));
  }
}

TEST_F(InternetTest, RouterAddressesAreUnique) {
  std::set<std::uint32_t> seen;
  for (const auto& as : internet->ases()) {
    for (const auto router : as.routers) {
      const auto addr = internet->net().node(router).address().value();
      EXPECT_TRUE(seen.insert(addr).second) << "duplicate router address";
    }
  }
}

TEST_F(InternetTest, DeterministicForSameSeed) {
  netsim::Simulator sim2;
  auto other = Internet::build(sim2, small_params(), util::Rng(7));
  ASSERT_EQ(other->ases().size(), internet->ases().size());
  for (std::size_t i = 0; i < other->ases().size(); ++i) {
    EXPECT_EQ(other->ases()[i].asn, internet->ases()[i].asn);
    EXPECT_EQ(other->ases()[i].prefix.value(), internet->ases()[i].prefix.value());
    EXPECT_EQ(other->ases()[i].routers.size(), internet->ases()[i].routers.size());
  }
  EXPECT_EQ(other->inter_as_links().size(), internet->inter_as_links().size());
}

TEST_F(InternetTest, ReroutesAroundDownLinksAfterInvalidation) {
  // A dual-homed stub must stay reachable when one uplink dies, once the
  // cached trees are invalidated.
  const auto stubs = internet->stub_ases(geo::Region::Europe);
  ASSERT_FALSE(stubs.empty());
  const auto asn = stubs[0];
  auto host = std::make_unique<netsim::Host>("h", netsim::Host::Params{}, util::Rng(9));
  netsim::Host* server_host = host.get();
  internet->attach_host(asn, std::move(host), netsim::LinkParams{});
  auto client_owned =
      std::make_unique<netsim::Host>("c", netsim::Host::Params{}, util::Rng(10));
  netsim::Host* client_host = client_owned.get();
  internet->attach_host(internet->stub_ases(geo::Region::Asia)[0],
                        std::move(client_owned), netsim::LinkParams{});

  auto server = server_host->open_udp(7);
  int received = 0;
  server->set_receive_handler([&](const netsim::UdpDelivery&) { ++received; });
  auto client = client_host->open_udp();

  client->send(server_host->address(), 7, {}, wire::Ecn::NotEct);
  sim.run();
  ASSERT_EQ(received, 1);

  // Find the stub's uplinks and kill them one at a time.
  std::vector<const InterAsLink*> uplinks;
  for (const auto& link : internet->inter_as_links()) {
    if (link.asn_a == asn || link.asn_b == asn) uplinks.push_back(&link);
  }
  ASSERT_GE(uplinks.size(), 2u);
  internet->net().set_link_up(uplinks[0]->a.node, uplinks[0]->a.if_index, false);
  internet->invalidate_routes();
  client->send(server_host->address(), 7, {}, wire::Ecn::NotEct);
  sim.run();
  EXPECT_EQ(received, 2);  // rerouted over the surviving uplink

  // Restore and verify the original path works again too.
  internet->net().set_link_up(uplinks[0]->a.node, uplinks[0]->a.if_index, true);
  internet->invalidate_routes();
  client->send(server_host->address(), 7, {}, wire::Ecn::NotEct);
  sim.run();
  EXPECT_EQ(received, 3);
}

}  // namespace
}  // namespace ecnprobe::topology
