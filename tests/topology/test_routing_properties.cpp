// Property tests over the topology's routing: for several seeds, every pair
// of attached hosts can exchange packets, TTLs suffice, and paths are
// symmetric enough for request/response protocols.
#include <gtest/gtest.h>

#include "ecnprobe/topology/internet.hpp"

namespace ecnprobe::topology {
namespace {

TopologyParams tiny() {
  TopologyParams p;
  p.tier1_count = 2;
  p.tier2_per_region = 2;
  p.stub_count = 12;
  p.routers_per_tier1 = 2;
  p.routers_per_tier2 = 2;
  p.routers_per_stub = 2;
  p.icmp_response_prob_min = 1.0;
  p.icmp_response_prob_max = 1.0;
  return p;
}

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, AllHostPairsBidirectionallyReachable) {
  netsim::Simulator sim;
  auto internet = Internet::build(sim, tiny(), util::Rng(GetParam()));

  // One host per stub AS.
  std::vector<netsim::Host*> hosts;
  for (const auto asn : internet->stub_ases()) {
    auto host = std::make_unique<netsim::Host>("h" + std::to_string(asn),
                                               netsim::Host::Params{},
                                               util::Rng(asn));
    hosts.push_back(host.get());
    internet->attach_host(asn, std::move(host), netsim::LinkParams{});
  }

  // Every host echoes on port 7.
  std::vector<std::shared_ptr<netsim::UdpSocket>> sockets;
  for (auto* host : hosts) {
    auto socket = host->open_udp(7);
    auto* raw = socket.get();
    socket->set_receive_handler([raw](const netsim::UdpDelivery& d) {
      raw->send(d.src, d.src_port, d.payload, wire::Ecn::NotEct);
    });
    sockets.push_back(std::move(socket));
  }

  int round_trips = 0;
  std::vector<std::shared_ptr<netsim::UdpSocket>> clients;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      auto client = hosts[i]->open_udp();
      client->set_receive_handler(
          [&round_trips](const netsim::UdpDelivery&) { ++round_trips; });
      client->send(hosts[j]->address(), 7, {}, wire::Ecn::NotEct);
      clients.push_back(std::move(client));
    }
  }
  sim.run();
  const int expected = static_cast<int>(hosts.size() * (hosts.size() - 1));
  EXPECT_EQ(round_trips, expected);
}

TEST_P(RoutingProperty, PathsFitWithinDefaultTtl) {
  netsim::Simulator sim;
  auto internet = Internet::build(sim, tiny(), util::Rng(GetParam() + 1000));
  auto a = std::make_unique<netsim::Host>("a", netsim::Host::Params{}, util::Rng(1));
  auto b = std::make_unique<netsim::Host>("b", netsim::Host::Params{}, util::Rng(2));
  netsim::Host* ha = a.get();
  netsim::Host* hb = b.get();
  const auto stubs = internet->stub_ases();
  internet->attach_host(stubs.front(), std::move(a), netsim::LinkParams{});
  internet->attach_host(stubs.back(), std::move(b), netsim::LinkParams{});

  auto server = hb->open_udp(7);
  std::optional<std::uint8_t> arrived_ttl;
  netsim::PacketCapture capture;
  hb->add_capture(&capture);
  server->set_receive_handler([](const netsim::UdpDelivery&) {});
  auto client = ha->open_udp();
  client->send(hb->address(), 7, {}, wire::Ecn::NotEct);
  sim.run();
  ASSERT_EQ(capture.packets().size(), 1u);
  arrived_ttl = capture.packets()[0].dgram.ip.ttl;
  // Default TTL 64 leaves plenty of headroom in this topology (paths are a
  // dozen hops or so).
  EXPECT_GT(*arrived_ttl, 32);
  hb->remove_capture(&capture);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Values(1ull, 17ull, 2026ull));

}  // namespace
}  // namespace ecnprobe::topology
