// Robustness property tests: every wire decoder must consume arbitrary
// bytes without crashing or reading out of bounds, and must reject
// truncations of valid packets cleanly. (These run under the normal test
// binary; build with -fsanitize=address to make the guarantee stronger.)
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/dissect.hpp"
#include "ecnprobe/wire/dnsmsg.hpp"
#include "ecnprobe/wire/http.hpp"
#include "ecnprobe/wire/ntp.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::wire {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(FuzzDecode, RandomBytesNeverCrashAnyDecoder) {
  util::Rng rng(0xF422);
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto bytes = random_bytes(rng, 96);
    (void)decode_ipv4_header(bytes);
    (void)Datagram::decode(bytes);
    (void)UdpHeader::decode(bytes);
    (void)decode_udp_segment(src, dst, bytes);
    (void)decode_tcp_header(bytes);
    (void)decode_tcp_segment(src, dst, bytes);
    (void)decode_icmp_message(bytes);
    (void)parse_quotation(bytes);
    (void)NtpPacket::decode(bytes);
    (void)DnsMessage::decode(bytes);
  }
  SUCCEED();
}

TEST(FuzzDecode, TruncationsOfValidPacketsRejectedOrConsistent) {
  util::Rng rng(0xF423);
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);

  const auto request = NtpPacket::make_client_request({123, 456});
  const auto probe =
      make_udp_datagram(src, dst, 40000, kNtpPort, request.encode(), Ecn::Ect0);
  const auto wire_bytes = probe.encode();

  for (std::size_t cut = 0; cut < wire_bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire_bytes.data(), cut);
    const auto decoded = Datagram::decode(prefix);
    // Anything shorter than the full datagram must be rejected (the length
    // field covers the whole packet).
    EXPECT_FALSE(decoded.has_value()) << "accepted truncation at " << cut;
  }
  // The untruncated original still decodes.
  EXPECT_TRUE(Datagram::decode(wire_bytes).has_value());
}

TEST(FuzzDecode, BitFlipsAreDetectedOrHarmless) {
  util::Rng rng(0xF424);
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);
  const auto request = NtpPacket::make_client_request({99, 1});
  const auto probe =
      make_udp_datagram(src, dst, 40000, kNtpPort, request.encode(), Ecn::Ect0);
  const auto original = probe.encode();

  int rejected = 0;
  int accepted = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    auto mutated = original;
    const auto byte = rng.next_below(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto decoded = Datagram::decode(mutated);
    if (!decoded) {
      ++rejected;  // IP header corruption: checksum catches it
      continue;
    }
    ++accepted;
    // If the IP layer accepted it, the UDP checksum must catch payload and
    // UDP-header corruption (or the flip hit a don't-care field).
    const auto segment = decode_udp_segment(decoded->ip.src, decoded->ip.dst,
                                            decoded->payload);
    if (segment && segment->checksum_ok) {
      // The flip must then have hit the IP header in a way that keeps both
      // checksums valid -- only possible if it flipped... nothing
      // checksummed. The ECN/DSCP byte *is* checksummed, so this can only
      // be a flip that the IP checksum caught via recompute... assert the
      // strong property: bytes equal the original outside the IP header.
      // (UDP checksum covers everything from byte 20 on.)
      EXPECT_TRUE(std::equal(mutated.begin() + 20, mutated.end(),
                             original.begin() + 20))
          << "undetected corruption of checksummed bytes";
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);  // some flips land in the UDP part, pass IP layer
}

TEST(FuzzDecode, HttpParserSurvivesRandomInput) {
  util::Rng rng(0xF425);
  for (int trial = 0; trial < 500; ++trial) {
    HttpParser parser(trial % 2 == 0 ? HttpParser::Kind::Request
                                     : HttpParser::Kind::Response);
    for (int chunk = 0; chunk < 4; ++chunk) {
      const auto bytes = random_bytes(rng, 64);
      if (!parser.feed(bytes)) break;  // sticky failure is fine
    }
  }
  SUCCEED();
}

TEST(FuzzDecode, DissectorHandlesArbitraryDatagrams) {
  util::Rng rng(0xF426);
  for (int trial = 0; trial < 1000; ++trial) {
    Datagram dgram;
    dgram.ip.src = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
    dgram.ip.dst = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
    dgram.ip.protocol = static_cast<IpProto>(rng.next_below(4) * 5 + 1);
    dgram.ip.ecn = ecn_from_bits(static_cast<std::uint8_t>(rng.next_below(4)));
    dgram.payload = random_bytes(rng, 80);
    const auto line = dissect(dgram);
    EXPECT_FALSE(line.empty());
  }
}

// Systematic truncation sweep: a small corpus of well-formed packets, each
// decoded at *every* prefix length. Decoders must never read out of bounds
// or throw; where they accept a prefix, the advertised fields must be
// consistent with the bytes that actually survived.
TEST(FuzzDecode, TruncationSweepIcmpTimeExceededQuote) {
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);
  const auto request = NtpPacket::make_client_request({7, 8});
  const auto probe =
      make_udp_datagram(src, dst, 40001, kNtpPort, request.encode(), Ecn::Ect0, 9);

  // The quotation body a router would emit for this probe.
  const auto inner_bytes = probe.encode();
  const auto inner = decode_ipv4_header(inner_bytes);
  ASSERT_TRUE(inner.has_value());
  const std::span<const std::uint8_t> transport(
      inner_bytes.data() + Ipv4Header::kSize, inner_bytes.size() - Ipv4Header::kSize);
  const auto quote = make_error_quotation(inner->header, transport);

  for (std::size_t cut = 0; cut <= quote.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(quote.data(), cut);
    const auto parsed = parse_quotation(prefix);
    if (!parsed) continue;
    // Tolerant parse: whatever it claims to know must really have been in
    // the prefix, and the values must match the untruncated original.
    if (parsed->header_complete) {
      EXPECT_GE(cut, Ipv4Header::kSize) << "complete header from " << cut << " bytes";
      EXPECT_EQ(parsed->inner_header.dst, dst);
    } else {
      EXPECT_LT(cut, Ipv4Header::kSize);
      EXPECT_TRUE(parsed->transport_prefix.empty());
    }
    if (parsed->ecn_known) {
      EXPECT_GE(cut, std::size_t{2}) << "ECN claimed known from " << cut << " bytes";
      EXPECT_EQ(parsed->inner_header.ecn, Ecn::Ect0);
    }
  }

  // The same sweep over the full ICMP message (header + quote).
  IcmpMessage message;
  message.type = IcmpType::TimeExceeded;
  message.body = quote;
  const auto icmp_bytes = message.encode();
  for (std::size_t cut = 0; cut <= icmp_bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(icmp_bytes.data(), cut);
    const auto decoded = decode_icmp_message(prefix);
    if (!decoded) continue;
    if (cut < icmp_bytes.size() && decoded->checksum_ok) {
      // The checksum covers the quote, so a truncation may only verify when
      // the dropped suffix is all zero (zero words don't change an RFC 1071
      // sum).
      const bool dropped_zeros = std::all_of(
          icmp_bytes.begin() + static_cast<std::ptrdiff_t>(cut), icmp_bytes.end(),
          [](std::uint8_t b) { return b == 0; });
      EXPECT_TRUE(dropped_zeros) << "checksum ok at truncation " << cut;
    }
    if (decoded->message.is_error()) (void)parse_quotation(decoded->message.body);
  }
}

TEST(FuzzDecode, TruncationSweepDnsResponse) {
  const auto query = DnsMessage::make_query(0x1234, "uk.pool.ntp.org");
  const auto response = DnsMessage::make_response(
      query, DnsRcode::NoError,
      {DnsRecord::make_a("uk.pool.ntp.org", Ipv4Address(193, 0, 0, 1), 60),
       DnsRecord::make_a("uk.pool.ntp.org", Ipv4Address(193, 0, 0, 2), 60)});
  for (const auto& msg : {query, response}) {
    const auto bytes = msg.encode();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::span<const std::uint8_t> prefix(bytes.data(), cut);
      const auto decoded = DnsMessage::decode(prefix);
      if (!decoded) continue;
      // DNS has no framing checksum; a prefix that still parses must have
      // been cut in trailing records, never mid-structure.
      EXPECT_LE(decoded->questions.size(), msg.questions.size());
      EXPECT_LE(decoded->answers.size(), msg.answers.size());
    }
    EXPECT_TRUE(DnsMessage::decode(bytes).has_value());
  }
}

TEST(FuzzDecode, TruncationSweepNtpPacket) {
  const auto request = NtpPacket::make_client_request({55, 66});
  const auto bytes = request.encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    // NTP packets are fixed-format, minimum 48 bytes: every proper prefix
    // of the minimal request must be rejected.
    EXPECT_FALSE(NtpPacket::decode(prefix).has_value())
        << "accepted " << cut << "-byte NTP packet";
  }
  EXPECT_TRUE(NtpPacket::decode(bytes).has_value());
}

TEST(FuzzDecode, DnsNameDecompressionBombRejected) {
  // A chain of pointers that expands a long name repeatedly must hit the
  // loop/length guards rather than hang or overflow.
  std::vector<std::uint8_t> bytes = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  // Question name at offset 12: label "aaaa" then pointer back to offset 12
  // (self-recursive through the label).
  bytes.insert(bytes.end(), {4, 'a', 'a', 'a', 'a', 0xc0, 0x0c});
  bytes.insert(bytes.end(), {0x00, 0x01, 0x00, 0x01});
  EXPECT_FALSE(DnsMessage::decode(bytes));
}

}  // namespace
}  // namespace ecnprobe::wire
