// Robustness property tests: every wire decoder must consume arbitrary
// bytes without crashing or reading out of bounds, and must reject
// truncations of valid packets cleanly. (These run under the normal test
// binary; build with -fsanitize=address to make the guarantee stronger.)
#include <gtest/gtest.h>

#include <vector>

#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/dissect.hpp"
#include "ecnprobe/wire/dnsmsg.hpp"
#include "ecnprobe/wire/http.hpp"
#include "ecnprobe/wire/ntp.hpp"
#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::wire {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(FuzzDecode, RandomBytesNeverCrashAnyDecoder) {
  util::Rng rng(0xF422);
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto bytes = random_bytes(rng, 96);
    (void)decode_ipv4_header(bytes);
    (void)Datagram::decode(bytes);
    (void)UdpHeader::decode(bytes);
    (void)decode_udp_segment(src, dst, bytes);
    (void)decode_tcp_header(bytes);
    (void)decode_tcp_segment(src, dst, bytes);
    (void)decode_icmp_message(bytes);
    (void)parse_quotation(bytes);
    (void)NtpPacket::decode(bytes);
    (void)DnsMessage::decode(bytes);
  }
  SUCCEED();
}

TEST(FuzzDecode, TruncationsOfValidPacketsRejectedOrConsistent) {
  util::Rng rng(0xF423);
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);

  const auto request = NtpPacket::make_client_request({123, 456});
  const auto probe =
      make_udp_datagram(src, dst, 40000, kNtpPort, request.encode(), Ecn::Ect0);
  const auto wire_bytes = probe.encode();

  for (std::size_t cut = 0; cut < wire_bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire_bytes.data(), cut);
    const auto decoded = Datagram::decode(prefix);
    // Anything shorter than the full datagram must be rejected (the length
    // field covers the whole packet).
    EXPECT_FALSE(decoded.has_value()) << "accepted truncation at " << cut;
  }
  // The untruncated original still decodes.
  EXPECT_TRUE(Datagram::decode(wire_bytes).has_value());
}

TEST(FuzzDecode, BitFlipsAreDetectedOrHarmless) {
  util::Rng rng(0xF424);
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(11, 0, 0, 2);
  const auto request = NtpPacket::make_client_request({99, 1});
  const auto probe =
      make_udp_datagram(src, dst, 40000, kNtpPort, request.encode(), Ecn::Ect0);
  const auto original = probe.encode();

  int rejected = 0;
  int accepted = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    auto mutated = original;
    const auto byte = rng.next_below(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto decoded = Datagram::decode(mutated);
    if (!decoded) {
      ++rejected;  // IP header corruption: checksum catches it
      continue;
    }
    ++accepted;
    // If the IP layer accepted it, the UDP checksum must catch payload and
    // UDP-header corruption (or the flip hit a don't-care field).
    const auto segment = decode_udp_segment(decoded->ip.src, decoded->ip.dst,
                                            decoded->payload);
    if (segment && segment->checksum_ok) {
      // The flip must then have hit the IP header in a way that keeps both
      // checksums valid -- only possible if it flipped... nothing
      // checksummed. The ECN/DSCP byte *is* checksummed, so this can only
      // be a flip that the IP checksum caught via recompute... assert the
      // strong property: bytes equal the original outside the IP header.
      // (UDP checksum covers everything from byte 20 on.)
      EXPECT_TRUE(std::equal(mutated.begin() + 20, mutated.end(),
                             original.begin() + 20))
          << "undetected corruption of checksummed bytes";
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);  // some flips land in the UDP part, pass IP layer
}

TEST(FuzzDecode, HttpParserSurvivesRandomInput) {
  util::Rng rng(0xF425);
  for (int trial = 0; trial < 500; ++trial) {
    HttpParser parser(trial % 2 == 0 ? HttpParser::Kind::Request
                                     : HttpParser::Kind::Response);
    for (int chunk = 0; chunk < 4; ++chunk) {
      const auto bytes = random_bytes(rng, 64);
      if (!parser.feed(bytes)) break;  // sticky failure is fine
    }
  }
  SUCCEED();
}

TEST(FuzzDecode, DissectorHandlesArbitraryDatagrams) {
  util::Rng rng(0xF426);
  for (int trial = 0; trial < 1000; ++trial) {
    Datagram dgram;
    dgram.ip.src = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
    dgram.ip.dst = Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())};
    dgram.ip.protocol = static_cast<IpProto>(rng.next_below(4) * 5 + 1);
    dgram.ip.ecn = ecn_from_bits(static_cast<std::uint8_t>(rng.next_below(4)));
    dgram.payload = random_bytes(rng, 80);
    const auto line = dissect(dgram);
    EXPECT_FALSE(line.empty());
  }
}

TEST(FuzzDecode, DnsNameDecompressionBombRejected) {
  // A chain of pointers that expands a long name repeatedly must hit the
  // loop/length guards rather than hang or overflow.
  std::vector<std::uint8_t> bytes = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  // Question name at offset 12: label "aaaa" then pointer back to offset 12
  // (self-recursive through the label).
  bytes.insert(bytes.end(), {4, 'a', 'a', 'a', 'a', 0xc0, 0x0c});
  bytes.insert(bytes.end(), {0x00, 0x01, 0x00, 0x01});
  EXPECT_FALSE(DnsMessage::decode(bytes));
}

}  // namespace
}  // namespace ecnprobe::wire
