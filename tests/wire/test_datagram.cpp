#include "ecnprobe/wire/datagram.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/wire/tcp.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::wire {
namespace {

const Ipv4Address kSrc(10, 1, 1, 1);
const Ipv4Address kDst(11, 2, 2, 2);

TEST(Datagram, UdpBuilderFillsEverything) {
  const std::uint8_t payload[] = {1, 2, 3};
  const auto d = make_udp_datagram(kSrc, kDst, 5000, 123, payload, Ecn::Ect0, 31);
  EXPECT_EQ(d.ip.protocol, IpProto::Udp);
  EXPECT_EQ(d.ip.ecn, Ecn::Ect0);
  EXPECT_EQ(d.ip.ttl, 31);
  EXPECT_EQ(d.ip.total_length, Ipv4Header::kSize + UdpHeader::kSize + 3);
  const auto seg = decode_udp_segment(kSrc, kDst, d.payload);
  ASSERT_TRUE(seg);
  EXPECT_TRUE(seg->checksum_ok);
}

TEST(Datagram, WireRoundTrip) {
  const std::uint8_t payload[] = {0xde, 0xad};
  const auto d = make_udp_datagram(kSrc, kDst, 1, 2, payload, Ecn::Ce);
  const auto bytes = d.encode();
  const auto decoded = Datagram::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->ip.src, kSrc);
  EXPECT_EQ(decoded->ip.dst, kDst);
  EXPECT_EQ(decoded->ip.ecn, Ecn::Ce);
  EXPECT_EQ(decoded->payload, d.payload);
}

TEST(Datagram, DecodeRejectsBadChecksumAndTruncation) {
  const auto d = make_udp_datagram(kSrc, kDst, 1, 2, {}, Ecn::NotEct);
  auto bytes = d.encode();
  auto corrupted = bytes;
  corrupted[9] ^= 0x01;  // protocol field: breaks header checksum
  EXPECT_FALSE(Datagram::decode(corrupted));

  bytes.pop_back();
  EXPECT_FALSE(Datagram::decode(bytes));
}

TEST(Datagram, TcpBuilderMarksEcnIndependentlyOfFlags) {
  TcpHeader h;
  h.src_port = 100;
  h.dst_port = 200;
  h.flags.ack = true;
  const std::uint8_t payload[] = {'x'};
  const auto d = make_tcp_datagram(kSrc, kDst, h, payload, Ecn::Ect0);
  EXPECT_EQ(d.ip.protocol, IpProto::Tcp);
  EXPECT_EQ(d.ip.ecn, Ecn::Ect0);
  const auto seg = decode_tcp_segment(kSrc, kDst, d.payload);
  ASSERT_TRUE(seg);
  EXPECT_TRUE(seg->checksum_ok);
}

TEST(Datagram, IcmpIsAlwaysNotEct) {
  IcmpMessage msg;
  msg.type = IcmpType::EchoRequest;
  const auto d = make_icmp_datagram(kSrc, kDst, msg);
  EXPECT_EQ(d.ip.ecn, Ecn::NotEct);
  EXPECT_EQ(d.ip.protocol, IpProto::Icmp);
}

TEST(Datagram, SummaryMentionsAddresses) {
  const auto d = make_udp_datagram(kSrc, kDst, 1, 2, {}, Ecn::NotEct);
  const auto s = d.summary();
  EXPECT_NE(s.find("10.1.1.1"), std::string::npos);
  EXPECT_NE(s.find("11.2.2.2"), std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::wire
