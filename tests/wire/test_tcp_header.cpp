#include "ecnprobe/wire/tcp.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::wire {
namespace {

const Ipv4Address kSrc(10, 0, 0, 1);
const Ipv4Address kDst(11, 0, 0, 2);

TEST(TcpFlags, BitsRoundTrip) {
  TcpFlags f;
  f.syn = true;
  f.ece = true;
  f.cwr = true;
  f.ns = true;
  const auto bits = f.to_bits();
  EXPECT_EQ(TcpFlags::from_bits(bits), f);
  EXPECT_EQ(bits, 0x100u | 0x080u | 0x040u | 0x002u);
}

TEST(TcpFlags, ToStringListsSetFlags) {
  TcpFlags f;
  f.syn = true;
  f.ack = true;
  f.ece = true;
  EXPECT_EQ(f.to_string(), "SYN|ACK|ECE");
  EXPECT_EQ(TcpFlags{}.to_string(), "-");
}

TEST(TcpHeader, EcnSetupClassification) {
  TcpHeader syn;
  syn.flags.syn = true;
  syn.flags.ece = true;
  syn.flags.cwr = true;
  EXPECT_TRUE(syn.is_ecn_setup_syn());
  EXPECT_FALSE(syn.is_ecn_setup_syn_ack());

  TcpHeader syn_ack;
  syn_ack.flags.syn = true;
  syn_ack.flags.ack = true;
  syn_ack.flags.ece = true;
  EXPECT_TRUE(syn_ack.is_ecn_setup_syn_ack());
  EXPECT_FALSE(syn_ack.is_ecn_setup_syn());

  // A SYN-ACK with both ECE and CWR is NOT an ECN-setup SYN-ACK (it echoes
  // a broken middlebox reflecting the flags).
  syn_ack.flags.cwr = true;
  EXPECT_FALSE(syn_ack.is_ecn_setup_syn_ack());

  // A plain SYN is neither.
  TcpHeader plain;
  plain.flags.syn = true;
  EXPECT_FALSE(plain.is_ecn_setup_syn());
}

TEST(TcpHeader, SegmentRoundTripWithPayload) {
  TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags.ack = true;
  h.flags.psh = true;
  h.window = 32000;
  const std::uint8_t payload[] = {'G', 'E', 'T'};
  const auto segment = encode_tcp_segment(kSrc, kDst, h, payload);

  const auto view = decode_tcp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_TRUE(view->checksum_ok);
  EXPECT_EQ(view->header.src_port, 40000);
  EXPECT_EQ(view->header.dst_port, 80);
  EXPECT_EQ(view->header.seq, 0xdeadbeefu);
  EXPECT_EQ(view->header.ack, 0x01020304u);
  EXPECT_TRUE(view->header.flags.ack);
  EXPECT_TRUE(view->header.flags.psh);
  EXPECT_EQ(view->header.window, 32000);
  ASSERT_EQ(view->payload.size(), 3u);
  EXPECT_EQ(view->payload[0], 'G');
}

TEST(TcpHeader, OptionsArePaddedToWordBoundary) {
  TcpHeader h;
  h.options = {0x02, 0x04, 0x05, 0xb4, 0x01};  // MSS option + NOP (5 bytes)
  const auto segment = encode_tcp_segment(kSrc, kDst, h, {});
  ASSERT_EQ(segment.size(), TcpHeader::kMinSize + 8);  // padded to 8
  const auto view = decode_tcp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->header.options.size(), 8u);
  EXPECT_EQ(view->header.options[0], 0x02);
}

TEST(TcpHeader, ChecksumDetectsCorruption) {
  TcpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  auto segment = encode_tcp_segment(kSrc, kDst, h, {});
  segment[4] ^= 0x40;  // corrupt seq
  const auto view = decode_tcp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_FALSE(view->checksum_ok);
}

TEST(TcpHeader, DecodeRejectsBadOffsets) {
  std::uint8_t too_short[10] = {};
  EXPECT_FALSE(decode_tcp_header(std::span<const std::uint8_t>(too_short, 10)));

  std::uint8_t bad_offset[20] = {};
  bad_offset[12] = 0x40;  // data offset = 4 words < 5
  EXPECT_FALSE(decode_tcp_header(bad_offset));

  std::uint8_t truncated_opts[20] = {};
  truncated_opts[12] = 0x60;  // data offset = 6 words = 24 bytes > buffer
  EXPECT_FALSE(decode_tcp_header(truncated_opts));
}

}  // namespace
}  // namespace ecnprobe::wire
