#include "ecnprobe/wire/http.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::wire {
namespace {

TEST(HttpRequest, SerializesWithHeaders) {
  HttpRequest req;
  req.target = "/";
  req.headers["Host"] = "11.0.0.5";
  const auto text = req.serialize();
  EXPECT_EQ(text.rfind("GET / HTTP/1.0\r\n", 0), 0u);
  EXPECT_NE(text.find("Host: 11.0.0.5\r\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "\r\n\r\n");
}

TEST(HttpResponse, SerializesWithAutoContentLength) {
  HttpResponse resp;
  resp.status = 302;
  resp.reason = "Found";
  resp.headers["Location"] = "http://www.pool.ntp.org/";
  resp.body = "moved";
  const auto text = resp.serialize();
  EXPECT_EQ(text.rfind("HTTP/1.0 302 Found\r\n", 0), 0u);
  EXPECT_NE(text.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 5), "moved");
}

TEST(HttpParser, ParsesRequestIncrementally) {
  HttpParser parser(HttpParser::Kind::Request);
  EXPECT_TRUE(parser.feed("GET /index.html HT"));
  EXPECT_FALSE(parser.complete());
  EXPECT_TRUE(parser.feed("TP/1.0\r\nHost: example\r\n"));
  EXPECT_FALSE(parser.complete());
  EXPECT_TRUE(parser.feed("\r\n"));
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/index.html");
  EXPECT_EQ(parser.request().headers.at("host"), "example");  // case-insensitive
}

TEST(HttpParser, ParsesResponseWithBody) {
  HttpParser parser(HttpParser::Kind::Response);
  EXPECT_TRUE(parser.feed("HTTP/1.0 302 Found\r\nLocation: http://www.pool.ntp.org/\r\n"
                          "Content-Length: 3\r\n\r\nab"));
  EXPECT_FALSE(parser.complete());
  EXPECT_TRUE(parser.feed("c"));
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().status, 302);
  EXPECT_EQ(parser.response().reason, "Found");
  EXPECT_EQ(parser.response().body, "abc");
  EXPECT_EQ(parser.response().headers.at("location"), "http://www.pool.ntp.org/");
}

TEST(HttpParser, ResponseWithoutLengthCompletesAtHead) {
  HttpParser parser(HttpParser::Kind::Response);
  EXPECT_TRUE(parser.feed("HTTP/1.0 200 OK\r\n\r\n"));
  EXPECT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().status, 200);
}

TEST(HttpParser, RejectsMalformedStatusLine) {
  HttpParser parser(HttpParser::Kind::Response);
  EXPECT_FALSE(parser.feed("NOTHTTP banana\r\n\r\n"));
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, RejectsBadStatusCode) {
  HttpParser a(HttpParser::Kind::Response);
  EXPECT_FALSE(a.feed("HTTP/1.0 999999 Odd\r\n\r\n"));
  HttpParser b(HttpParser::Kind::Response);
  EXPECT_FALSE(b.feed("HTTP/1.0 xx OK\r\n\r\n"));
}

TEST(HttpParser, RejectsHeaderWithoutColon) {
  HttpParser parser(HttpParser::Kind::Request);
  EXPECT_FALSE(parser.feed("GET / HTTP/1.0\r\nBadHeaderNoColon\r\n\r\n"));
}

TEST(HttpParser, RejectsBadContentLength) {
  HttpParser parser(HttpParser::Kind::Response);
  EXPECT_FALSE(parser.feed("HTTP/1.0 200 OK\r\nContent-Length: abc\r\n\r\n"));
}

TEST(HttpParser, MultiWordReasonPreserved) {
  HttpParser parser(HttpParser::Kind::Response);
  EXPECT_TRUE(parser.feed("HTTP/1.0 404 Not Found\r\n\r\n"));
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.response().reason, "Not Found");
}

TEST(HttpParser, OversizedHeadFails) {
  HttpParser parser(HttpParser::Kind::Request);
  const std::string junk(70 * 1024, 'x');
  parser.feed(junk);
  EXPECT_TRUE(parser.failed());
}

TEST(CaseInsensitiveHeaders, LookupAnyCase) {
  HttpHeaders headers;
  headers["Content-Length"] = "10";
  EXPECT_TRUE(headers.contains("content-length"));
  EXPECT_TRUE(headers.contains("CONTENT-LENGTH"));
  EXPECT_EQ(headers.at("CoNtEnT-lEnGtH"), "10");
}

}  // namespace
}  // namespace ecnprobe::wire
