#include "ecnprobe/wire/dnsmsg.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::wire {
namespace {

TEST(DnsName, EncodeValid) {
  const auto encoded = encode_dns_name("uk.pool.ntp.org");
  ASSERT_TRUE(encoded);
  const std::vector<std::uint8_t> expected = {2,   'u', 'k', 4,   'p', 'o', 'o',
                                              'l', 3,   'n', 't', 'p', 3,   'o',
                                              'r', 'g', 0};
  EXPECT_EQ(*encoded, expected);
}

TEST(DnsName, RejectsBadLabels) {
  EXPECT_FALSE(encode_dns_name("a..b"));
  EXPECT_FALSE(encode_dns_name(std::string(64, 'x') + ".org"));
  // Name over 255 octets total.
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcdef.";
  long_name += "org";
  EXPECT_FALSE(encode_dns_name(long_name));
}

TEST(DnsMessage, QueryRoundTrip) {
  const auto query = DnsMessage::make_query(0x1234, "pool.ntp.org");
  const auto bytes = query.encode();
  const auto decoded = DnsMessage::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_FALSE(decoded->is_response);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "pool.ntp.org");
  EXPECT_EQ(decoded->questions[0].qtype, DnsType::A);
}

TEST(DnsMessage, ResponseWithAnswersRoundTrip) {
  const auto query = DnsMessage::make_query(7, "de.pool.ntp.org");
  std::vector<DnsRecord> answers = {
      DnsRecord::make_a("de.pool.ntp.org", Ipv4Address(11, 0, 1, 5), 150),
      DnsRecord::make_a("de.pool.ntp.org", Ipv4Address(11, 0, 2, 9), 150),
  };
  const auto response = DnsMessage::make_response(query, DnsRcode::NoError, answers);
  const auto decoded = DnsMessage::decode(response.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->is_response);
  EXPECT_TRUE(decoded->recursion_available);
  EXPECT_EQ(decoded->rcode, DnsRcode::NoError);
  ASSERT_EQ(decoded->answers.size(), 2u);
  const auto addr0 = decoded->answers[0].a_address();
  ASSERT_TRUE(addr0);
  EXPECT_EQ(*addr0, Ipv4Address(11, 0, 1, 5));
  EXPECT_EQ(decoded->answers[1].ttl, 150u);
}

TEST(DnsMessage, NxdomainResponse) {
  const auto query = DnsMessage::make_query(9, "nosuch.example");
  const auto response = DnsMessage::make_response(query, DnsRcode::NxDomain, {});
  const auto decoded = DnsMessage::decode(response.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->rcode, DnsRcode::NxDomain);
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(DnsMessage, DecodesCompressedNames) {
  // Hand-built response with a compression pointer in the answer name.
  std::vector<std::uint8_t> bytes = {
      0x00, 0x01,              // id
      0x80, 0x00,              // response flags
      0x00, 0x01, 0x00, 0x01,  // 1 question, 1 answer
      0x00, 0x00, 0x00, 0x00,  // no authority/additional
      // question: "ab.cd" A IN  (name starts at offset 12)
      2, 'a', 'b', 2, 'c', 'd', 0, 0x00, 0x01, 0x00, 0x01,
      // answer: pointer to offset 12, type A, class IN, ttl 1, rdlen 4
      0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x04,
      11, 0, 0, 7};
  const auto decoded = DnsMessage::decode(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(decoded->answers[0].name, "ab.cd");
  const auto addr = decoded->answers[0].a_address();
  ASSERT_TRUE(addr);
  EXPECT_EQ(*addr, Ipv4Address(11, 0, 0, 7));
}

TEST(DnsMessage, RejectsPointerLoop) {
  std::vector<std::uint8_t> bytes = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // question name is a pointer to itself
      0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01};
  EXPECT_FALSE(DnsMessage::decode(bytes));
}

TEST(DnsMessage, RejectsTruncation) {
  const auto query = DnsMessage::make_query(1, "pool.ntp.org");
  auto bytes = query.encode();
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DnsMessage::decode(bytes));
}

TEST(DnsRecord, AAddressRejectsWrongShape) {
  DnsRecord r;
  r.rtype = DnsType::Txt;
  r.rdata = {1, 2, 3, 4};
  EXPECT_FALSE(r.a_address());
  r.rtype = DnsType::A;
  r.rdata = {1, 2};
  EXPECT_FALSE(r.a_address());
}

}  // namespace
}  // namespace ecnprobe::wire
