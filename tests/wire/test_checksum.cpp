#include "ecnprobe/wire/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::wire {
namespace {

// RFC 1071 worked example.
TEST(Checksum, Rfc1071Example) {
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, VerifiesToZeroWhenEmbedded) {
  // Classic property: appending the checksum makes the whole sum ~0.
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x40, 0x00,
                                    0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                                    0x0b, 0x00, 0x00, 0x02};
  const std::uint16_t csum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t odd[] = {0x12, 0x34, 0x56};
  const std::uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Checksum, EmptyIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xffff);
}

TEST(Checksum, IncrementalAccumulationMatchesWhole) {
  util::Rng rng(77);
  std::vector<std::uint8_t> data(257);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  // Split at an even boundary: accumulation is word-based.
  const auto whole = internet_checksum(data);
  std::uint32_t acc = checksum_accumulate(std::span(data).subspan(0, 100));
  acc = checksum_accumulate(std::span(data).subspan(100), acc);
  EXPECT_EQ(checksum_finish(acc), whole);
}

TEST(Checksum, PropertyEmbedVerifiesForRandomBuffers) {
  util::Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(2 + rng.next_below(128) * 2);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    data[0] = data[1] = 0;  // checksum slot
    const std::uint16_t csum = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(csum >> 8);
    data[1] = static_cast<std::uint8_t>(csum);
    EXPECT_EQ(internet_checksum(data), 0) << "trial " << trial;
  }
}

TEST(PseudoHeader, TransportChecksumDetectsAddressSpoof) {
  const std::uint8_t segment[] = {0x10, 0x20, 0x30, 0x40, 0x00, 0x08, 0x00, 0x00};
  const auto csum1 = transport_checksum(0x0a000001, 0x0a000002, 17, segment);
  const auto csum2 = transport_checksum(0x0a000001, 0x0a000003, 17, segment);
  // Different destination address must change the checksum (that is the
  // point of the pseudo-header).
  EXPECT_NE(csum1, csum2);
}

}  // namespace
}  // namespace ecnprobe::wire
