#include "ecnprobe/wire/ipv4.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/wire/bytes.hpp"

namespace ecnprobe::wire {
namespace {

TEST(Ipv4Address, ParseValid) {
  const auto addr = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->value(), 0xc0a801c8u);
  EXPECT_EQ(addr->to_string(), "192.168.1.200");
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  for (const char* bad : {"1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3",
                          "1.2.3.-4", "", "1.2.3.1000"}) {
    EXPECT_FALSE(Ipv4Address::parse(bad)) << bad;
  }
}

TEST(Ipv4Address, RoundTripsAllOctetBoundaries) {
  for (const char* s : {"0.0.0.0", "255.255.255.255", "1.0.0.1", "10.255.0.128"}) {
    const auto addr = Ipv4Address::parse(s);
    ASSERT_TRUE(addr);
    EXPECT_EQ(addr->to_string(), s);
  }
}

TEST(Ipv4Address, PrefixMatching) {
  const Ipv4Address addr(10, 1, 2, 3);
  EXPECT_TRUE(addr.in_prefix(Ipv4Address(10, 1, 0, 0), 16));
  EXPECT_FALSE(addr.in_prefix(Ipv4Address(10, 2, 0, 0), 16));
  EXPECT_TRUE(addr.in_prefix(Ipv4Address(0, 0, 0, 0), 0));
  EXPECT_TRUE(addr.in_prefix(addr, 32));
  EXPECT_FALSE(addr.in_prefix(Ipv4Address(10, 1, 2, 4), 32));
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.dscp = 0x0a;
  h.ecn = Ecn::Ect0;
  h.total_length = 60;
  h.identification = 0xbeef;
  h.ttl = 17;
  h.protocol = IpProto::Udp;
  h.src = Ipv4Address(10, 0, 0, 1);
  h.dst = Ipv4Address(11, 22, 33, 44);

  ByteWriter out;
  h.encode(out);
  ASSERT_EQ(out.size(), Ipv4Header::kSize);

  const auto decoded = decode_ipv4_header(out.view());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->checksum_ok);
  EXPECT_EQ(decoded->header_len, Ipv4Header::kSize);
  const Ipv4Header& r = decoded->header;
  EXPECT_EQ(r.dscp, h.dscp);
  EXPECT_EQ(r.ecn, Ecn::Ect0);
  EXPECT_EQ(r.total_length, 60);
  EXPECT_EQ(r.identification, 0xbeef);
  EXPECT_EQ(r.ttl, 17);
  EXPECT_EQ(r.protocol, IpProto::Udp);
  EXPECT_EQ(r.src, h.src);
  EXPECT_EQ(r.dst, h.dst);
}

TEST(Ipv4Header, CorruptionBreaksChecksum) {
  Ipv4Header h;
  h.total_length = 20;
  h.src = Ipv4Address(1, 2, 3, 4);
  h.dst = Ipv4Address(5, 6, 7, 8);
  ByteWriter out;
  h.encode(out);
  auto bytes = out.take();
  bytes[8] ^= 0xff;  // flip TTL
  const auto decoded = decode_ipv4_header(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->checksum_ok);
}

TEST(Ipv4Header, DecodeRejectsTruncatedAndNonIpv4) {
  const std::uint8_t short_buf[10] = {0x45};
  EXPECT_FALSE(decode_ipv4_header(std::span<const std::uint8_t>(short_buf, 10)));
  std::uint8_t v6[20] = {0x60};
  EXPECT_FALSE(decode_ipv4_header(v6));
  std::uint8_t bad_ihl[20] = {0x41};  // IHL = 4 words < 5
  EXPECT_FALSE(decode_ipv4_header(bad_ihl));
}

TEST(Ipv4Header, TosOctetPacksDscpAndEcn) {
  Ipv4Header h;
  h.dscp = 0b101010;
  h.ecn = Ecn::Ce;
  EXPECT_EQ(h.tos_octet(), 0b10101011);
}

// All four ECN codepoints survive the wire round trip (the field the whole
// study depends on).
class EcnRoundTrip : public ::testing::TestWithParam<Ecn> {};

TEST_P(EcnRoundTrip, Preserved) {
  Ipv4Header h;
  h.ecn = GetParam();
  h.total_length = 20;
  ByteWriter out;
  h.encode(out);
  const auto decoded = decode_ipv4_header(out.view());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header.ecn, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCodepoints, EcnRoundTrip,
                         ::testing::Values(Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce));

TEST(Ecn, Predicates) {
  EXPECT_FALSE(is_ect(Ecn::NotEct));
  EXPECT_TRUE(is_ect(Ecn::Ect0));
  EXPECT_TRUE(is_ect(Ecn::Ect1));
  EXPECT_TRUE(is_ect(Ecn::Ce));
  EXPECT_TRUE(is_ect_codepoint(Ecn::Ect0));
  EXPECT_FALSE(is_ect_codepoint(Ecn::Ce));
  EXPECT_EQ(ecn_from_bits(0b10), Ecn::Ect0);
  EXPECT_EQ(to_string(Ecn::Ect0), "ECT(0)");
}

}  // namespace
}  // namespace ecnprobe::wire
