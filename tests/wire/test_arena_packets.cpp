// Pooled-buffer packet tests: datagrams whose wire bytes live in recycled
// pool storage must round-trip the wire codecs identically to plain
// heap-encoded ones, and the pool must actually recycle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ecnprobe/util/arena.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/tcp.hpp"

namespace ecnprobe::wire {
namespace {

std::vector<std::uint8_t> bytes_of(std::span<const std::uint8_t> s) {
  return {s.begin(), s.end()};
}

TEST(ArenaPackets, CachedWireViewEqualsFreshEncode) {
  const std::vector<std::uint8_t> payload{0xde, 0xad, 0xbe, 0xef};
  Datagram udp = make_udp_datagram(Ipv4Address(192, 0, 2, 1), Ipv4Address(198, 51, 100, 7),
                                   40000, 123, payload, Ecn::Ect0, 17);
  const auto fresh = udp.encode();  // before any cache exists
  EXPECT_EQ(bytes_of(udp.wire_view()), fresh);
  EXPECT_EQ(udp.encode(), fresh);  // cached encode equals pre-cache encode
}

TEST(ArenaPackets, PooledRoundTripPreservesEveryField) {
  TcpHeader tcp;
  tcp.src_port = 443;
  tcp.dst_port = 50123;
  tcp.seq = 0x01020304;
  tcp.ack = 0x0a0b0c0d;
  tcp.flags.syn = true;
  tcp.flags.ece = true;
  tcp.flags.cwr = true;
  tcp.window = 65535;
  Datagram dgram = make_tcp_datagram(Ipv4Address(10, 1, 2, 3), Ipv4Address(10, 9, 8, 7),
                                     tcp, {}, Ecn::NotEct);
  dgram.ip.identification = 0x4242;

  const auto wire = bytes_of(dgram.wire_view());
  const auto decoded = Datagram::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.src, dgram.ip.src);
  EXPECT_EQ(decoded->ip.dst, dgram.ip.dst);
  EXPECT_EQ(decoded->ip.ttl, dgram.ip.ttl);
  EXPECT_EQ(decoded->ip.ecn, dgram.ip.ecn);
  EXPECT_EQ(decoded->ip.identification, 0x4242);
  EXPECT_EQ(decoded->payload, dgram.payload);
  // The re-encode of the decode is the original wire image.
  EXPECT_EQ(decoded->encode(), wire);
}

TEST(ArenaPackets, PoolRecyclesWireCacheStorage) {
  auto& pool = util::BufferPool::this_thread();
  const std::vector<std::uint8_t> payload(64, 0x55);
  {
    Datagram warm = make_udp_datagram(Ipv4Address(1, 2, 3, 4), Ipv4Address(5, 6, 7, 8), 9,
                                      10, payload, Ecn::Ect0);
    (void)warm.wire_view();
  }  // cache buffer returns to the pool here
  const std::uint64_t hits_before = pool.hits();
  Datagram next = make_udp_datagram(Ipv4Address(1, 2, 3, 4), Ipv4Address(5, 6, 7, 8), 9,
                                    10, payload, Ecn::Ect0);
  (void)next.wire_view();
  EXPECT_GT(pool.hits(), hits_before) << "wire cache should reuse pooled storage";
}

TEST(ArenaPackets, CopiedDatagramReencodesAfterDirectMutation) {
  // The safety property behind copy-drops-cache: mutate a *copy* directly
  // (no mutators) and its encode must reflect the change, because the copy
  // never inherited the original's cached bytes.
  Datagram original = make_udp_datagram(Ipv4Address(9, 9, 9, 9), Ipv4Address(8, 8, 8, 8),
                                        1, 2, std::vector<std::uint8_t>{1}, Ecn::Ect0);
  (void)original.wire_view();
  Datagram copy = original;
  copy.ip.ttl = 1;
  const auto decoded = Datagram::decode(copy.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.ttl, 1);
  // And the original's cache still reflects the *original* TTL.
  const auto original_decoded = Datagram::decode(bytes_of(original.wire_view()));
  ASSERT_TRUE(original_decoded.has_value());
  EXPECT_EQ(original_decoded->ip.ttl, Ipv4Header::kDefaultTtl);
}

}  // namespace
}  // namespace ecnprobe::wire
