#include "ecnprobe/wire/udp.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::wire {
namespace {

const Ipv4Address kSrc(10, 0, 0, 1);
const Ipv4Address kDst(11, 0, 0, 2);

TEST(Udp, SegmentRoundTrip) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  const auto segment = encode_udp_segment(kSrc, kDst, 12345, 123, payload);
  ASSERT_EQ(segment.size(), UdpHeader::kSize + 5);

  const auto view = decode_udp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->header.src_port, 12345);
  EXPECT_EQ(view->header.dst_port, 123);
  EXPECT_EQ(view->header.length, segment.size());
  EXPECT_TRUE(view->checksum_ok);
  ASSERT_EQ(view->payload.size(), 5u);
  EXPECT_EQ(view->payload[4], 5);
}

TEST(Udp, ChecksumCoversAddresses) {
  const std::uint8_t payload[] = {9};
  const auto segment = encode_udp_segment(kSrc, kDst, 1, 2, payload);
  // Same bytes "received" with a different source address: checksum fails.
  const auto view = decode_udp_segment(Ipv4Address(10, 0, 0, 9), kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_FALSE(view->checksum_ok);
}

TEST(Udp, PayloadCorruptionDetected) {
  const std::uint8_t payload[] = {1, 2, 3};
  auto segment = encode_udp_segment(kSrc, kDst, 1, 2, payload);
  segment.back() ^= 0x01;
  const auto view = decode_udp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_FALSE(view->checksum_ok);
}

TEST(Udp, ZeroChecksumMeansUnverified) {
  const std::uint8_t payload[] = {1};
  auto segment = encode_udp_segment(kSrc, kDst, 1, 2, payload);
  segment[6] = 0;
  segment[7] = 0;  // checksum = 0: "not computed"
  const auto view = decode_udp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_TRUE(view->checksum_ok);
}

TEST(Udp, DecodeRejectsTruncationAndBadLength) {
  const std::uint8_t tiny[4] = {};
  EXPECT_FALSE(UdpHeader::decode(std::span<const std::uint8_t>(tiny, 4)));

  // length field below header size
  const std::uint8_t bad_len[] = {0, 1, 0, 2, 0, 4, 0, 0};
  EXPECT_FALSE(UdpHeader::decode(bad_len));

  // segment shorter than its length field claims
  const std::uint8_t short_seg[] = {0, 1, 0, 2, 0, 50, 0, 0};
  EXPECT_FALSE(decode_udp_segment(kSrc, kDst, short_seg));
}

TEST(Udp, EmptyPayloadIsLegal) {
  const auto segment = encode_udp_segment(kSrc, kDst, 5, 6, {});
  const auto view = decode_udp_segment(kSrc, kDst, segment);
  ASSERT_TRUE(view);
  EXPECT_TRUE(view->payload.empty());
  EXPECT_TRUE(view->checksum_ok);
}

TEST(Udp, PropertyRandomPayloadsRoundTrip) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> payload(rng.next_below(600));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto sp = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    const auto dp = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    const auto segment = encode_udp_segment(kSrc, kDst, sp, dp, payload);
    const auto view = decode_udp_segment(kSrc, kDst, segment);
    ASSERT_TRUE(view);
    EXPECT_TRUE(view->checksum_ok);
    EXPECT_EQ(view->header.src_port, sp);
    EXPECT_EQ(view->header.dst_port, dp);
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), view->payload.begin(),
                           view->payload.end()));
  }
}

}  // namespace
}  // namespace ecnprobe::wire
