// Property pin for the RFC 1624 incremental checksum: for IPv4 headers, a
// word-level patch of the stored checksum must be bit-identical to a full
// header recompute, across 10k randomized TTL/DSCP/ECN/identification
// rewrites -- including the +0/-0 corner RFC 1624 warns about, which the
// 0x45 version byte provably excludes for real headers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ecnprobe/util/rng.hpp"
#include "ecnprobe/wire/checksum.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {
namespace {

std::uint16_t word_at(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint16_t>((b[off] << 8) | b[off + 1]);
}

void put_word(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}

/// A random but valid 20-byte IPv4 header with a correct stored checksum.
std::vector<std::uint8_t> random_header(util::Rng& rng) {
  std::vector<std::uint8_t> h(Ipv4Header::kSize);
  h[0] = 0x45;  // the version/IHL byte that makes RFC 1624 exact here
  for (std::size_t i = 1; i < h.size(); ++i) {
    h[i] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  put_word(h, 10, 0);
  put_word(h, 10, internet_checksum(h));
  return h;
}

TEST(ChecksumIncremental, MatchesFullRecomputeAcross10kRandomRewrites) {
  util::Rng rng(20150417);
  for (int round = 0; round < 10'000; ++round) {
    auto header = random_header(rng);
    // Rewrite one of the words the datapath mutates: the ToS word (DSCP and
    // ECN live in its low byte), identification, or the TTL/protocol word.
    const std::size_t offsets[] = {0, 4, 8};
    const std::size_t off = offsets[rng.next_below(3)];
    const std::uint16_t old_word = word_at(header, off);
    std::uint16_t new_word;
    if (off == 0) {
      // Keep the version byte -- only the ToS octet can change in flight.
      new_word = static_cast<std::uint16_t>((0x45u << 8) | rng.next_below(256));
    } else {
      new_word = static_cast<std::uint16_t>(rng.next_below(65536));
    }

    const std::uint16_t patched =
        checksum_update(word_at(header, 10), old_word, new_word);

    put_word(header, off, new_word);
    put_word(header, 10, 0);
    const std::uint16_t recomputed = internet_checksum(header);
    ASSERT_EQ(patched, recomputed)
        << "round=" << round << " off=" << off << " old=" << old_word
        << " new=" << new_word;
    put_word(header, 10, recomputed);  // chain: next round patches this header
  }
}

TEST(ChecksumIncremental, ChainedPatchesStayExact) {
  // A packet crossing many routers gets its checksum patched repeatedly;
  // errors must not accumulate over a long rewrite chain.
  util::Rng rng(7);
  auto header = random_header(rng);
  for (int hop = 0; hop < 1000; ++hop) {
    const std::uint16_t old_word = word_at(header, 8);
    const auto ttl = static_cast<std::uint8_t>(rng.next_below(256));
    const std::uint16_t new_word =
        static_cast<std::uint16_t>((ttl << 8) | (old_word & 0xff));
    put_word(header, 10, checksum_update(word_at(header, 10), old_word, new_word));
    put_word(header, 8, new_word);
  }
  auto copy = header;
  put_word(copy, 10, 0);
  EXPECT_EQ(word_at(header, 10), internet_checksum(copy));
  // A receiver summing the full header (checksum included) must get zero.
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(DatagramMutators, PatchedWireCacheMatchesFullReencode) {
  util::Rng rng(42);
  for (int round = 0; round < 2'000; ++round) {
    const std::vector<std::uint8_t> payload(16 + rng.next_below(64),
                                            static_cast<std::uint8_t>(round));
    Datagram dgram = make_udp_datagram(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 9, 9),
                                       4242, 123, payload,
                                       rng.next_below(2) != 0 ? Ecn::Ect0 : Ecn::NotEct);
    (void)dgram.wire_view();  // prime the cache, then mutate through it
    ASSERT_TRUE(dgram.wire_cached());

    for (int step = 0; step < 4; ++step) {
      switch (rng.next_below(4)) {
        case 0: dgram.set_ttl(static_cast<std::uint8_t>(rng.next_below(256))); break;
        case 1: dgram.set_ecn(static_cast<Ecn>(rng.next_below(4))); break;
        case 2: dgram.set_dscp(static_cast<std::uint8_t>(rng.next_below(64))); break;
        default:
          dgram.set_identification(static_cast<std::uint16_t>(rng.next_below(65536)));
      }
    }

    // A copy drops the cache, so its encode() is an honest full re-encode.
    const Datagram fresh = dgram;
    ASSERT_FALSE(fresh.wire_cached());
    const auto patched = dgram.encode();
    const auto reencoded = fresh.encode();
    ASSERT_EQ(patched, reencoded) << "round=" << round;

    // And the patched bytes still parse with a valid IP checksum.
    const auto decoded = Datagram::decode(patched);
    ASSERT_TRUE(decoded.has_value()) << (decoded ? "" : decoded.error().message);
    EXPECT_EQ(decoded->ip.ttl, dgram.ip.ttl);
    EXPECT_EQ(decoded->ip.ecn, dgram.ip.ecn);
    EXPECT_EQ(decoded->ip.dscp, dgram.ip.dscp);
    EXPECT_EQ(decoded->ip.identification, dgram.ip.identification);
  }
}

TEST(DatagramMutators, TouchPayloadInvalidatesCache) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  Datagram dgram = make_udp_datagram(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1,
                                     2, payload, Ecn::Ect0);
  (void)dgram.wire_view();
  ASSERT_TRUE(dgram.wire_cached());
  dgram.touch_payload();
  EXPECT_FALSE(dgram.wire_cached());
  dgram.payload.push_back(9);
  dgram.ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + dgram.payload.size());
  const auto wire = dgram.wire_view();
  EXPECT_EQ(wire.size(), Ipv4Header::kSize + dgram.payload.size());
  EXPECT_EQ(wire.back(), 9);
}

TEST(DatagramMutators, PlainFieldWritesStaySafeWhenUncached) {
  // Tests and scenario builders mutate header fields directly; as long as
  // no cache was primed, encode() must reflect every such write.
  Datagram dgram = make_udp_datagram(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1,
                                     2, std::vector<std::uint8_t>{5}, Ecn::NotEct);
  dgram.ip.ttl = 3;
  dgram.ip.ecn = Ecn::Ce;
  ASSERT_FALSE(dgram.wire_cached());
  const auto decoded = Datagram::decode(dgram.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ip.ttl, 3);
  EXPECT_EQ(decoded->ip.ecn, Ecn::Ce);
}

}  // namespace
}  // namespace ecnprobe::wire
