#include "ecnprobe/wire/ntp.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::wire {
namespace {

TEST(NtpTimestamp, UnixConversionRoundTrip) {
  const std::int64_t unix_ns = 1'428'883'200'000'000'000;  // 2015-04-13
  const auto ts = NtpTimestamp::from_unix_nanos(unix_ns);
  EXPECT_EQ(ts.seconds, 1'428'883'200u + NtpTimestamp::kUnixEpochOffset);
  EXPECT_NEAR(ts.to_unix_seconds(), 1'428'883'200.0, 1e-6);
}

TEST(NtpTimestamp, FractionEncodesSubsecond) {
  const auto ts = NtpTimestamp::from_unix_nanos(500'000'000);  // 0.5 s
  EXPECT_NEAR(static_cast<double>(ts.fraction) / 4294967296.0, 0.5, 1e-6);
}

TEST(NtpPacket, ClientRequestShape) {
  const auto ts = NtpTimestamp::from_unix_nanos(123'456'789);
  const auto p = NtpPacket::make_client_request(ts);
  EXPECT_EQ(p.mode, NtpMode::Client);
  EXPECT_EQ(p.version, NtpPacket::kVersion);
  EXPECT_EQ(p.transmit_ts, ts);
  EXPECT_TRUE(p.origin_ts.is_zero());
}

TEST(NtpPacket, EncodeIs48Bytes) {
  const auto p = NtpPacket::make_client_request({});
  EXPECT_EQ(p.encode().size(), NtpPacket::kSize);
}

TEST(NtpPacket, EncodeDecodeRoundTrip) {
  NtpPacket p;
  p.leap = NtpLeap::Unsynchronized;
  p.mode = NtpMode::Server;
  p.stratum = 3;
  p.poll = 6;
  p.precision = -20;
  p.root_delay = 0x00010000;
  p.root_dispersion = 0x00020000;
  p.reference_id = 0x47505300;
  p.origin_ts = {100, 200};
  p.receive_ts = {300, 400};
  p.transmit_ts = {500, 600};
  const auto bytes = p.encode();
  const auto decoded = NtpPacket::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->leap, NtpLeap::Unsynchronized);
  EXPECT_EQ(decoded->mode, NtpMode::Server);
  EXPECT_EQ(decoded->stratum, 3);
  EXPECT_EQ(decoded->poll, 6);
  EXPECT_EQ(decoded->precision, -20);
  EXPECT_EQ(decoded->origin_ts, (NtpTimestamp{100, 200}));
  EXPECT_EQ(decoded->transmit_ts, (NtpTimestamp{500, 600}));
}

TEST(NtpPacket, DecodeRejectsShortPacket) {
  std::vector<std::uint8_t> bytes(47, 0);
  EXPECT_FALSE(NtpPacket::decode(bytes));
}

TEST(NtpPacket, ServerResponseEchoesOrigin) {
  const auto request = NtpPacket::make_client_request({777, 888});
  const NtpTimestamp now{999, 111};
  const auto response = NtpPacket::make_server_response(request, 2, 0x12345678, now, now);
  EXPECT_EQ(response.mode, NtpMode::Server);
  EXPECT_EQ(response.stratum, 2);
  EXPECT_EQ(response.origin_ts, request.transmit_ts);
  EXPECT_TRUE(response.answers(request));
}

TEST(NtpPacket, AnswersRejectsMismatchedOrigin) {
  const auto request = NtpPacket::make_client_request({777, 888});
  const auto other = NtpPacket::make_client_request({777, 889});
  const auto response =
      NtpPacket::make_server_response(other, 2, 0, {1, 1}, {1, 1});
  EXPECT_FALSE(response.answers(request));
}

TEST(NtpPacket, AnswersRejectsBadStratumAndMode) {
  const auto request = NtpPacket::make_client_request({1, 2});
  auto response = NtpPacket::make_server_response(request, 2, 0, {1, 1}, {1, 1});
  response.stratum = 0;  // kiss-of-death
  EXPECT_FALSE(response.answers(request));
  response.stratum = 16;  // out of range
  EXPECT_FALSE(response.answers(request));
  response.stratum = 2;
  response.mode = NtpMode::Broadcast;
  EXPECT_FALSE(response.answers(request));
}

}  // namespace
}  // namespace ecnprobe::wire
