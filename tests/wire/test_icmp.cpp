#include "ecnprobe/wire/icmp.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/datagram.hpp"
#include "ecnprobe/wire/udp.hpp"

namespace ecnprobe::wire {
namespace {

TEST(Icmp, MessageRoundTrip) {
  IcmpMessage msg;
  msg.type = IcmpType::TimeExceeded;
  msg.code = 0;
  msg.body = {1, 2, 3, 4};
  const auto bytes = msg.encode();
  ASSERT_EQ(bytes.size(), IcmpMessage::kHeaderSize + 4);

  const auto decoded = decode_icmp_message(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->checksum_ok);
  EXPECT_EQ(decoded->message.type, IcmpType::TimeExceeded);
  EXPECT_TRUE(decoded->message.is_error());
  EXPECT_EQ(decoded->message.body, msg.body);
}

TEST(Icmp, ChecksumDetectsCorruption) {
  IcmpMessage msg;
  msg.type = IcmpType::EchoRequest;
  msg.body = {42};
  auto bytes = msg.encode();
  bytes.back() ^= 0x01;
  const auto decoded = decode_icmp_message(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->checksum_ok);
}

TEST(Icmp, DecodeRejectsTruncated) {
  const std::uint8_t tiny[4] = {};
  EXPECT_FALSE(decode_icmp_message(std::span<const std::uint8_t>(tiny, 4)));
}

// The quotation mechanism is the backbone of the Section 4.2 analysis: the
// quoted header must reproduce the ECN field exactly as the router saw it.
TEST(Icmp, QuotationPreservesReceivedEcnField) {
  const Ipv4Address client(10, 0, 0, 1);
  const Ipv4Address server(11, 0, 0, 2);
  const Ipv4Address router(12, 0, 0, 1);
  const std::uint8_t payload[] = {'n', 't', 'p'};
  auto probe = make_udp_datagram(client, server, 44001, 33435, payload, Ecn::Ect0, 3);

  // Simulate an upstream bleacher having cleared the mark before this
  // router received the packet.
  probe.ip.ecn = Ecn::NotEct;
  const auto error = make_time_exceeded(router, probe);

  EXPECT_EQ(error.ip.src, router);
  EXPECT_EQ(error.ip.dst, client);
  EXPECT_EQ(error.ip.protocol, IpProto::Icmp);
  EXPECT_EQ(error.ip.ecn, Ecn::NotEct);  // ICMP itself is not-ECT

  const auto decoded = decode_icmp_message(error.payload);
  ASSERT_TRUE(decoded);
  const auto quotation = parse_quotation(decoded->message.body);
  ASSERT_TRUE(quotation);
  EXPECT_EQ(quotation->inner_header.ecn, Ecn::NotEct);  // bleached value quoted
  EXPECT_EQ(quotation->inner_header.src, client);
  EXPECT_EQ(quotation->inner_header.dst, server);
  // RFC 792: at least the first 8 bytes of the transport header follow.
  ASSERT_GE(quotation->transport_prefix.size(), 8u);
  const auto src_port = static_cast<std::uint16_t>(
      (quotation->transport_prefix[0] << 8) | quotation->transport_prefix[1]);
  EXPECT_EQ(src_port, 44001);
}

TEST(Icmp, QuotationWithIntactMark) {
  const Ipv4Address client(10, 0, 0, 1);
  const Ipv4Address server(11, 0, 0, 2);
  const auto probe =
      make_udp_datagram(client, server, 44002, 33436, {}, Ecn::Ect0, 5);
  const auto error = make_time_exceeded(Ipv4Address(12, 0, 0, 9), probe);
  const auto decoded = decode_icmp_message(error.payload);
  ASSERT_TRUE(decoded);
  const auto quotation = parse_quotation(decoded->message.body);
  ASSERT_TRUE(quotation);
  EXPECT_EQ(quotation->inner_header.ecn, Ecn::Ect0);
}

TEST(Icmp, DestUnreachableCarriesCode) {
  const auto probe = make_udp_datagram(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                                       1000, 2000, {}, Ecn::NotEct);
  const auto error =
      make_dest_unreachable(Ipv4Address(2, 2, 2, 2), probe, IcmpUnreachCode::Port);
  const auto decoded = decode_icmp_message(error.payload);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->message.type, IcmpType::DestUnreachable);
  EXPECT_EQ(decoded->message.code, static_cast<std::uint8_t>(IcmpUnreachCode::Port));
}

TEST(Icmp, QuotationTruncatesTransportToEightBytes) {
  std::vector<std::uint8_t> big(100, 0xaa);
  Ipv4Header h;
  h.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + big.size());
  const auto body = make_error_quotation(h, big);
  EXPECT_EQ(body.size(), Ipv4Header::kSize + 8);
}

TEST(Icmp, ParseQuotationRejectsGarbage) {
  const std::uint8_t garbage[] = {0xff, 0xff, 0xff};
  EXPECT_FALSE(parse_quotation(garbage));
}

}  // namespace
}  // namespace ecnprobe::wire
