// IPv4 headers carrying options (IHL > 5): real traceroute responders and
// middleboxes emit them; decoders must skip options and land on the payload.
#include <gtest/gtest.h>

#include "ecnprobe/wire/bytes.hpp"
#include "ecnprobe/wire/checksum.hpp"
#include "ecnprobe/wire/ipv4.hpp"

namespace ecnprobe::wire {
namespace {

// Hand-builds a 24-byte header (IHL = 6) with 4 bytes of options.
std::vector<std::uint8_t> header_with_options(Ecn ecn) {
  ByteWriter out;
  out.u8(0x46);  // version 4, IHL 6
  out.u8(to_bits(ecn));
  out.u16(24 + 8);  // total length: header + 8 payload bytes
  out.u16(0x1234);
  out.u16(0x4000);  // DF
  out.u8(55);
  out.u8(static_cast<std::uint8_t>(IpProto::Udp));
  out.u16(0);  // checksum placeholder
  out.u32(Ipv4Address(10, 1, 2, 3).value());
  out.u32(Ipv4Address(11, 4, 5, 6).value());
  out.u8(0x07);  // record-route option type
  out.u8(0x04);  // length 4 (header only, no slots)
  out.u8(0x04);  // pointer
  out.u8(0x00);  // padding
  auto bytes = out.take();
  const std::uint16_t csum = internet_checksum(bytes);
  bytes[10] = static_cast<std::uint8_t>(csum >> 8);
  bytes[11] = static_cast<std::uint8_t>(csum);
  return bytes;
}

TEST(Ipv4Options, DecodeSkipsOptionsAndVerifiesChecksum) {
  const auto bytes = header_with_options(Ecn::Ect0);
  const auto decoded = decode_ipv4_header(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->checksum_ok);
  EXPECT_EQ(decoded->header_len, 24u);
  EXPECT_EQ(decoded->header.ecn, Ecn::Ect0);
  EXPECT_EQ(decoded->header.ttl, 55);
  EXPECT_EQ(decoded->header.src, Ipv4Address(10, 1, 2, 3));
}

TEST(Ipv4Options, EcnFieldSurvivesRegardlessOfOptions) {
  for (const auto ecn : {Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce}) {
    const auto decoded = decode_ipv4_header(header_with_options(ecn));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->header.ecn, ecn);
  }
}

TEST(Ipv4Options, CorruptedOptionBytesBreakChecksum) {
  auto bytes = header_with_options(Ecn::NotEct);
  bytes[21] ^= 0xff;  // flip inside the options area
  const auto decoded = decode_ipv4_header(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->checksum_ok);
}

}  // namespace
}  // namespace ecnprobe::wire
