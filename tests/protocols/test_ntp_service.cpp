#include "ecnprobe/ntp/ntp.hpp"

#include <gtest/gtest.h>

#include "../netsim/mini_net.hpp"

namespace ecnprobe::ntp {
namespace {

using namespace ecnprobe::util::literals;
using netsim::testutil::Chain;

struct NtpFixture : ::testing::Test {
  Chain chain{2};
  SimClock clock;
  NtpServerService server{*chain.host_b, clock, 2};
  NtpClient client{*chain.host_a, clock};
};

TEST_F(NtpFixture, QuerySucceedsFirstAttempt) {
  std::optional<NtpQueryResult> result;
  client.query(chain.host_b->address(), NtpQueryOptions{},
               [&](const NtpQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->attempts, 1);
  EXPECT_EQ(result->server_stratum, 2);
  EXPECT_GT(result->rtt.count_nanos(), 0);
  EXPECT_EQ(server.stats().requests, 1u);
  EXPECT_EQ(server.stats().responses, 1u);
}

TEST_F(NtpFixture, Ect0MarkedQueryReachesServerMarked) {
  NtpQueryOptions options;
  options.ecn = wire::Ecn::Ect0;
  std::optional<NtpQueryResult> result;
  client.query(chain.host_b->address(), options,
               [&](const NtpQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->success);
  EXPECT_EQ(server.stats().ect_marked_requests, 1u);
  // NTP responses are not-ECT (servers do not do ECN).
  EXPECT_EQ(result->response_ecn, wire::Ecn::NotEct);
}

TEST_F(NtpFixture, OfflineServerExhaustsFiveAttempts) {
  server.set_online(false);
  std::optional<NtpQueryResult> result;
  const auto start = chain.sim.now();
  client.query(chain.host_b->address(), NtpQueryOptions{},
               [&](const NtpQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->attempts, 5);  // the paper's five requests
  // Five 1-second timeouts elapse.
  EXPECT_GE((chain.sim.now() - start).count_nanos(), (5_s).count_nanos());
  EXPECT_EQ(server.stats().requests, 5u);  // host up, ntpd silent
  EXPECT_EQ(server.stats().responses, 0u);
}

TEST_F(NtpFixture, EctDropFirewallMakesServerUnreachableOnlyWithEct) {
  // Firewall in front of the server dropping ECT-marked UDP.
  chain.net.add_egress_policy(chain.routers[1], 1,
                              std::make_shared<netsim::EctUdpDropPolicy>());
  std::optional<NtpQueryResult> plain;
  std::optional<NtpQueryResult> ect;
  client.query(chain.host_b->address(), NtpQueryOptions{},
               [&](const NtpQueryResult& r) { plain = r; });
  chain.sim.run();
  NtpQueryOptions ect_options;
  ect_options.ecn = wire::Ecn::Ect0;
  client.query(chain.host_b->address(), ect_options,
               [&](const NtpQueryResult& r) { ect = r; });
  chain.sim.run();
  ASSERT_TRUE(plain && ect);
  EXPECT_TRUE(plain->success);
  EXPECT_FALSE(ect->success);
  EXPECT_EQ(ect->attempts, 5);
}

TEST(NtpRateLimit, FlakyServerSometimesNeedsRetries) {
  Chain chain(1);
  SimClock clock;
  NtpServerService::Params params;
  params.stratum = 2;
  params.response_prob = 0.6;
  NtpServerService server(*chain.host_b, clock, params);
  NtpClient client(*chain.host_a, clock);

  int successes = 0;
  int total_attempts = 0;
  int done = 0;
  const int n = 60;
  std::function<void(int)> run_query = [&](int remaining) {
    if (remaining == 0) return;
    client.query(chain.host_b->address(), NtpQueryOptions{},
                 [&, remaining](const NtpQueryResult& r) {
                   ++done;
                   successes += r.success ? 1 : 0;
                   total_attempts += r.attempts;
                   run_query(remaining - 1);
                 });
  };
  run_query(n);
  chain.sim.run();
  EXPECT_EQ(done, n);
  EXPECT_GT(successes, n * 9 / 10);  // 1 - 0.4^5 = 99%
  EXPECT_GT(total_attempts, n);      // retries actually happened
}

TEST(NtpClock, SimClockAnchorsAtCampaignDate) {
  SimClock clock;
  const auto ts = clock.at(util::SimTime::zero());
  // 2015-04-13 in the NTP era.
  EXPECT_EQ(ts.seconds, 1'428'883'200u + wire::NtpTimestamp::kUnixEpochOffset);
  const auto later = clock.at(util::SimTime::zero() + 2_s);
  EXPECT_EQ(later.seconds, ts.seconds + 2);
}

TEST(NtpConcurrent, ParallelQueriesToDistinctServersDoNotCross) {
  // Two servers on one chain host cannot share port 123; build two chains
  // is overkill -- instead check two concurrent queries to the same server
  // are individually matched by origin timestamp.
  Chain chain(1);
  SimClock clock;
  NtpServerService server(*chain.host_b, clock, 3);
  NtpClient client(*chain.host_a, clock);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client.query(chain.host_b->address(), NtpQueryOptions{},
                 [&](const NtpQueryResult& r) {
                   EXPECT_TRUE(r.success);
                   ++completed;
                 });
  }
  chain.sim.run();
  EXPECT_EQ(completed, 5);
}

}  // namespace
}  // namespace ecnprobe::ntp
