#include "ecnprobe/traceroute/traceroute.hpp"

#include <gtest/gtest.h>

#include "../netsim/mini_net.hpp"
#include "ecnprobe/chaos/policies.hpp"

namespace ecnprobe::traceroute {
namespace {

using netsim::testutil::Chain;

TracerouteOptions fast_options() {
  TracerouteOptions options;
  options.timeout = util::SimDuration::millis(200);
  options.max_ttl = 12;
  return options;
}

TEST(Traceroute, DiscoversAllRespondingHopsInOrder) {
  Chain chain(4);
  Tracerouter tracer(*chain.host_a);
  std::optional<PathRecord> record;
  tracer.trace(chain.host_b->address(), fast_options(),
               [&](const PathRecord& r) { record = r; });
  chain.sim.run();
  ASSERT_TRUE(record);
  ASSERT_GE(record->hops.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto& hop = record->hops[static_cast<std::size_t>(i)];
    EXPECT_TRUE(hop.responded);
    EXPECT_EQ(hop.ttl, i + 1);
    EXPECT_EQ(hop.responder,
              chain.net.node(chain.routers[static_cast<std::size_t>(i)]).address());
    EXPECT_TRUE(hop.ecn_intact());  // clean path: ECT(0) everywhere
  }
  EXPECT_EQ(record->responding_hops(), 4);
}

TEST(Traceroute, StripDetectedDownstreamOfBleacher) {
  Chain chain(4);
  // Bleacher between router 1 and router 2.
  chain.net.add_egress_policy(chain.routers[1], 1,
                              std::make_shared<netsim::EcnBleachPolicy>(1.0));
  Tracerouter tracer(*chain.host_a);
  std::optional<PathRecord> record;
  tracer.trace(chain.host_b->address(), fast_options(),
               [&](const PathRecord& r) { record = r; });
  chain.sim.run();
  ASSERT_TRUE(record);
  ASSERT_GE(record->hops.size(), 4u);
  // Hops 1,2 (routers 0,1) saw the intact mark; hops 3,4 the bleached one --
  // the paper's "runs of red after the mark has been stripped".
  EXPECT_TRUE(record->hops[0].ecn_intact());
  EXPECT_TRUE(record->hops[1].ecn_intact());
  EXPECT_FALSE(record->hops[2].ecn_intact());
  EXPECT_EQ(record->hops[2].quoted_ecn, wire::Ecn::NotEct);
  EXPECT_FALSE(record->hops[3].ecn_intact());
}

TEST(Traceroute, SilentRoutersShowAsNoResponse) {
  Chain silent(4, /*icmp_prob=*/0.0);
  Tracerouter tracer(*silent.host_a);
  std::optional<PathRecord> record;
  auto options = fast_options();
  options.stop_after_silent = 3;
  tracer.trace(silent.host_b->address(), options,
               [&](const PathRecord& r) { record = r; });
  silent.sim.run();
  ASSERT_TRUE(record);
  // All routers silent: the trace gives up after stop_after_silent hops.
  EXPECT_EQ(record->hops.size(), 3u);
  for (const auto& hop : record->hops) EXPECT_FALSE(hop.responded);
  EXPECT_EQ(record->responding_hops(), 0);
}

TEST(Traceroute, StopsOneHopBeforeSilentDestination) {
  Chain chain(3);
  Tracerouter tracer(*chain.host_a);
  std::optional<PathRecord> record;
  auto options = fast_options();
  options.stop_after_silent = 2;
  tracer.trace(chain.host_b->address(), options,
               [&](const PathRecord& r) { record = r; });
  chain.sim.run();
  ASSERT_TRUE(record);
  EXPECT_FALSE(record->reached_destination);  // pool hosts do not answer
  // 3 responding router hops, then silence.
  EXPECT_EQ(record->responding_hops(), 3);
  EXPECT_EQ(record->hops.back().responded, false);
}

TEST(Traceroute, DestinationPortUnreachableEndsTrace) {
  Chain chain(2);
  // A destination that *does* send port-unreachable.
  netsim::Host::Params params;
  params.udp_port_unreachable = true;
  // Rebuild host B is complex; instead flip its params via a new chain: the
  // fixture does not support it, so exercise via direct construction.
  netsim::Simulator sim;
  netsim::Network net(sim, util::Rng(1));
  auto a = std::make_unique<netsim::Host>("a", netsim::Host::Params{}, util::Rng(2));
  auto b = std::make_unique<netsim::Host>("b", params, util::Rng(3));
  netsim::Host* host_a = a.get();
  netsim::Host* host_b = b.get();
  const auto ida = net.add_node(std::move(a));
  const auto idb = net.add_node(std::move(b));
  host_a->set_address(wire::Ipv4Address(10, 0, 0, 1));
  host_b->set_address(wire::Ipv4Address(11, 0, 0, 1));
  net.connect(ida, idb, netsim::LinkParams{});

  Tracerouter tracer(*host_a);
  std::optional<PathRecord> record;
  tracer.trace(host_b->address(), fast_options(),
               [&](const PathRecord& r) { record = r; });
  sim.run();
  ASSERT_TRUE(record);
  EXPECT_TRUE(record->reached_destination);
  ASSERT_FALSE(record->hops.empty());
  EXPECT_EQ(record->hops.back().responder, host_b->address());
}

TEST(Traceroute, RetriesRecoverLossyHops) {
  netsim::LinkParams lossy;
  lossy.loss_rate = 0.3;
  Chain chain(3, 1.0, lossy);
  Tracerouter tracer(*chain.host_a);
  auto options = fast_options();
  options.probes_per_hop = 4;
  std::optional<PathRecord> record;
  tracer.trace(chain.host_b->address(), options,
               [&](const PathRecord& r) { record = r; });
  chain.sim.run();
  ASSERT_TRUE(record);
  EXPECT_GE(record->responding_hops(), 2);  // retries beat 30% loss
}

TEST(Traceroute, TruncatedQuotesToleratedAsEcnUnknown) {
  Chain chain(4);
  // Every ICMP error heading back to host A through router 0 has its
  // quotation cut below a full inner IP header -- the RFC 1812 violation
  // some real routers commit.
  auto truncate = std::make_shared<ecnprobe::chaos::QuoteTruncatePolicy>(1.0);
  truncate->on_epoch(7);
  chain.net.add_egress_policy(chain.routers[0], 0, truncate);

  Tracerouter tracer(*chain.host_a);
  std::optional<PathRecord> record;
  tracer.trace(chain.host_b->address(), fast_options(),
               [&](const PathRecord& r) { record = r; });
  chain.sim.run();
  ASSERT_TRUE(record);
  ASSERT_GE(record->hops.size(), 4u);
  int truncated = 0;
  for (int i = 0; i < 4; ++i) {
    const auto& hop = record->hops[static_cast<std::size_t>(i)];
    // The hop still counts as responding -- probes are matched to the sole
    // in-flight probe -- but its ECN field is unobserved, so it reads as
    // neither intact nor bleached.
    EXPECT_TRUE(hop.responded) << "hop " << i;
    EXPECT_EQ(hop.responder,
              chain.net.node(chain.routers[static_cast<std::size_t>(i)]).address());
    if (hop.quote_truncated) {
      ++truncated;
      EXPECT_FALSE(hop.ecn_known) << "hop " << i;
      EXPECT_FALSE(hop.ecn_intact()) << "hop " << i;
    }
  }
  // Replies from routers 1..3 traverse the truncating link; router 0's own
  // reply may or may not, depending on where it originates.
  EXPECT_GE(truncated, 3);
}

TEST(Traceroute, SometimesStripObservedAcrossRepetitions) {
  Chain chain(3);
  chain.net.add_egress_policy(chain.routers[0], 1,
                              std::make_shared<netsim::EcnBleachPolicy>(0.5));
  Tracerouter tracer(*chain.host_a);
  int intact_at_hop2 = 0;
  int stripped_at_hop2 = 0;
  int done = 0;
  const int reps = 40;
  std::function<void(int)> run = [&](int remaining) {
    if (remaining == 0) return;
    tracer.trace(chain.host_b->address(), fast_options(), [&, remaining](const PathRecord& r) {
      ++done;
      if (r.hops.size() >= 2 && r.hops[1].responded) {
        (r.hops[1].ecn_intact() ? intact_at_hop2 : stripped_at_hop2)++;
      }
      run(remaining - 1);
    });
  };
  run(reps);
  chain.sim.run();
  EXPECT_EQ(done, reps);
  // A probabilistic bleacher shows both behaviours -- the paper's 125
  // "sometimes strip" hops.
  EXPECT_GT(intact_at_hop2, 0);
  EXPECT_GT(stripped_at_hop2, 0);
}

}  // namespace
}  // namespace ecnprobe::traceroute
