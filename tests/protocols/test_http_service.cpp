#include "ecnprobe/http/http_service.hpp"

#include <gtest/gtest.h>

#include "../tcp/tcp_fixture.hpp"

namespace ecnprobe::http {
namespace {

using tcp::testutil::TcpPair;

struct HttpFixture : ::testing::Test {
  TcpPair pair{true};
  HttpServerService service{*pair.server, HttpServerService::Config{}};
  HttpGetClient client{*pair.client};
};

TEST_F(HttpFixture, GetReturnsPoolRedirect) {
  std::optional<HttpGetResult> result;
  client.get(pair.server_host->address(), false,
             [&](const HttpGetResult& r) { result = r; });
  pair.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->connected);
  EXPECT_TRUE(result->got_response);
  EXPECT_EQ(result->status, 302);
  EXPECT_EQ(result->location, "http://www.pool.ntp.org/");
  EXPECT_FALSE(result->ecn_negotiated);  // not requested
  EXPECT_EQ(service.stats().requests_served, 1u);
}

TEST_F(HttpFixture, EcnRequestedAndNegotiated) {
  std::optional<HttpGetResult> result;
  client.get(pair.server_host->address(), true,
             [&](const HttpGetResult& r) { result = r; });
  pair.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->connected);
  EXPECT_TRUE(result->ecn_negotiated);
  EXPECT_TRUE(result->got_response);
  EXPECT_EQ(service.stats().ecn_connections, 1u);
}

TEST(Http, EcnRefusedByUnwillingServer) {
  TcpPair pair(false);
  HttpServerService service(*pair.server, HttpServerService::Config{});
  HttpGetClient client(*pair.client);
  std::optional<HttpGetResult> result;
  client.get(pair.server_host->address(), true,
             [&](const HttpGetResult& r) { result = r; });
  pair.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->connected);
  EXPECT_FALSE(result->ecn_negotiated);  // server answered with plain SYN-ACK
  EXPECT_TRUE(result->got_response);     // but HTTP still works
}

TEST(Http, NoListenerMeansConnectionRefused) {
  TcpPair pair(true);
  HttpGetClient client(*pair.client);  // no HttpServerService on the server
  std::optional<HttpGetResult> result;
  client.get(pair.server_host->address(), false,
             [&](const HttpGetResult& r) { result = r; });
  pair.sim.run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->connected);
  EXPECT_FALSE(result->got_response);
}

TEST(Http, DisabledServiceRefusesThenRecovers) {
  TcpPair pair(true);
  HttpServerService service(*pair.server, HttpServerService::Config{});
  HttpGetClient client(*pair.client);
  service.set_enabled(false);
  std::optional<HttpGetResult> down;
  client.get(pair.server_host->address(), false,
             [&](const HttpGetResult& r) { down = r; });
  pair.sim.run();
  ASSERT_TRUE(down);
  EXPECT_FALSE(down->connected);

  service.set_enabled(true);
  std::optional<HttpGetResult> up;
  client.get(pair.server_host->address(), false,
             [&](const HttpGetResult& r) { up = r; });
  pair.sim.run();
  ASSERT_TRUE(up);
  EXPECT_TRUE(up->got_response);
}

TEST(Http, CustomStatusAndBody) {
  TcpPair pair(true);
  HttpServerService::Config config;
  config.status = 200;
  config.reason = "OK";
  config.body = "ntp pool member";
  HttpServerService service(*pair.server, config);
  HttpGetClient client(*pair.client);
  std::optional<HttpGetResult> result;
  client.get(pair.server_host->address(), false,
             [&](const HttpGetResult& r) { result = r; });
  pair.sim.run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->status, 200);
  EXPECT_TRUE(result->location.empty());
}

TEST(Http, DeadlineAbortsSlowServer) {
  TcpPair pair(true);
  // No HTTP service; instead a listener that accepts and never responds.
  pair.server->listen(80, [](std::shared_ptr<tcp::TcpConnection> conn) {
    conn->set_receive_handler([](std::span<const std::uint8_t>) {});
  });
  HttpGetClient client(*pair.client);
  std::optional<HttpGetResult> result;
  client.get(pair.server_host->address(), false,
             [&](const HttpGetResult& r) { result = r; }, wire::kHttpPort,
             util::SimDuration::seconds(2));
  pair.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->connected);
  EXPECT_FALSE(result->got_response);
  EXPECT_LE(pair.sim.now().to_seconds(), 10.0);  // deadline cut it short
}

TEST(Http, SurvivesLossyPath) {
  netsim::LinkParams link;
  link.loss_rate = 0.15;
  link.delay = util::SimDuration::millis(10);
  TcpPair pair(true, link);
  HttpServerService service(*pair.server, HttpServerService::Config{});
  HttpGetClient client(*pair.client);
  int got = 0;
  int done = 0;
  const int n = 20;
  std::function<void(int)> next = [&](int remaining) {
    if (remaining == 0) return;
    client.get(pair.server_host->address(), false,
               [&, remaining](const HttpGetResult& r) {
                 ++done;
                 got += r.got_response ? 1 : 0;
                 next(remaining - 1);
               });
  };
  next(n);
  pair.sim.run();
  EXPECT_EQ(done, n);
  EXPECT_GE(got, n - 3);  // TCP retransmits conceal the loss (Section 4.3)
}

}  // namespace
}  // namespace ecnprobe::http
