#include "ecnprobe/dns/pool_dns.hpp"

#include <gtest/gtest.h>

#include "../netsim/mini_net.hpp"

namespace ecnprobe::dns {
namespace {

using netsim::testutil::Chain;

TEST(PoolZones, RoundRobinRotates) {
  PoolZones zones(2);
  for (int i = 1; i <= 5; ++i) {
    zones.add_member("pool.ntp.org", wire::Ipv4Address(11, 0, 0, static_cast<std::uint8_t>(i)));
  }
  const auto first = zones.next_answers("pool.ntp.org");
  const auto second = zones.next_answers("pool.ntp.org");
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_NE(first[0], second[0]);  // cursor advanced
  // Five queries of two answers cycle through all five members.
  std::set<std::uint32_t> seen;
  for (const auto& a : first) seen.insert(a.value());
  for (const auto& a : second) seen.insert(a.value());
  for (int i = 0; i < 3; ++i) {
    for (const auto& a : zones.next_answers("pool.ntp.org")) seen.insert(a.value());
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(PoolZones, CaseInsensitiveZoneNames) {
  PoolZones zones;
  zones.add_member("Pool.NTP.org", wire::Ipv4Address(1, 2, 3, 4));
  EXPECT_TRUE(zones.has_zone("pool.ntp.org"));
  EXPECT_EQ(zones.member_count("POOL.ntp.ORG"), 1u);
}

TEST(PoolZones, RemoveMemberShrinksZone) {
  PoolZones zones;
  zones.add_member("uk.pool.ntp.org", wire::Ipv4Address(1, 1, 1, 1));
  zones.add_member("uk.pool.ntp.org", wire::Ipv4Address(2, 2, 2, 2));
  zones.remove_member("uk.pool.ntp.org", wire::Ipv4Address(1, 1, 1, 1));
  EXPECT_EQ(zones.member_count("uk.pool.ntp.org"), 1u);
  const auto answers = zones.next_answers("uk.pool.ntp.org");
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], wire::Ipv4Address(2, 2, 2, 2));
}

struct DnsFixture : ::testing::Test {
  Chain chain{1};
  std::shared_ptr<PoolZones> zones = std::make_shared<PoolZones>(4);
  void SetUp() override {
    for (int i = 1; i <= 10; ++i) {
      zones->add_member("pool.ntp.org",
                        wire::Ipv4Address(11, 0, 1, static_cast<std::uint8_t>(i)));
    }
    zones->add_member("uk.pool.ntp.org", wire::Ipv4Address(11, 0, 2, 1));
    service = std::make_unique<DnsServerService>(*chain.host_b, zones);
  }
  std::unique_ptr<DnsServerService> service;
};

TEST_F(DnsFixture, ResolvesKnownZone) {
  DnsClient client(*chain.host_a, chain.host_b->address());
  std::optional<DnsQueryResult> result;
  client.query("pool.ntp.org", [&](const DnsQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->addresses.size(), 4u);
  EXPECT_EQ(service->stats().queries, 1u);
}

TEST_F(DnsFixture, UnknownZoneGivesNxdomain) {
  DnsClient client(*chain.host_a, chain.host_b->address());
  std::optional<DnsQueryResult> result;
  client.query("nosuch.example", [&](const DnsQueryResult& r) { result = r; });
  chain.sim.run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->rcode, wire::DnsRcode::NxDomain);
  EXPECT_EQ(service->stats().nxdomain, 1u);
}

TEST_F(DnsFixture, ClientRetriesThroughLoss) {
  // Make both directions of the path lossy (loss applies at the sender's
  // interface of each link).
  chain.net.interface(chain.host_a_id, 0).link.loss_rate = 0.4;
  chain.net.interface(chain.routers[0], 0).link.loss_rate = 0.4;
  DnsClient client(*chain.host_a, chain.host_b->address());
  int successes = 0;
  int done = 0;
  const int n = 30;
  std::function<void(int)> next = [&](int remaining) {
    if (remaining == 0) return;
    client.query("pool.ntp.org",
                 [&, remaining](const DnsQueryResult& r) {
                   ++done;
                   successes += r.success ? 1 : 0;
                   next(remaining - 1);
                 },
                 util::SimDuration::millis(500), 5);
  };
  next(n);
  chain.sim.run();
  EXPECT_EQ(done, n);
  EXPECT_GT(successes, n / 2);  // retries recover most queries
}

TEST_F(DnsFixture, DiscoveryCrawlerEnumeratesPool) {
  DiscoveryCrawler::Params params;
  params.rounds = 4;
  params.round_interval = util::SimDuration::seconds(30);
  DiscoveryCrawler crawler(*chain.host_a, chain.host_b->address(),
                           {"pool.ntp.org", "uk.pool.ntp.org"}, params);
  std::optional<std::set<std::uint32_t>> found;
  crawler.start([&](const std::set<std::uint32_t>& addrs) { found = addrs; });
  chain.sim.run();
  ASSERT_TRUE(found);
  // 4 rounds x 4 answers round-robin over 10 members finds all 10 + the UK one.
  EXPECT_EQ(found->size(), 11u);
  EXPECT_EQ(crawler.rounds_completed(), 4);
}

TEST_F(DnsFixture, CrawlerPacesQueries) {
  DiscoveryCrawler::Params params;
  params.rounds = 2;
  params.round_interval = util::SimDuration::minutes(10);
  params.inter_query_gap = util::SimDuration::seconds(1);
  DiscoveryCrawler crawler(*chain.host_a, chain.host_b->address(),
                           {"pool.ntp.org", "uk.pool.ntp.org"}, params);
  bool done = false;
  crawler.start([&](const std::set<std::uint32_t>&) { done = true; });
  chain.sim.run();
  EXPECT_TRUE(done);
  // Two rounds separated by the 10-minute interval.
  EXPECT_GE(chain.sim.now().to_seconds(), 600.0);
}

}  // namespace
}  // namespace ecnprobe::dns
