#include "ecnprobe/geo/geo.hpp"

#include <gtest/gtest.h>

namespace ecnprobe::geo {
namespace {

TEST(GeoDatabase, LongestPrefixLookup) {
  GeoDatabase db;
  db.add(wire::Ipv4Address(11, 0, 0, 0), 8, {Region::Europe, "de", 51.0, 10.0});
  db.add(wire::Ipv4Address(11, 5, 0, 0), 16, {Region::Asia, "jp", 36.0, 138.0});

  const auto broad = db.lookup(wire::Ipv4Address(11, 1, 2, 3));
  ASSERT_TRUE(broad);
  EXPECT_EQ(broad->region, Region::Europe);
  EXPECT_EQ(broad->country, "de");

  const auto narrow = db.lookup(wire::Ipv4Address(11, 5, 6, 7));
  ASSERT_TRUE(narrow);
  EXPECT_EQ(narrow->region, Region::Asia);

  EXPECT_FALSE(db.lookup(wire::Ipv4Address(12, 0, 0, 1)));
}

TEST(GeoDatabase, HostRouteBeatsEverything) {
  GeoDatabase db;
  db.add(wire::Ipv4Address(11, 0, 0, 0), 8, {Region::Europe, "de", 0, 0});
  db.add(wire::Ipv4Address(11, 1, 1, 1), 32, {Region::Africa, "za", -30, 22});
  const auto hit = db.lookup(wire::Ipv4Address(11, 1, 1, 1));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->region, Region::Africa);
}

TEST(CountryTable, WeightsSumToOnePerRegion) {
  for (const auto region : {Region::Europe, Region::NorthAmerica, Region::Asia,
                            Region::Australia, Region::SouthAmerica, Region::Africa}) {
    double total = 0.0;
    for (const auto* c : countries_in(region)) total += c->weight;
    EXPECT_NEAR(total, 1.0, 0.02) << to_string(region);
  }
}

TEST(CountryTable, AllRegionsCovered) {
  for (const auto region : {Region::Europe, Region::NorthAmerica, Region::Asia,
                            Region::Australia, Region::SouthAmerica, Region::Africa}) {
    EXPECT_FALSE(countries_in(region).empty());
  }
  EXPECT_TRUE(countries_in(Region::Unknown).empty());
}

TEST(SampleLocation, StaysNearCentroidAndValid) {
  util::Rng rng(9);
  for (const auto& country : country_table()) {
    for (int i = 0; i < 20; ++i) {
      const auto [lat, lon] = sample_location(country, rng);
      EXPECT_GE(lat, -85.0);
      EXPECT_LE(lat, 85.0);
      EXPECT_GE(lon, -180.0);
      EXPECT_LE(lon, 180.0);
      EXPECT_LE(std::abs(lat - country.latitude), country.lat_spread + 1e-9);
    }
  }
}

TEST(Region, NamesMatchPaperTable1) {
  EXPECT_EQ(to_string(Region::Australia), "Australia");
  EXPECT_EQ(to_string(Region::NorthAmerica), "North America");
  EXPECT_EQ(to_string(Region::Unknown), "Unknown");
  EXPECT_EQ(all_regions().size(), kRegionCount);
}

}  // namespace
}  // namespace ecnprobe::geo
