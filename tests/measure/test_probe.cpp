// Integration tests of the four-way server probe against a small calibrated
// world.
#include "ecnprobe/measure/probe.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::measure {
namespace {

scenario::WorldParams clean_params(std::uint64_t seed = 5) {
  auto p = scenario::WorldParams::small(seed);
  p.server_count = 12;
  p.offline_prob = 0.0;
  p.rate_limited_fraction = 0.0;
  p.greylist_flaky_prob = 0.0;
  p.greylist_dead_prob = 0.0;
  p.ect_udp_firewalled_servers = 0;
  p.ect_required_servers = 0;
  p.ec2_sensitive_servers = 0;
  p.bleach_inter_as_links = 0;
  p.bleach_intra_as_links = 0;
  p.web_server_fraction = 1.0;
  p.web_ecn_fraction = 1.0;
  return p;
}

TEST(ProbeServer, HealthyServerPassesAllFourTests) {
  scenario::World world(clean_params());
  auto& vantage = world.vantage("UGla wired");
  std::optional<ServerResult> result;
  probe_server(vantage, world.servers()[0].address, ProbeOptions{},
               [&](const ServerResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->udp_plain.reachable);
  EXPECT_TRUE(result->udp_ect0.reachable);
  EXPECT_TRUE(result->tcp_plain.connected);
  EXPECT_TRUE(result->tcp_plain.got_response);
  EXPECT_EQ(result->tcp_plain.http_status, 302);
  EXPECT_FALSE(result->tcp_plain.ecn_negotiated);  // did not ask
  EXPECT_TRUE(result->tcp_ecn.connected);
  EXPECT_TRUE(result->tcp_ecn.ecn_negotiated);
}

TEST(ProbeServer, FirewalledServerFailsOnlyEctUdp) {
  auto params = clean_params(6);
  params.ect_udp_firewalled_servers = 1;
  scenario::World world(params);
  const auto firewalled = world.ground_truth_firewalled();
  ASSERT_EQ(firewalled.size(), 1u);
  auto& vantage = world.vantage("EC2 Fra");
  std::optional<ServerResult> result;
  probe_server(vantage, firewalled[0], ProbeOptions{},
               [&](const ServerResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->udp_plain.reachable);
  EXPECT_FALSE(result->udp_ect0.reachable);
  EXPECT_EQ(result->udp_ect0.attempts, 5);
  // Section 4.4: the same server still negotiates ECN over TCP.
  if (result->tcp_plain.got_response) {
    EXPECT_TRUE(result->tcp_ecn.ecn_negotiated);
  }
}

TEST(ProbeServer, NonEcnWebServerConnectsWithoutNegotiating) {
  auto params = clean_params(7);
  params.web_ecn_fraction = 0.0;
  scenario::World world(params);
  auto& vantage = world.vantage("Perkins home");
  std::optional<ServerResult> result;
  probe_server(vantage, world.servers()[1].address, ProbeOptions{},
               [&](const ServerResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->tcp_ecn.connected);
  EXPECT_FALSE(result->tcp_ecn.ecn_negotiated);
  EXPECT_TRUE(result->tcp_ecn.got_response);
}

TEST(ProbeServer, OfflineServerFailsUdpButRstsTcp) {
  auto params = clean_params(8);
  scenario::World world(params);
  world.server(2).ntp_service->set_online(false);
  world.server(2).web->set_enabled(false);
  auto& vantage = world.vantage("EC2 Tok");
  std::optional<ServerResult> result;
  probe_server(vantage, world.servers()[2].address, ProbeOptions{},
               [&](const ServerResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->udp_plain.reachable);
  EXPECT_FALSE(result->udp_ect0.reachable);
  EXPECT_FALSE(result->tcp_plain.got_response);
}

TEST(TraceRunner, ProducesOneResultPerServer) {
  scenario::World world(clean_params(9));
  auto& vantage = world.vantage("UGla wired");
  TraceRunner runner(vantage, world.server_addresses(), ProbeOptions{});
  std::optional<Trace> trace;
  runner.run(1, 42, [&](Trace t) { trace = std::move(t); });
  world.sim().run();
  ASSERT_TRUE(trace);
  EXPECT_EQ(trace->vantage, "UGla wired");
  EXPECT_EQ(trace->batch, 1);
  EXPECT_EQ(trace->index, 42);
  EXPECT_EQ(trace->servers.size(), world.servers().size());
  // Clean world: everything reachable.
  EXPECT_EQ(trace->reachable_udp_plain(), static_cast<int>(world.servers().size()));
  EXPECT_EQ(trace->pct_ect_given_plain(), 100.0);
}

TEST(TracerouteRunner, CollectsRepeatedObservations) {
  scenario::World world(clean_params(10));
  auto& vantage = world.vantage("EC2 Vir");
  traceroute::TracerouteOptions options;
  options.timeout = util::SimDuration::millis(300);
  TracerouteRunner runner(vantage, world.server_addresses(), options, 2);
  std::optional<std::vector<TracerouteObservation>> observations;
  runner.run([&](std::vector<TracerouteObservation> obs) { observations = std::move(obs); });
  world.sim().run();
  ASSERT_TRUE(observations);
  EXPECT_EQ(observations->size(), world.servers().size() * 2);
  EXPECT_EQ((*observations)[0].vantage, "EC2 Vir");
  EXPECT_EQ((*observations)[0].repetition, 0);
  EXPECT_EQ((*observations)[1].repetition, 1);
}

}  // namespace
}  // namespace ecnprobe::measure
