#include "ecnprobe/measure/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace ecnprobe::measure {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

JournalMeta sample_meta() {
  JournalMeta meta;
  meta.plan = "abc123";
  meta.faults = "none#0011223344556677";
  meta.seed = 42;
  meta.total_traces = 10;
  meta.server_count = 5;
  return meta;
}

Trace sample_trace(int index) {
  Trace trace;
  trace.vantage = "EC2 Tok yo";  // space survives escaping
  trace.batch = 2;
  trace.index = index;
  ServerResult server;
  server.server = wire::Ipv4Address(193, 0, 0, 7);
  server.udp_plain = {true, 2, 17.25};
  server.udp_ect0 = {false, 5, 0.1 + 0.2};  // deliberately non-representable sum
  server.tcp_plain = {true, false, true, 200};
  server.tcp_ecn = {true, true, true, 200};
  trace.servers.push_back(server);
  return trace;
}

obs::ObsSnapshot sample_delta() {
  obs::ObsSnapshot delta;
  delta.ledger.drops[{"link", "random-loss"}] = 3;
  return delta;
}

TEST(CampaignJournal, RoundTripsTracesBitForBit) {
  TempFile file("journal_roundtrip");
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
    ASSERT_TRUE(journal.append(sample_trace(0), sample_delta()));
    ASSERT_TRUE(journal.append(sample_trace(3), sample_delta()));
  }
  CampaignJournal reopened;
  ASSERT_TRUE(reopened.open(file.path, sample_meta(), &error)) << error;
  ASSERT_EQ(reopened.entries().size(), 2u);
  ASSERT_TRUE(reopened.has(0));
  ASSERT_TRUE(reopened.has(3));
  const auto& entry = reopened.entries().at(3);
  const auto original = sample_trace(3);
  EXPECT_EQ(entry.trace.vantage, original.vantage);
  EXPECT_EQ(entry.trace.batch, original.batch);
  ASSERT_EQ(entry.trace.servers.size(), 1u);
  // RTTs are stored as raw IEEE bits: exact equality, not approximate.
  EXPECT_EQ(entry.trace.servers[0].udp_plain.rtt_ms,
            original.servers[0].udp_plain.rtt_ms);
  EXPECT_EQ(entry.trace.servers[0].udp_ect0.rtt_ms,
            original.servers[0].udp_ect0.rtt_ms);
  EXPECT_EQ(entry.delta.ledger.total_drops(), 3u);
}

TEST(CampaignJournal, AppendIsIdempotentForReplayedTraces) {
  TempFile file("journal_idempotent");
  std::string error;
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
  ASSERT_TRUE(journal.append(sample_trace(1), sample_delta()));
  ASSERT_TRUE(journal.append(sample_trace(1), sample_delta()));  // replay path
  journal = CampaignJournal();

  std::ifstream in(file.path);
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == 'T') ++records;
  }
  EXPECT_EQ(records, 1);
}

TEST(CampaignJournal, FlippedPayloadByteDetected) {
  TempFile file("journal_bitflip");
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
    ASSERT_TRUE(journal.append(sample_trace(4), sample_delta()));
  }
  // Flip one byte inside the record payload (past "T <idx> <checksum> ").
  std::string contents;
  {
    std::ifstream in(file.path);
    std::string line;
    while (std::getline(in, line)) contents += line + "\n";
  }
  const auto t_pos = contents.find("\nT ");
  ASSERT_NE(t_pos, std::string::npos);
  contents[contents.size() - 3] ^= 0x01;
  {
    std::ofstream out(file.path, std::ios::trunc);
    out << contents;
  }
  CampaignJournal corrupted;
  EXPECT_FALSE(corrupted.open(file.path, sample_meta(), &error));
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("trace 4"), std::string::npos) << error;
}

TEST(CampaignJournal, FlippedChecksumByteDetected) {
  TempFile file("journal_checksumflip");
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
    ASSERT_TRUE(journal.append(sample_trace(2), sample_delta()));
  }
  std::string contents;
  {
    std::ifstream in(file.path);
    std::string line;
    while (std::getline(in, line)) contents += line + "\n";
  }
  // The checksum token starts after "T 2 ".
  const auto t_pos = contents.find("\nT 2 ");
  ASSERT_NE(t_pos, std::string::npos);
  auto& digit = contents[t_pos + 5];
  digit = digit == '0' ? '1' : '0';
  {
    std::ofstream out(file.path, std::ios::trunc);
    out << contents;
  }
  CampaignJournal corrupted;
  EXPECT_FALSE(corrupted.open(file.path, sample_meta(), &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(CampaignJournal, RefusesJournalOfDifferentCampaign) {
  TempFile file("journal_mismatch");
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
  }
  for (auto mutate : {+[](JournalMeta* m) { m->seed = 43; },
                      +[](JournalMeta* m) { m->plan = "zzz"; },
                      +[](JournalMeta* m) { m->faults = "wan-chaos#0"; },
                      +[](JournalMeta* m) { m->total_traces = 11; },
                      +[](JournalMeta* m) { m->server_count = 6; }}) {
    auto meta = sample_meta();
    mutate(&meta);
    CampaignJournal other;
    EXPECT_FALSE(other.open(file.path, meta, &error));
    EXPECT_NE(error.find("different campaign"), std::string::npos) << error;
  }
  // The unmutated meta still opens.
  CampaignJournal same;
  EXPECT_TRUE(same.open(file.path, sample_meta(), &error)) << error;
}

TEST(CampaignJournal, EmptyFileTreatedAsFresh) {
  TempFile file("journal_empty");
  { std::ofstream touch(file.path); }
  std::string error;
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
  EXPECT_TRUE(journal.entries().empty());
  EXPECT_TRUE(journal.append(sample_trace(0), sample_delta()));
}

TEST(CampaignJournal, RotatePreservesEveryEntryAndStaysAppendable) {
  TempFile file("journal_rotate");
  std::string error;
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
  ASSERT_TRUE(journal.append(sample_trace(0), sample_delta()));
  ASSERT_TRUE(journal.append(sample_trace(5), sample_delta()));
  ASSERT_TRUE(journal.rotate(&error)) << error;
  // The rotation's rename is the commit point: no temp file survives it.
  EXPECT_FALSE(std::ifstream(file.path + ".tmp").is_open());
  // Still appendable after the reopen.
  ASSERT_TRUE(journal.append(sample_trace(7), sample_delta()));

  CampaignJournal reopened;
  ASSERT_TRUE(reopened.open(file.path, sample_meta(), &error)) << error;
  EXPECT_EQ(reopened.entries().size(), 3u);
  EXPECT_TRUE(reopened.has(0));
  EXPECT_TRUE(reopened.has(5));
  EXPECT_TRUE(reopened.has(7));
  EXPECT_EQ(reopened.entries().at(5).trace.servers[0].udp_plain.rtt_ms,
            sample_trace(5).servers[0].udp_plain.rtt_ms);
}

TEST(CampaignJournal, RotatedJournalIsByteIdenticalToAFreshWrite) {
  // Rotation rewrites header + entries in index order; a journal written
  // fresh in that order must produce the same bytes -- rotation cannot
  // smuggle in any nondeterminism.
  TempFile rotated("journal_rotate_a");
  TempFile fresh("journal_rotate_b");
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(rotated.path, sample_meta(), &error)) << error;
    ASSERT_TRUE(journal.append(sample_trace(8), sample_delta()));  // out of order
    ASSERT_TRUE(journal.append(sample_trace(2), sample_delta()));
    ASSERT_TRUE(journal.rotate(&error)) << error;
  }
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(fresh.path, sample_meta(), &error)) << error;
    ASSERT_TRUE(journal.append(sample_trace(2), sample_delta()));
    ASSERT_TRUE(journal.append(sample_trace(8), sample_delta()));
  }
  std::ifstream a(rotated.path, std::ios::binary), b(fresh.path, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(CampaignJournal, KillDuringRotationNeverTearsTheJournal) {
  // Simulate a crash at every interesting point of rotate(): before the
  // rename the temp file exists in an arbitrary (possibly torn) state and
  // the real journal is complete; after the rename the new journal is
  // complete. In both cases --resume must see a whole journal.
  TempFile file("journal_kill_rotate");
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, sample_meta(), &error)) << error;
    ASSERT_TRUE(journal.append(sample_trace(1), sample_delta()));
    ASSERT_TRUE(journal.append(sample_trace(6), sample_delta()));
  }

  // Crash "mid-write of the temp": a torn half-record next to the journal.
  {
    std::ofstream torn(file.path + ".tmp", std::ios::trunc);
    torn << "ecnprobe-journal v1 plan=abc123 fau";  // cut mid-header
  }
  {
    CampaignJournal resumed;
    ASSERT_TRUE(resumed.open(file.path, sample_meta(), &error)) << error;
    EXPECT_EQ(resumed.entries().size(), 2u);  // the real journal, untouched
  }
  // open() swept the garbage temp so a later rotation starts clean.
  EXPECT_FALSE(std::ifstream(file.path + ".tmp").is_open());

  // Crash "a byte into a temp record line": same story.
  {
    std::ofstream torn(file.path + ".tmp", std::ios::trunc);
    torn << "ecnprobe-journal v1 plan=abc123 faults=none#0011223344556677 "
            "seed=42 traces=10 servers=5\nT 1 deadbeef";
  }
  {
    CampaignJournal resumed;
    ASSERT_TRUE(resumed.open(file.path, sample_meta(), &error)) << error;
    EXPECT_EQ(resumed.entries().size(), 2u);
    // And a rotation after the recovery works end to end.
    ASSERT_TRUE(resumed.rotate(&error)) << error;
  }
  CampaignJournal final_check;
  ASSERT_TRUE(final_check.open(file.path, sample_meta(), &error)) << error;
  EXPECT_EQ(final_check.entries().size(), 2u);
  EXPECT_TRUE(final_check.has(1));
  EXPECT_TRUE(final_check.has(6));
}

TEST(PlanFingerprint, TracksScheduleShape) {
  CampaignPlan a;
  a.entries.push_back({"UGla wired", 1, 3});
  a.entries.push_back({"EC2 Tok", 2, 2});
  CampaignPlan b = a;
  CampaignPlan c = a;
  c.entries[1].count = 3;
  EXPECT_EQ(plan_fingerprint(a), plan_fingerprint(b));
  EXPECT_NE(plan_fingerprint(a), plan_fingerprint(c));
}

}  // namespace
}  // namespace ecnprobe::measure
