// Journal-codec robustness fuzzing. A journal carrying every record type
// the codec can emit -- T/L/Q/F/E telemetry records and Z/W/X/Y
// time-series records inside the per-trace payloads -- is subjected to
// random truncation, random single-bit flips, and random garbage
// appends. The contract under test: open() either refuses cleanly (false
// + a human-readable reason) or recovers a valid prefix whose entries
// are bit-identical to what was written. It must never crash and never
// partially apply a damaged record.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ecnprobe/measure/journal.hpp"

namespace ecnprobe::measure {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

/// Deterministic 64-bit LCG (same multiplier as MMIX): the corpus is
/// reproducible run to run, no time or global RNG involved.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  }
  std::size_t below(std::size_t bound) {
    return static_cast<std::size_t>(next() % bound);
  }
};

JournalMeta fuzz_meta() {
  JournalMeta meta;
  meta.plan = "fuzzplan";
  meta.faults = "none#0011223344556677";
  meta.seed = 7;
  meta.total_traces = 8;
  meta.server_count = 3;
  return meta;
}

Trace fuzz_trace(int index) {
  Trace trace;
  trace.vantage = "EC2 Tok yo";
  trace.batch = 1 + index % 2;
  trace.index = index;
  for (int s = 0; s < 2; ++s) {
    ServerResult server;
    server.server = wire::Ipv4Address(10, 0, static_cast<std::uint8_t>(index),
                                      static_cast<std::uint8_t>(s));
    server.udp_plain = {true, 1 + s, 17.25 + index};
    server.udp_ect0 = {s == 0, 3, 0.1 + 0.2};  // non-representable sum
    server.tcp_plain = {true, false, true, 200};
    server.tcp_ecn = {true, true, s == 1, 302};
    trace.servers.push_back(server);
  }
  return trace;
}

/// A delta exercising every codec record type: D/R ledger lines, T
/// (keyed counts), L (RTT log-buckets), Q (RTT moments), F (fold
/// accounting), E (exemplars), and the Z/W/X/Y time-series block.
obs::ObsSnapshot fuzz_delta(int index) {
  obs::ObsSnapshot delta;
  delta.ledger.drops[{"link", "random-loss"}] = static_cast<std::uint64_t>(2 + index);
  delta.ledger.rewrites[{"ip", "ecn-bleach"}] = 1;
  delta.telemetry.counts["cause:ip/ttl-expired"] = static_cast<std::uint64_t>(3 + index);
  delta.telemetry.counts["hop:10.0.0.1/ttl-expired"] = 2;
  delta.telemetry.rtt_buckets[5] = 2;
  delta.telemetry.rtt_buckets[9] = 1;
  delta.telemetry.rtt_count = 3;
  delta.telemetry.rtt_sum_nanos = 12345678 + index;
  delta.telemetry.folded_records = 2;
  delta.telemetry.sampled_exact = static_cast<std::uint64_t>(index % 2);
  obs::TelemetryExemplar exemplar;
  exemplar.trace = index;
  exemplar.layer = "udp";
  exemplar.cause = "aqm-mark";
  exemplar.node = "r one";  // space survives escaping
  delta.telemetry.exemplars.push_back(exemplar);
  delta.timeseries.window_nanos = 1000000000;
  delta.timeseries.rtt_subbits = 2;
  auto& w0 = delta.timeseries.windows[0];
  w0.counts["probe:udp/echo"] = 4;
  w0.rtt_buckets[12] = 3;
  w0.rtt_count = 3;
  w0.rtt_sum_nanos = 999 + index;
  auto& w2 = delta.timeseries.windows[2];
  w2.counts["drop:ip/ttl-expired"] = 1;
  return delta;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_all(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr int kEntries = 4;

std::string build_rich_journal(const std::string& path) {
  CampaignJournal journal;
  std::string error;
  EXPECT_TRUE(journal.open(path, fuzz_meta(), &error)) << error;
  for (int i = 0; i < kEntries; ++i) {
    EXPECT_TRUE(journal.append(fuzz_trace(2 * i), fuzz_delta(2 * i)));
  }
  return read_all(path);
}

/// Opens a (possibly corrupted) journal and enforces the contract: clean
/// refusal with a reason, or a recovered set whose every entry is
/// bit-identical to the original write. Returns true when open succeeded.
bool open_and_check(const std::string& path) {
  CampaignJournal journal;
  std::string error;
  if (!journal.open(path, fuzz_meta(), &error)) {
    EXPECT_FALSE(error.empty()) << "refusal must carry a reason";
    return false;
  }
  EXPECT_LE(journal.entries().size(), static_cast<std::size_t>(kEntries));
  for (const auto& [index, entry] : journal.entries()) {
    const Trace original = fuzz_trace(index);
    EXPECT_EQ(entry.trace.index, index);
    EXPECT_EQ(entry.trace.vantage, original.vantage);
    EXPECT_EQ(entry.trace.batch, original.batch);
    EXPECT_EQ(entry.trace.servers.size(), original.servers.size());
    const std::size_t servers =
        std::min(entry.trace.servers.size(), original.servers.size());
    for (std::size_t s = 0; s < servers; ++s) {
      EXPECT_EQ(entry.trace.servers[s].server.value(),
                original.servers[s].server.value());
      // Raw IEEE bits: exact equality, not approximate.
      EXPECT_EQ(entry.trace.servers[s].udp_plain.rtt_ms,
                original.servers[s].udp_plain.rtt_ms);
      EXPECT_EQ(entry.trace.servers[s].udp_ect0.rtt_ms,
                original.servers[s].udp_ect0.rtt_ms);
    }
    const obs::ObsSnapshot expected = fuzz_delta(index);
    EXPECT_EQ(entry.delta.ledger.drops, expected.ledger.drops);
    EXPECT_EQ(entry.delta.ledger.rewrites, expected.ledger.rewrites);
    EXPECT_EQ(entry.delta.telemetry, expected.telemetry);
    EXPECT_EQ(entry.delta.timeseries, expected.timeseries);
  }
  return true;
}

TEST(JournalFuzz, EveryTruncationRefusesCleanlyOrRecoversAValidPrefix) {
  TempFile file("journal_fuzz_trunc");
  const std::string pristine = build_rich_journal(file.path);
  ASSERT_GT(pristine.size(), 100u);

  int clean_opens = 0;
  for (std::size_t cut = 0; cut <= pristine.size(); ++cut) {
    write_all(file.path, pristine.substr(0, cut));
    if (open_and_check(file.path)) ++clean_opens;
  }
  // Exactly the line-boundary cuts succeed: the empty file (fresh
  // journal), each cut right after a newline, and each cut right before
  // one (getline tolerates a missing final newline on a complete line).
  // With kEntries+1 lines that is 1 + 2*(kEntries+1) clean outcomes;
  // every mid-line cut must have refused.
  EXPECT_EQ(clean_opens, 2 * kEntries + 3);
}

TEST(JournalFuzz, RandomBitFlipsNeverReplayDamagedRecords) {
  TempFile file("journal_fuzz_flip");
  const std::string pristine = build_rich_journal(file.path);
  const std::size_t header_end = pristine.find('\n');
  ASSERT_NE(header_end, std::string::npos);

  Lcg rng{0x5eed5eed};
  int accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string corrupted = pristine;
    const std::size_t pos = rng.below(corrupted.size());
    const char bit = static_cast<char>(1 << rng.below(8));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ bit);
    write_all(file.path, corrupted);
    // No byte in this format is semantically inert: the header is
    // compared verbatim, every payload byte is under the checksum, the
    // checksum and index tokens are cross-checked against the payload,
    // and a flipped separator mis-tokenizes the line. Any accepted flip
    // is a detection hole.
    if (open_and_check(file.path)) ++accepted;
  }
  EXPECT_EQ(accepted, 0) << "some single-bit corruption was silently accepted";
}

TEST(JournalFuzz, RandomGarbageTailsAreRefused) {
  TempFile file("journal_fuzz_tail");
  const std::string pristine = build_rich_journal(file.path);

  Lcg rng{0xfeedface};
  for (int round = 0; round < 200; ++round) {
    std::string corrupted = pristine;
    const std::size_t len = 1 + rng.below(64);
    for (std::size_t i = 0; i < len; ++i) {
      char byte = static_cast<char>(rng.below(256));
      // Keep the garbage on one non-empty line: a tail of pure newlines
      // would be (correctly) skipped as blank lines, testing nothing.
      if (byte == '\n') byte = 'x';
      corrupted.push_back(byte);
    }
    corrupted.push_back('\n');
    write_all(file.path, corrupted);
    CampaignJournal journal;
    std::string error;
    // The undamaged prefix would be recoverable, but the trailing garbage
    // line must force a refusal -- never "load what parsed and ignore the
    // rest", which would quietly re-run traces that already ran.
    EXPECT_FALSE(journal.open(file.path, fuzz_meta(), &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(JournalFuzz, TruncatedJournalResumesAppendably) {
  // A valid-prefix recovery is not just readable -- it stays a working
  // journal: the missing traces re-append and the result reopens whole.
  TempFile file("journal_fuzz_resume");
  const std::string pristine = build_rich_journal(file.path);
  // Cut after the header + first two records (line boundary).
  std::size_t cut = 0;
  for (int newlines = 0; newlines < 3; ++cut) {
    if (pristine[cut] == '\n') ++newlines;
  }
  write_all(file.path, pristine.substr(0, cut));

  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(file.path, fuzz_meta(), &error)) << error;
  ASSERT_EQ(journal.entries().size(), 2u);
  for (int i = 0; i < kEntries; ++i) {
    ASSERT_TRUE(journal.append(fuzz_trace(2 * i), fuzz_delta(2 * i)));
  }
  EXPECT_EQ(read_all(file.path), pristine);
}

}  // namespace
}  // namespace ecnprobe::measure
