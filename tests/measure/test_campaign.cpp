#include "ecnprobe/measure/campaign.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::measure {
namespace {

TEST(CampaignPlan, PaperLayoutTotals210) {
  const auto plan = CampaignPlan::paper_layout();
  EXPECT_EQ(plan.total_traces(), 210);
  // 4 home/campus vantages appear in both batches; 9 EC2 in batch 2 only.
  int batch1 = 0;
  int batch2 = 0;
  for (const auto& entry : plan.entries) {
    (entry.batch == 1 ? batch1 : batch2) += entry.count;
  }
  EXPECT_EQ(batch1, 36);
  EXPECT_EQ(batch2, 174);
}

TEST(CampaignPlan, VantageNamesMatchFigureOrder) {
  const auto& names = paper_vantage_names();
  ASSERT_EQ(names.size(), 13u);
  EXPECT_EQ(names.front(), "Perkins home");
  EXPECT_EQ(names.back(), "EC2 Vir");
}

TEST(Campaign, RunsPlanAndStampsTraces) {
  auto params = scenario::WorldParams::small(11);
  params.server_count = 8;
  params.offline_prob = 0.0;
  scenario::World world(params);

  CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"EC2 Sin", 2, 1});

  std::vector<std::pair<std::string, int>> hook_calls;
  Campaign campaign(world.vantage_map(), world.server_addresses(), ProbeOptions{});
  campaign.set_before_trace([&](const std::string& vantage, int batch, int) {
    hook_calls.emplace_back(vantage, batch);
  });
  std::vector<Trace> traces;
  campaign.run(plan, [&](std::vector<Trace> t) { traces = std::move(t); });
  world.sim().run();

  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].vantage, "UGla wired");
  EXPECT_EQ(traces[0].batch, 1);
  EXPECT_EQ(traces[1].vantage, "UGla wired");
  EXPECT_EQ(traces[2].vantage, "EC2 Sin");
  EXPECT_EQ(traces[2].batch, 2);
  // Indices are sequential.
  EXPECT_EQ(traces[0].index, 0);
  EXPECT_EQ(traces[2].index, 2);
  // The before-trace hook fired once per trace, batch 1 before batch 2.
  ASSERT_EQ(hook_calls.size(), 3u);
  EXPECT_EQ(hook_calls[0].second, 1);
  EXPECT_EQ(hook_calls[2].second, 2);
}

TEST(Campaign, UnknownVantageThrows) {
  auto params = scenario::WorldParams::small(12);
  params.server_count = 4;
  scenario::World world(params);
  CampaignPlan plan;
  plan.entries.push_back({"Atlantis", 1, 1});
  Campaign campaign(world.vantage_map(), world.server_addresses(), ProbeOptions{});
  EXPECT_THROW(campaign.run(plan, [](std::vector<Trace>) {}), std::invalid_argument);
}

}  // namespace
}  // namespace ecnprobe::measure
