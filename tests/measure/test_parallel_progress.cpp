// Concurrent-reader safety for the live plane's data sources: the
// /progress and /metrics endpoints call ParallelCampaign::progress() and
// metrics_snapshot() from server threads while run() executes on workers.
// This test hammers both from reader threads for the whole run and asserts
// the invariants the endpoints rely on: completed is monotone
// non-decreasing and bounded by total, every snapshot counter is <= its
// final value (plan-order prefix property), and the final reads reconcile
// exactly with run()'s results. Runs under the ThreadSanitizer CI job
// (test binary matches the 'measure' regex), which is the real assertion.
#include "ecnprobe/measure/parallel_campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::measure {
namespace {

scenario::WorldParams reader_params() {
  auto p = scenario::WorldParams::small(91);
  p.server_count = 16;
  p.ect_udp_firewalled_servers = 2;
  p.offline_prob = 0.08;
  obs::TimeSeriesConfig series;
  series.enabled = true;
  series.window_nanos = 500'000'000;
  p.timeseries = series;
  return p;
}

CampaignPlan reader_plan() {
  CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 3});
  plan.entries.push_back({"UGla wired", 1, 3});
  plan.entries.push_back({"EC2 Vir", 2, 3});
  plan.entries.push_back({"EC2 Tok", 2, 3});
  return plan;
}

TEST(ParallelProgress, ConcurrentReadersSeeMonotoneConsistentSnapshots) {
  const auto params = reader_params();
  const auto plan = reader_plan();
  ParallelCampaign::Options exec;
  exec.workers = 4;
  ParallelCampaign campaign(scenario::world_shard_factory(params), exec);

  std::atomic<bool> running{true};
  std::atomic<bool> violation{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&campaign, &running, &violation, &plan] {
      int last_completed = 0;
      while (running.load(std::memory_order_relaxed)) {
        const auto p = campaign.progress();
        // Monotone and bounded at every instant. total is 0 until run()
        // starts, and completed / failed / by-vantage come from counters
        // updated at slightly different moments, so the live invariants
        // are one-sided: nothing ever exceeds the plan, nothing ever
        // goes backwards.
        if (p.completed < last_completed || p.in_flight < 0 ||
            (p.total != 0 && p.total != plan.total_traces()) ||
            (p.total != 0 && p.completed + p.failed > p.total)) {
          violation.store(true, std::memory_order_relaxed);
        }
        int by_vantage = 0;
        for (const auto& [vantage, n] : p.completed_by_vantage) by_vantage += n;
        if (by_vantage > plan.total_traces()) {
          violation.store(true, std::memory_order_relaxed);
        }
        last_completed = p.completed;

        // Snapshot while workers fold: must be a self-consistent copy
        // (TSan validates the locking; the export must never throw).
        const auto snapshot = campaign.metrics_snapshot();
        (void)obs::to_json(snapshot);
        (void)obs::to_prometheus(snapshot.timeseries);
      }
    });
  }

  const auto traces = campaign.run(plan);
  running.store(false, std::memory_order_relaxed);
  for (auto& reader : readers) reader.join();
  EXPECT_FALSE(violation.load());

  // Final reads reconcile exactly with the run's outcome.
  const auto final_progress = campaign.progress();
  EXPECT_EQ(final_progress.total, plan.total_traces());
  EXPECT_EQ(final_progress.completed, static_cast<int>(traces.size()));
  EXPECT_EQ(final_progress.failed, static_cast<int>(campaign.failures().size()));
  EXPECT_EQ(final_progress.in_flight, 0);
  EXPECT_EQ(final_progress.completed + final_progress.failed, final_progress.total);

  // The post-run snapshot equals the merged campaign metrics byte for byte
  // (the mid-run scrape path and the final export share one data source).
  EXPECT_EQ(obs::to_json(campaign.metrics_snapshot()), obs::to_json(campaign.metrics()));
  EXPECT_FALSE(campaign.metrics().timeseries.empty());
}

TEST(ParallelProgress, SnapshotCountersAreSafePrefixesOfFinalTotals) {
  const auto params = reader_params();
  const auto plan = reader_plan();
  ParallelCampaign::Options exec;
  exec.workers = 4;
  ParallelCampaign campaign(scenario::world_shard_factory(params), exec);

  // Collect mid-run snapshots; verify afterwards against the final totals
  // (comparing inside the loop would race the reference computation).
  std::atomic<bool> running{true};
  std::vector<obs::ObsSnapshot> observed;
  std::thread reader([&campaign, &running, &observed] {
    while (running.load(std::memory_order_relaxed)) {
      observed.push_back(campaign.metrics_snapshot());
    }
  });
  campaign.run(plan);
  running.store(false, std::memory_order_relaxed);
  reader.join();

  const auto& final_snapshot = campaign.metrics();
  ASSERT_FALSE(observed.empty());
  for (const auto& snapshot : observed) {
    // Plan-order prefix folding: every mid-run counter is <= its final
    // value, which is what lets a mid-run scrape reconcile with the
    // final --metrics-out export.
    for (const auto& [name, family] : snapshot.metrics.families) {
      const auto family_it = final_snapshot.metrics.families.find(name);
      ASSERT_NE(family_it, final_snapshot.metrics.families.end()) << name;
      for (const auto& [labels, sample] : family.samples) {
        const auto sample_it = family_it->second.samples.find(labels);
        ASSERT_NE(sample_it, family_it->second.samples.end()) << name;
        EXPECT_LE(sample.counter, sample_it->second.counter) << name;
      }
    }
    for (const auto& [index, window] : snapshot.timeseries.windows) {
      const auto window_it = final_snapshot.timeseries.windows.find(index);
      ASSERT_NE(window_it, final_snapshot.timeseries.windows.end());
      EXPECT_LE(window.rtt_count, window_it->second.rtt_count);
    }
  }
  // The last snapshot taken after quiescence-by-construction may still
  // predate the final fold; equality is only guaranteed post-run.
  EXPECT_EQ(obs::to_json(campaign.metrics_snapshot()), obs::to_json(final_snapshot));
}

}  // namespace
}  // namespace ecnprobe::measure
