// Vantage plumbing and campaign-level churn behaviour.
#include <gtest/gtest.h>

#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/netsim/pcap.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::measure {
namespace {

scenario::WorldParams tiny() {
  auto p = scenario::WorldParams::small(71);
  p.server_count = 10;
  p.offline_prob = 0.0;
  p.rate_limited_fraction = 0.0;
  p.greylist_flaky_prob = 0.0;
  p.greylist_dead_prob = 0.0;
  // No pathological servers: churn arithmetic below assumes a clean pool.
  p.ect_udp_firewalled_servers = 0;
  p.ect_required_servers = 0;
  p.ec2_sensitive_servers = 0;
  return p;
}

TEST(Vantage, CaptureRecordsProbeTrafficBothWays) {
  scenario::World world(tiny());
  auto& vantage = world.vantage("Perkins home");
  vantage.capture().clear();
  bool done = false;
  probe_server(vantage, world.servers()[0].address, ProbeOptions{},
               [&](const ServerResult&) { done = true; });
  world.sim().run();
  ASSERT_TRUE(done);
  int tx = 0;
  int rx = 0;
  for (const auto& packet : vantage.capture().packets()) {
    (packet.dir == netsim::Direction::Tx ? tx : rx)++;
  }
  // Four probes' worth of traffic: NTP x2, HTTP x2 (handshake + data).
  EXPECT_GE(tx, 4);
  EXPECT_GE(rx, 4);
}

TEST(Vantage, CaptureExportsAsPcap) {
  scenario::World world(tiny());
  auto& vantage = world.vantage("EC2 Ire");
  bool done = false;
  probe_server(vantage, world.servers()[1].address, ProbeOptions{},
               [&](const ServerResult&) { done = true; });
  world.sim().run();
  ASSERT_TRUE(done);
  std::ostringstream os(std::ios::binary);
  const auto written = netsim::write_pcap(os, vantage.capture());
  EXPECT_EQ(written, vantage.capture().packets().size());
  EXPECT_GT(written, 0u);
}

TEST(Vantage, TracerouteEngineIsLazyAndSingle) {
  scenario::World world(tiny());
  auto& vantage = world.vantage("EC2 Syd");
  auto& tracer1 = vantage.tracer();
  auto& tracer2 = vantage.tracer();
  EXPECT_EQ(&tracer1, &tracer2);  // one ICMP owner per host
}

TEST(CampaignChurn, DepartedServersStayGoneWithinCampaign) {
  auto params = tiny();
  params.server_count = 40;
  params.batch2_departed_fraction = 0.4;  // exaggerate for the test
  params.offline_prob = 0.0;
  scenario::World world(params);

  CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 1});
  plan.entries.push_back({"UGla wired", 2, 2});
  const auto traces = world.run_campaign(plan);
  ASSERT_EQ(traces.size(), 3u);

  const int before = traces[0].reachable_udp_plain();
  const int batch2_first = traces[1].reachable_udp_plain();
  const int batch2_second = traces[2].reachable_udp_plain();
  EXPECT_EQ(before, 40);            // batch 1: everyone present
  EXPECT_LT(batch2_first, before);  // churn bites in batch 2
  // Departure is permanent: the same servers stay gone.
  EXPECT_EQ(batch2_first, batch2_second);
  std::set<std::uint32_t> gone_first;
  std::set<std::uint32_t> gone_second;
  for (const auto& s : traces[1].servers) {
    if (!s.udp_plain.reachable) gone_first.insert(s.server.value());
  }
  for (const auto& s : traces[2].servers) {
    if (!s.udp_plain.reachable) gone_second.insert(s.server.value());
  }
  EXPECT_EQ(gone_first, gone_second);
}

TEST(CampaignChurn, OfflineDrawsVaryPerTrace) {
  auto params = tiny();
  params.server_count = 40;
  params.offline_prob = 0.3;
  params.batch2_departed_fraction = 0.0;
  scenario::World world(params);
  CampaignPlan plan;
  plan.entries.push_back({"EC2 Fra", 1, 3});
  const auto traces = world.run_campaign(plan);
  ASSERT_EQ(traces.size(), 3u);
  // Different servers offline in different traces (transient, not fixed).
  std::set<std::uint32_t> off0;
  std::set<std::uint32_t> off1;
  for (const auto& s : traces[0].servers) {
    if (!s.udp_plain.reachable) off0.insert(s.server.value());
  }
  for (const auto& s : traces[1].servers) {
    if (!s.udp_plain.reachable) off1.insert(s.server.value());
  }
  EXPECT_FALSE(off0.empty());
  EXPECT_NE(off0, off1);
}

TEST(ProbeOrder, UdpTestsPrecedeTcpTests) {
  // The paper's sequence matters (the greylist mechanism depends on it):
  // verify via capture timestamps that NTP traffic precedes HTTP traffic.
  scenario::World world(tiny());
  auto& vantage = world.vantage("UGla wless");
  vantage.capture().clear();
  bool done = false;
  probe_server(vantage, world.servers()[2].address, ProbeOptions{},
               [&](const ServerResult&) { done = true; });
  world.sim().run();
  ASSERT_TRUE(done);
  std::optional<util::SimTime> first_udp;
  std::optional<util::SimTime> first_tcp;
  for (const auto& packet : vantage.capture().packets()) {
    if (packet.dgram.ip.protocol == wire::IpProto::Udp && !first_udp) {
      first_udp = packet.time;
    }
    if (packet.dgram.ip.protocol == wire::IpProto::Tcp && !first_tcp) {
      first_tcp = packet.time;
    }
  }
  ASSERT_TRUE(first_udp && first_tcp);
  EXPECT_LT(*first_udp, *first_tcp);
}

}  // namespace
}  // namespace ecnprobe::measure
