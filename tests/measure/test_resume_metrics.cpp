// Resume must not double-count observability: a campaign that crashes,
// journals its progress, and resumes has its journal-replayed per-trace
// deltas merged exactly once, so the final --metrics-out snapshot is
// byte-identical to an uninterrupted run's. Both executors are covered;
// the executors themselves also assert the merge accounting (a replayed
// trace that also ran live throws instead of silently double-merging).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ecnprobe/measure/journal.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::measure {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

scenario::WorldParams resume_params() {
  auto p = scenario::WorldParams::small(55);
  p.server_count = 16;
  p.ect_udp_firewalled_servers = 2;
  p.offline_prob = 0.08;
  return p;
}

CampaignPlan resume_plan() {
  CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 3});
  plan.entries.push_back({"UGla wired", 1, 3});
  plan.entries.push_back({"EC2 Vir", 2, 3});
  plan.entries.push_back({"EC2 Tok", 2, 3});
  return plan;
}

JournalMeta meta_for(const CampaignPlan& plan, const scenario::WorldParams& params) {
  JournalMeta meta;
  meta.plan = plan_fingerprint(plan);
  meta.faults = params.faults.fingerprint();
  meta.seed = params.seed;
  meta.total_traces = plan.total_traces();
  meta.server_count = params.server_count;
  return meta;
}

TEST(ResumeMetrics, SequentialResumeMatchesUninterruptedRun) {
  const auto params = resume_params();
  const auto plan = resume_plan();

  scenario::World reference(params);
  reference.run_campaign(plan);
  const auto reference_json = obs::to_json(reference.campaign_obs());
  ASSERT_GT(reference.campaign_obs().ledger.total_drops(), 0u);

  TempFile file("resume_metrics_seq");
  std::string error;
  {
    // Crash after 5 live traces; the journal keeps what completed.
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, meta_for(plan, params), &error)) << error;
    scenario::World halted(params);
    halted.run_campaign(plan, {}, nullptr, &journal, /*halt_after=*/5);
    ASSERT_EQ(journal.entries().size(), 5u);
  }
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(file.path, meta_for(plan, params), &error)) << error;
  scenario::World resumed(params);
  const auto traces = resumed.run_campaign(plan, {}, nullptr, &journal);
  EXPECT_EQ(static_cast<int>(traces.size()), plan.total_traces());
  // The strong contract: replayed deltas merged exactly once, so the merged
  // snapshot encodes to the same bytes as the uninterrupted run's.
  EXPECT_EQ(obs::to_json(resumed.campaign_obs()), reference_json);
}

TEST(ResumeMetrics, ParallelResumeMatchesUninterruptedRun) {
  const auto params = resume_params();
  const auto plan = resume_plan();

  ParallelCampaign::Options exec;
  exec.workers = 4;
  ParallelCampaign reference(scenario::world_shard_factory(params), exec);
  reference.run(plan);
  ASSERT_TRUE(reference.failures().empty());
  const auto reference_json = obs::to_json(reference.metrics());

  TempFile file("resume_metrics_par");
  std::string error;
  std::size_t journaled = 0;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, meta_for(plan, params), &error)) << error;
    ParallelCampaign::Options halted_exec;
    halted_exec.workers = 4;
    halted_exec.halt_after_traces = 5;
    ParallelCampaign halted(scenario::world_shard_factory(params), halted_exec);
    halted.set_journal(&journal);
    halted.run(plan);
    journaled = journal.entries().size();
    // Which traces got journaled before the "crash" is scheduling-dependent,
    // but there must be some progress to resume from and some left to do.
    ASSERT_GT(journaled, 0u);
    ASSERT_LT(journaled, static_cast<std::size_t>(plan.total_traces()));
  }
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(file.path, meta_for(plan, params), &error)) << error;
  ASSERT_EQ(journal.entries().size(), journaled);
  ParallelCampaign resumed(scenario::world_shard_factory(params), exec);
  resumed.set_journal(&journal);
  const auto traces = resumed.run(plan);
  ASSERT_TRUE(resumed.failures().empty());
  EXPECT_EQ(static_cast<int>(traces.size()), plan.total_traces());
  EXPECT_EQ(obs::to_json(resumed.metrics()), reference_json);
}

}  // namespace
}  // namespace ecnprobe::measure
