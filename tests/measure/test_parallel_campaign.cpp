// Determinism regression harness for the sharded campaign executor: the
// whole point of ParallelCampaign is that sharding traces across isolated
// per-worker worlds changes wall-clock time and nothing else. Sequential
// Campaign output and parallel output at 1, 2, and 8 workers must agree to
// the byte, and a worker whose trace throws must neither lose nor
// duplicate anyone else's traces.
#include "ecnprobe/measure/parallel_campaign.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::measure {
namespace {

scenario::WorldParams determinism_params() {
  auto p = scenario::WorldParams::small(77);
  p.server_count = 24;
  p.ect_udp_firewalled_servers = 2;
  p.ect_required_servers = 1;
  p.ec2_sensitive_servers = 1;
  p.offline_prob = 0.06;
  return p;
}

CampaignPlan mixed_plan() {
  CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"McQuistin home", 1, 1});
  plan.entries.push_back({"UGla wless", 1, 1});
  plan.entries.push_back({"Perkins home", 2, 1});
  plan.entries.push_back({"EC2 Vir", 2, 2});
  plan.entries.push_back({"EC2 Tok", 2, 2});
  return plan;
}

std::string to_csv(const std::vector<Trace>& traces) {
  std::ostringstream os;
  write_traces_csv(os, traces);
  return os.str();
}

TEST(ParallelCampaign, ByteIdenticalToSequentialAt1And2And8Workers) {
  const auto params = determinism_params();
  const auto plan = mixed_plan();
  const ProbeOptions options;

  scenario::World sequential_world(params);
  const auto sequential = sequential_world.run_campaign(plan, options);
  ASSERT_EQ(static_cast<int>(sequential.size()), plan.total_traces());
  const auto sequential_csv = to_csv(sequential);
  const auto sequential_summary = analysis::summarize_reachability(sequential);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto parallel = scenario::run_parallel_campaign(params, plan, options, workers);
    ASSERT_EQ(parallel.size(), sequential.size());

    // Plan-order merge: index, vantage, and batch line up trace for trace.
    for (std::size_t i = 0; i < parallel.size(); ++i) {
      EXPECT_EQ(parallel[i].index, sequential[i].index);
      EXPECT_EQ(parallel[i].vantage, sequential[i].vantage);
      EXPECT_EQ(parallel[i].batch, sequential[i].batch);
    }

    // The strong contract: the merged results CSV is byte-identical.
    EXPECT_EQ(to_csv(parallel), sequential_csv);

    // And so are the paper's headline numbers (Table 1 / Figure 2a inputs).
    const auto summary = analysis::summarize_reachability(parallel);
    EXPECT_DOUBLE_EQ(summary.mean_reachable_udp_plain,
                     sequential_summary.mean_reachable_udp_plain);
    EXPECT_DOUBLE_EQ(summary.mean_pct_ect_given_plain,
                     sequential_summary.mean_pct_ect_given_plain);
    EXPECT_DOUBLE_EQ(summary.mean_pct_plain_given_ect,
                     sequential_summary.mean_pct_plain_given_ect);
    EXPECT_DOUBLE_EQ(summary.pct_tcp_negotiating_ecn,
                     sequential_summary.pct_tcp_negotiating_ecn);
  }
}

TEST(ParallelCampaign, RepeatedParallelRunsAreIdentical) {
  const auto params = determinism_params();
  const auto plan = mixed_plan();
  const auto first = scenario::run_parallel_campaign(params, plan, {}, 4);
  const auto second = scenario::run_parallel_campaign(params, plan, {}, 4);
  EXPECT_EQ(to_csv(first), to_csv(second));
}

TEST(ParallelCampaign, ProgressCounterAndSerializedObserver) {
  const auto params = determinism_params();
  const auto plan = mixed_plan();

  ParallelCampaign::Options options;
  options.workers = 4;
  ParallelCampaign campaign(scenario::world_shard_factory(params), options);

  // The observer is serialized: with the mutex held by the executor, a
  // non-atomic counter must still end up exact.
  int observed = 0;
  std::set<int> observed_indices;
  campaign.set_observer([&](const std::string&, int, int index) {
    ++observed;
    observed_indices.insert(index);
  });

  EXPECT_EQ(campaign.traces_completed(), 0);
  const auto traces = campaign.run(plan);
  EXPECT_EQ(static_cast<int>(traces.size()), plan.total_traces());
  EXPECT_EQ(campaign.traces_completed(), plan.total_traces());
  EXPECT_EQ(observed, plan.total_traces());
  EXPECT_EQ(static_cast<int>(observed_indices.size()), plan.total_traces());
  EXPECT_TRUE(campaign.failures().empty());
}

// The observability half of the determinism contract: the campaign-scoped
// metrics + drop-ledger snapshot -- merged from per-trace shard deltas in
// plan order -- must encode to the same JSON bytes as the sequential
// World's accumulation, at any worker count.
TEST(ParallelCampaign, MetricsByteIdenticalToSequential) {
  const auto params = determinism_params();
  const auto plan = mixed_plan();
  const ProbeOptions options;

  scenario::World sequential_world(params);
  sequential_world.run_campaign(plan, options);
  const auto& sequential_obs = sequential_world.campaign_obs();
  const auto sequential_json = obs::to_json(sequential_obs);

  // The campaign must actually have produced substance to compare: packet
  // counters, probe counters, and attributed drops.
  ASSERT_TRUE(sequential_obs.metrics.families.contains("net_packets_transmitted_total"));
  ASSERT_TRUE(sequential_obs.metrics.families.contains("probe_udp_total"));
  ASSERT_GT(sequential_obs.ledger.total_drops(), 0u);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ParallelCampaign::Options exec;
    exec.workers = workers;
    exec.probe = options;
    ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
    campaign.run(plan);
    ASSERT_TRUE(campaign.failures().empty());
    EXPECT_EQ(obs::to_json(campaign.metrics()), sequential_json);
  }
}

// Loss-autopsy reconciliation: every failed probe in the merged traces has
// exactly one measure-layer probe-timeout ledger entry, so the autopsy
// table's bottom line explains Figure 2's unreachable cells one for one.
TEST(ParallelCampaign, ProbeTimeoutsReconcileWithFailedProbes) {
  const auto params = determinism_params();
  const auto plan = mixed_plan();

  ParallelCampaign::Options exec;
  exec.workers = 4;
  ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
  const auto traces = campaign.run(plan);
  ASSERT_TRUE(campaign.failures().empty());

  std::uint64_t failed_probes = 0;
  for (const auto& trace : traces) {
    for (const auto& server : trace.servers) {
      failed_probes += !server.udp_plain.reachable;
      failed_probes += !server.udp_ect0.reachable;
      failed_probes += !server.tcp_plain.connected;
      failed_probes += !server.tcp_ecn.connected;
    }
  }
  ASSERT_GT(failed_probes, 0u);
  EXPECT_EQ(campaign.metrics().ledger.drops_for_cause("probe-timeout"), failed_probes);
}

// Runtime (executor) metrics are intentionally separate from the
// deterministic campaign snapshot, but their totals must still add up.
TEST(ParallelCampaign, RuntimeMetricsAccountForEveryTrace) {
  const auto params = determinism_params();
  const auto plan = mixed_plan();

  ParallelCampaign::Options exec;
  exec.workers = 4;
  ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
  campaign.run(plan);

  const auto progress = campaign.progress();
  EXPECT_EQ(progress.total, plan.total_traces());
  EXPECT_EQ(progress.completed, plan.total_traces());
  EXPECT_EQ(progress.failed, 0);
  EXPECT_EQ(progress.in_flight, 0);
  int by_vantage = 0;
  for (const auto& [vantage, count] : progress.completed_by_vantage) by_vantage += count;
  EXPECT_EQ(by_vantage, plan.total_traces());

  const auto runtime = campaign.runtime_metrics();
  ASSERT_TRUE(runtime.families.contains("worker_traces_total"));
  std::uint64_t claimed = 0;
  for (const auto& [labels, value] : runtime.families.at("worker_traces_total").samples) {
    claimed += value.counter;
  }
  EXPECT_EQ(claimed, static_cast<std::uint64_t>(plan.total_traces()));
}

// Concurrency stress: a world where the greylisting and rate-limiting
// failure-injection machinery fires constantly, plus traces that throw
// mid-campaign from several workers at once. No trace may be lost or
// duplicated, and the failed ones must be reported, not silently dropped.
TEST(ParallelCampaign, StressNoLostOrDuplicatedTracesWhenWorkersThrow) {
  auto params = scenario::WorldParams::small(91);
  params.server_count = 16;
  params.greylist_flaky_prob = 0.25;  // constant warm-up churn (Figure 2b)
  params.greylist_dead_prob = 0.05;   // wedged firewalls
  params.rate_limited_fraction = 0.3; // heavy NTP rate limiting
  params.offline_prob = 0.15;         // heavy failure injection
  CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 4});
  plan.entries.push_back({"UGla wired", 1, 4});
  plan.entries.push_back({"EC2 Sin", 2, 4});
  plan.entries.push_back({"EC2 Sao", 2, 4});
  const int total = plan.total_traces();

  const std::set<int> poisoned = {1, 5, 11};
  ParallelCampaign::Options options;
  options.workers = 8;
  ParallelCampaign campaign(scenario::world_shard_factory(params), options);
  campaign.set_observer([&](const std::string&, int, int index) {
    if (poisoned.contains(index)) {
      throw std::runtime_error("injected failure for trace " + std::to_string(index));
    }
  });

  const auto traces = campaign.run(plan);
  EXPECT_EQ(static_cast<int>(traces.size()), total - static_cast<int>(poisoned.size()));
  EXPECT_EQ(campaign.traces_completed(), total - static_cast<int>(poisoned.size()));

  // No duplicates, no resurrections of poisoned traces, order preserved.
  std::set<int> seen;
  int last_index = -1;
  for (const auto& trace : traces) {
    EXPECT_TRUE(seen.insert(trace.index).second) << "duplicate trace " << trace.index;
    EXPECT_FALSE(poisoned.contains(trace.index)) << "poisoned trace survived";
    EXPECT_GT(trace.index, last_index) << "merge order broken";
    last_index = trace.index;
    EXPECT_EQ(trace.servers.size(), static_cast<std::size_t>(params.server_count));
  }

  ASSERT_EQ(campaign.failures().size(), poisoned.size());
  for (const auto& failure : campaign.failures()) {
    EXPECT_TRUE(poisoned.contains(failure.index));
    EXPECT_NE(failure.message.find("injected failure"), std::string::npos);
  }

  // The surviving traces still match a clean sequential run of the same
  // seed: a neighbour's crash must not perturb anyone else's results.
  scenario::World reference_world(params);
  const auto reference = reference_world.run_campaign(plan);
  ASSERT_EQ(static_cast<int>(reference.size()), total);
  std::ostringstream expected;
  std::vector<Trace> kept;
  for (const auto& trace : reference) {
    if (!poisoned.contains(trace.index)) kept.push_back(trace);
  }
  write_traces_csv(expected, kept);
  EXPECT_EQ(to_csv(traces), expected.str());
}

}  // namespace
}  // namespace ecnprobe::measure
