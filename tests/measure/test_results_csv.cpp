#include <gtest/gtest.h>

#include <sstream>

#include "ecnprobe/measure/results.hpp"

namespace ecnprobe::measure {
namespace {

Trace make_trace(const std::string& vantage, int batch, int index) {
  Trace trace;
  trace.vantage = vantage;
  trace.batch = batch;
  trace.index = index;
  for (int i = 0; i < 4; ++i) {
    ServerResult s;
    s.server = wire::Ipv4Address(11, 0, 0, static_cast<std::uint8_t>(i + 1));
    s.udp_plain.reachable = true;
    s.udp_plain.attempts = 1;
    s.udp_ect0.reachable = i != 2;  // one server ECT-unreachable
    s.udp_ect0.attempts = i != 2 ? 1 : 5;
    s.tcp_plain.connected = i < 3;
    s.tcp_plain.got_response = i < 3;
    s.tcp_plain.http_status = i < 3 ? 302 : 0;
    s.tcp_ecn.connected = i < 3;
    s.tcp_ecn.ecn_negotiated = i < 2;
    s.tcp_ecn.got_response = i < 3;
    s.tcp_ecn.http_status = i < 3 ? 302 : 0;
    trace.servers.push_back(s);
  }
  return trace;
}

TEST(TraceSummaries, CountsMatchConstruction) {
  const auto trace = make_trace("UGla wired", 1, 0);
  EXPECT_EQ(trace.reachable_udp_plain(), 4);
  EXPECT_EQ(trace.reachable_udp_ect0(), 3);
  EXPECT_EQ(trace.reachable_tcp(), 3);
  EXPECT_EQ(trace.negotiated_ecn_tcp(), 2);
  EXPECT_DOUBLE_EQ(trace.pct_ect_given_plain(), 75.0);
  EXPECT_DOUBLE_EQ(trace.pct_plain_given_ect(), 100.0);
  EXPECT_EQ(trace.unreachable_udp_with_ect(), 1);
}

TEST(TraceSummaries, EmptyTraceSafe) {
  Trace trace;
  EXPECT_EQ(trace.pct_ect_given_plain(), 0.0);
  EXPECT_EQ(trace.pct_plain_given_ect(), 0.0);
}

TEST(ResultsCsv, RoundTripPreservesEverything) {
  std::vector<Trace> traces = {make_trace("Perkins home", 1, 0),
                               make_trace("EC2 Tok", 2, 1)};
  std::ostringstream os;
  write_traces_csv(os, traces);

  std::istringstream is(os.str());
  const auto loaded = read_traces_csv(is);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), 2u);
  const auto& t0 = (*loaded)[0];
  EXPECT_EQ(t0.vantage, "Perkins home");
  EXPECT_EQ(t0.batch, 1);
  EXPECT_EQ(t0.index, 0);
  ASSERT_EQ(t0.servers.size(), 4u);
  EXPECT_EQ(t0.servers[2].udp_ect0.reachable, false);
  EXPECT_EQ(t0.servers[2].udp_ect0.attempts, 5);
  EXPECT_EQ(t0.servers[0].tcp_ecn.ecn_negotiated, true);
  EXPECT_EQ(t0.servers[3].tcp_plain.http_status, 0);
  // Summary functions agree after the round trip.
  EXPECT_EQ(t0.reachable_udp_plain(), traces[0].reachable_udp_plain());
  EXPECT_EQ(t0.negotiated_ecn_tcp(), traces[0].negotiated_ecn_tcp());
}

TEST(ResultsCsv, RejectsEmptyAndMalformed) {
  std::istringstream empty("");
  EXPECT_FALSE(read_traces_csv(empty));

  std::istringstream bad_fields("header\na,b,c\n");
  EXPECT_FALSE(read_traces_csv(bad_fields));

  std::istringstream bad_addr(
      "h\nv,1,0,notanip,1,1,1,1,0,0,0,0,0,0,0\n");
  EXPECT_FALSE(read_traces_csv(bad_addr));
}

TEST(ResultsCsv, SkipsBlankLines) {
  std::vector<Trace> traces = {make_trace("X", 1, 0)};
  std::ostringstream os;
  write_traces_csv(os, traces);
  std::istringstream is(os.str() + "\n\n");
  const auto loaded = read_traces_csv(is);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->size(), 1u);
}

}  // namespace
}  // namespace ecnprobe::measure
