#include "ecnprobe/scenario/world.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ecnprobe/analysis/geosummary.hpp"

namespace ecnprobe::scenario {
namespace {

TEST(WorldParams, ScaledShrinksProportionally) {
  const auto full = WorldParams::paper();
  const auto tenth = full.scaled(0.1);
  EXPECT_EQ(tenth.server_count, 250);
  EXPECT_EQ(tenth.topology.stub_count, 40);
  EXPECT_GE(tenth.ect_udp_firewalled_servers, 1);
}

struct WorldTest : ::testing::Test {
  static WorldParams params() {
    auto p = WorldParams::small(21);
    p.server_count = 40;
    return p;
  }
  World world{params()};
};

TEST_F(WorldTest, BuildsRequestedServerCount) {
  EXPECT_EQ(world.servers().size(), 40u);
  EXPECT_EQ(world.server_addresses().size(), 40u);
  // Every server has an NTP service and a TCP stack.
  for (const auto& server : world.servers()) {
    EXPECT_NE(server.ntp_service, nullptr);
    EXPECT_NE(server.tcp_stack, nullptr);
    EXPECT_EQ(server.web != nullptr, server.runs_web);
    EXPECT_FALSE(server.address.is_unspecified());
  }
}

TEST_F(WorldTest, AllThirteenVantagesExist) {
  EXPECT_EQ(world.vantage_names().size(), 13u);
  for (const auto& name : world.vantage_names()) {
    EXPECT_EQ(world.vantage(name).name(), name);
    EXPECT_FALSE(world.vantage_address(name).is_unspecified());
  }
  EXPECT_THROW(world.vantage("nowhere"), std::out_of_range);
}

TEST_F(WorldTest, GeoDistributionScalesFromTable1) {
  const auto summary =
      analysis::summarize_geo(world.server_addresses(), world.geodb());
  EXPECT_EQ(summary.total, 40);
  // Europe dominates (paper: 1664/2500 ~= 2/3).
  EXPECT_GT(summary.counts.at(geo::Region::Europe), 15);
  EXPECT_GT(summary.counts.at(geo::Region::NorthAmerica), 2);
}

TEST_F(WorldTest, MiddleboxGroundTruthMatchesParams) {
  EXPECT_EQ(world.ground_truth_firewalled().size(), 3u);
  int ect_required = 0;
  int ec2_sensitive = 0;
  for (const auto& server : world.servers()) {
    ect_required += server.ect_required ? 1 : 0;
    ec2_sensitive += server.ec2_sensitive ? 1 : 0;
    // A server has at most one special role.
    EXPECT_LE(static_cast<int>(server.firewalled_ect_udp) +
                  static_cast<int>(server.ect_required) +
                  static_cast<int>(server.ec2_sensitive),
              1);
  }
  EXPECT_EQ(ect_required, 1);
  EXPECT_EQ(ec2_sensitive, 1);
}

TEST_F(WorldTest, DnsDiscoveryFindsMostOfThePool) {
  const auto discovered = world.run_discovery("UGla wired", /*rounds=*/40);
  // Round-robin of 4 answers per query across the global + regional +
  // country zones reaches the whole pool given enough rounds.
  EXPECT_GE(discovered.size(), world.servers().size() * 9 / 10);
  std::set<std::uint32_t> truth;
  for (const auto& s : world.servers()) truth.insert(s.address.value());
  for (const auto& addr : discovered) {
    EXPECT_TRUE(truth.contains(addr.value())) << addr.to_string();
  }
}

TEST_F(WorldTest, BeforeTraceTogglesAvailability) {
  world.before_trace("UGla wired", 1, 0);
  int online_batch1 = 0;
  for (const auto& server : world.servers()) online_batch1 += server.online ? 1 : 0;
  EXPECT_GT(online_batch1, 0);

  // Batch 2 applies pool departures permanently.
  world.before_trace("UGla wired", 2, 50);
  int departed = 0;
  for (const auto& server : world.servers()) {
    departed += server.departed ? 1 : 0;
    if (server.departed) EXPECT_FALSE(server.online);
  }
  // With 5% departure probability on 40 servers, usually > 0; allow zero but
  // require the flag mechanics to hold via a forced second application.
  world.before_trace("UGla wired", 2, 51);
  for (const auto& server : world.servers()) {
    if (server.departed) EXPECT_FALSE(server.online);
  }
  SUCCEED();
}

TEST_F(WorldTest, DeterministicGivenSeed) {
  World other{WorldTest::params()};
  ASSERT_EQ(other.servers().size(), world.servers().size());
  for (std::size_t i = 0; i < other.servers().size(); ++i) {
    EXPECT_EQ(other.servers()[i].address, world.servers()[i].address);
    EXPECT_EQ(other.servers()[i].runs_web, world.servers()[i].runs_web);
    EXPECT_EQ(other.servers()[i].web_ecn, world.servers()[i].web_ecn);
    EXPECT_EQ(other.servers()[i].firewalled_ect_udp,
              world.servers()[i].firewalled_ect_udp);
  }
}

TEST(World, DifferentSeedsDifferentWorlds) {
  auto p1 = WorldParams::small(1);
  p1.server_count = 30;
  auto p2 = WorldParams::small(2);
  p2.server_count = 30;
  World w1(p1);
  World w2(p2);
  int differences = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (w1.servers()[i].runs_web != w2.servers()[i].runs_web) ++differences;
  }
  EXPECT_GT(differences, 0);
}

}  // namespace
}  // namespace ecnprobe::scenario
