// Parameterized world-level invariants across random seeds: whatever world
// is drawn, the measurement pipeline's outputs must satisfy the properties
// listed in DESIGN.md section 7.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

class WorldSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
protected:
  static WorldParams params(std::uint64_t seed) {
    auto p = WorldParams::small(seed);
    p.server_count = 30;
    return p;
  }
};

TEST_P(WorldSeedSweep, CampaignInvariantsHold) {
  World world(params(GetParam()));
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"EC2 Sin", 2, 2});
  const auto traces = world.run_campaign(plan);
  ASSERT_EQ(traces.size(), 4u);

  for (const auto& trace : traces) {
    // Percentages bounded.
    EXPECT_GE(trace.pct_ect_given_plain(), 0.0);
    EXPECT_LE(trace.pct_ect_given_plain(), 100.0);
    EXPECT_GE(trace.pct_plain_given_ect(), 0.0);
    EXPECT_LE(trace.pct_plain_given_ect(), 100.0);
    // Counts bounded by the pool size.
    EXPECT_LE(trace.reachable_udp_plain(), 30);
    EXPECT_LE(trace.reachable_tcp(), 30);
    // ECN negotiation implies TCP connection.
    EXPECT_LE(trace.negotiated_ecn_tcp(), trace.reachable_tcp());
    for (const auto& s : trace.servers) {
      // The retry discipline: 1..5 attempts whenever a UDP probe ran.
      EXPECT_GE(s.udp_plain.attempts, 1);
      EXPECT_LE(s.udp_plain.attempts, 5);
      EXPECT_GE(s.udp_ect0.attempts, 1);
      EXPECT_LE(s.udp_ect0.attempts, 5);
      // Success on attempt k < 5 means it did not exhaust the budget.
      if (s.udp_plain.reachable) EXPECT_LE(s.udp_plain.attempts, 5);
      // ECN negotiated implies connected.
      if (s.tcp_ecn.ecn_negotiated) EXPECT_TRUE(s.tcp_ecn.connected);
      // An HTTP response implies the handshake completed.
      if (s.tcp_plain.got_response) EXPECT_TRUE(s.tcp_plain.connected);
    }
  }
}

TEST_P(WorldSeedSweep, FirewalledServersAlwaysRediscovered) {
  auto p = params(GetParam());
  // Isolate the firewall signal from every transient mechanism.
  p.offline_prob = 0.0;
  p.rate_limited_fraction = 0.0;
  p.greylist_flaky_prob = 0.0;
  p.greylist_dead_prob = 0.0;
  World world(p);
  measure::CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"EC2 Tok", 2, 2});
  const auto traces = world.run_campaign(plan);
  const auto diffs = analysis::per_server_differential(traces);
  const auto persistent =
      analysis::persistent_failures(diffs, {"Perkins home", "EC2 Tok"}, 50.0);
  std::set<std::uint32_t> found;
  for (const auto& addr : persistent) found.insert(addr.value());
  for (const auto& addr : world.ground_truth_firewalled()) {
    EXPECT_TRUE(found.contains(addr.value()))
        << "missed firewalled server " << addr.to_string() << " at seed "
        << GetParam();
  }
}

TEST_P(WorldSeedSweep, TracerouteInvariantsHold) {
  World world(params(GetParam()));
  traceroute::TracerouteOptions options;
  options.timeout = util::SimDuration::millis(300);
  // One vantage suffices for the per-hop invariants.
  measure::TracerouteRunner runner(world.vantage("EC2 Fra"),
                                   world.server_addresses(), options, 1);
  std::vector<measure::TracerouteObservation> observations;
  runner.run([&](std::vector<measure::TracerouteObservation> obs) {
    observations = std::move(obs);
  });
  world.sim().run();
  ASSERT_EQ(observations.size(), world.servers().size());

  for (const auto& obs : observations) {
    int last_ttl = 0;
    for (const auto& hop : obs.path.hops) {
      EXPECT_EQ(hop.ttl, last_ttl + 1);  // contiguous TTL probing
      last_ttl = hop.ttl;
      if (!hop.responded) continue;
      // Routers never *add* marks: a quoted field is the sent codepoint or
      // a downgrade to not-ECT (no CE appears without an AQM).
      EXPECT_TRUE(hop.quoted_ecn == hop.sent_ecn ||
                  hop.quoted_ecn == wire::Ecn::NotEct)
          << "hop invented a codepoint at seed " << GetParam();
    }
  }
  const auto analysis = analysis::analyze_hops(observations, world.ip2as());
  EXPECT_EQ(analysis.ce_marks_seen, 0u);
  EXPECT_LE(analysis.strip_locations_at_boundary,
            analysis.strip_locations - analysis.strip_locations_unattributed);
}

TEST_P(WorldSeedSweep, ResponsesNeverArriveEctMarked) {
  // NTP responses are sent not-ECT and nothing on the path may upgrade
  // them: the capture at the vantage must never show an ECT/CE response.
  World world(params(GetParam()));
  auto& vantage = world.vantage("UGla wired");
  vantage.capture().clear();
  measure::TraceRunner runner(vantage, world.server_addresses(),
                              measure::ProbeOptions{});
  bool done = false;
  runner.run(1, 0, [&](measure::Trace) { done = true; });
  world.sim().run();
  ASSERT_TRUE(done);
  for (const auto& packet : vantage.capture().packets()) {
    if (packet.dir != netsim::Direction::Rx) continue;
    if (packet.dgram.ip.protocol != wire::IpProto::Udp) continue;
    EXPECT_NE(packet.dgram.ip.ecn, wire::Ecn::Ect0);
    EXPECT_NE(packet.dgram.ip.ecn, wire::Ecn::Ect1);
    EXPECT_NE(packet.dgram.ip.ecn, wire::Ecn::Ce);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep,
                         ::testing::Values(3ull, 1234ull, 777777ull, 2015ull));

}  // namespace
}  // namespace ecnprobe::scenario
