// The deterministic sim-time series, end to end through the scenario
// layer:
//
//  * a campaign with --timeseries produces a non-empty series whose window
//    totals reconcile with the end-of-run counters;
//  * the series is byte-identical sequentially and under --workers {1,2,8}
//    (folded per-trace in plan order, epoch-relative windows);
//  * it is also byte-identical across the calendar and heap event-queue
//    backends (ECNPROBE_SCHEDULER), like every other campaign output;
//  * a world without the config stays inert: no series in the snapshot, no
//    "timeseries" key in the metrics JSON (byte-compat with old exports).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

WorldParams series_params(std::uint64_t seed) {
  auto p = WorldParams::small(seed);
  p.server_count = 12;
  p.ect_udp_firewalled_servers = 3;
  p.offline_prob = 0.1;
  obs::TimeSeriesConfig config;
  config.enabled = true;
  config.window_nanos = 500'000'000;  // 500 ms sim-time windows
  p.timeseries = config;
  return p;
}

measure::CampaignPlan series_plan() {
  measure::CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"EC2 Vir", 2, 2});
  return plan;
}

TEST(WorldTimeSeries, SeriesReconcilesWithCampaignTotals) {
  World world(series_params(42));
  ASSERT_TRUE(world.obs().timeseries.armed());
  world.run_campaign(series_plan());
  const auto& series = world.campaign_obs().timeseries;
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.window_nanos, 500'000'000);

  // Every probe the campaign counted appears in exactly one window, so the
  // per-window series sums back to the end-of-run counter totals.
  std::uint64_t series_udp = 0;
  std::uint64_t series_rtt = 0;
  for (const auto& [index, window] : series.windows) {
    for (const auto& [key, n] : window.counts) {
      if (key.rfind("probe:udp-", 0) == 0) series_udp += n;
    }
    series_rtt += window.rtt_count;
  }
  std::uint64_t counter_udp = 0;
  const auto& families = world.campaign_obs().metrics.families;
  const auto it = families.find("probe_udp_total");
  ASSERT_NE(it, families.end());
  for (const auto& [labels, sample] : it->second.samples) {
    counter_udp += sample.counter;
  }
  EXPECT_EQ(series_udp, counter_udp);
  EXPECT_GT(series_rtt, 0u);
}

TEST(WorldTimeSeries, ByteIdenticalAcrossWorkerCounts) {
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{7}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto params = series_params(seed);
    const auto plan = series_plan();

    World sequential(params);
    sequential.run_campaign(plan);
    ASSERT_FALSE(sequential.campaign_obs().timeseries.empty());
    const auto reference_json = obs::to_json(sequential.campaign_obs());
    ASSERT_NE(reference_json.find("\"timeseries\""), std::string::npos);
    const auto reference_prom =
        obs::to_prometheus(sequential.campaign_obs().timeseries);

    for (const int workers : {1, 2, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      obs::ObsSnapshot metrics;
      run_parallel_campaign(params, plan, {}, workers, nullptr, &metrics);
      EXPECT_EQ(metrics.timeseries, sequential.campaign_obs().timeseries);
      EXPECT_EQ(obs::to_json(metrics), reference_json);
      EXPECT_EQ(obs::to_prometheus(metrics.timeseries), reference_prom);
    }
  }
}

TEST(WorldTimeSeries, ByteIdenticalAcrossSchedulerBackends) {
  const auto params = series_params(42);
  const auto plan = series_plan();
  std::string json_by_backend[2];
  const char* backends[2] = {"calendar", "heap"};
  for (int i = 0; i < 2; ++i) {
    ::setenv("ECNPROBE_SCHEDULER", backends[i], 1);
    World world(params);
    world.run_campaign(plan);
    json_by_backend[i] = obs::to_json(world.campaign_obs());
  }
  ::unsetenv("ECNPROBE_SCHEDULER");
  ASSERT_NE(json_by_backend[0].find("\"timeseries\""), std::string::npos);
  EXPECT_EQ(json_by_backend[0], json_by_backend[1]);
}

TEST(WorldTimeSeries, DisabledSeriesKeepsLegacyExports) {
  auto params = series_params(42);
  params.timeseries = obs::TimeSeriesConfig{};  // off (the default)
  World world(params);
  EXPECT_FALSE(world.obs().timeseries.armed());
  world.run_campaign(series_plan());
  EXPECT_TRUE(world.campaign_obs().timeseries.empty());
  EXPECT_EQ(obs::to_json(world.campaign_obs()).find("timeseries"),
            std::string::npos);
}

}  // namespace
}  // namespace ecnprobe::scenario
