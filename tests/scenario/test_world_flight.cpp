// Flight-recorder integration through the campaign executors: the recorded
// event stream (and both export formats) must be byte-identical between a
// sequential World::run_campaign and the sharded executor at any worker
// count, and a fixed-seed capture must match the committed golden pcapng
// byte for byte (regenerate with ECNPROBE_UPDATE_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "ecnprobe/obs/flight_export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

WorldParams recording_params() {
  auto p = WorldParams::small(61);
  p.server_count = 12;
  p.ect_udp_firewalled_servers = 2;
  p.offline_prob = 0.08;
  p.flight_recorder_capacity = 1 << 16;
  return p;
}

measure::CampaignPlan recording_plan() {
  measure::CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"UGla wired", 1, 1});
  plan.entries.push_back({"EC2 Vir", 2, 2});
  plan.entries.push_back({"EC2 Tok", 2, 1});
  return plan;
}

std::string pcapng_bytes(const std::vector<obs::FlightEvent>& events) {
  std::ostringstream os;
  obs::write_pcapng(os, events);
  return os.str();
}

TEST(WorldFlightRecorder, DisabledByDefaultAndRecordsNothing) {
  auto params = recording_params();
  params.flight_recorder_capacity = 0;
  World world(params);
  EXPECT_FALSE(world.obs().recorder.armed());
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 1});
  world.run_campaign(plan);
  EXPECT_TRUE(world.campaign_flights().empty());
}

TEST(WorldFlightRecorder, SequentialAndShardedRecordingsAreByteIdentical) {
  const auto params = recording_params();
  const auto plan = recording_plan();

  World sequential(params);
  sequential.run_campaign(plan);
  const auto& reference = sequential.campaign_flights();
  ASSERT_FALSE(reference.empty());

  // The stream covers the full event taxonomy's core: sends, forwards,
  // replies -- and, with firewalled servers in the world, drops.
  std::set<obs::SpanEvent> kinds;
  for (const auto& event : reference) kinds.insert(event.type);
  EXPECT_TRUE(kinds.contains(obs::SpanEvent::ProbeSent));
  EXPECT_TRUE(kinds.contains(obs::SpanEvent::HopForward));
  EXPECT_TRUE(kinds.contains(obs::SpanEvent::ReplyReceived));
  EXPECT_TRUE(kinds.contains(obs::SpanEvent::PolicyDrop));

  const auto reference_pcap = pcapng_bytes(reference);
  const auto reference_json = obs::to_chrome_trace_json(reference);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    std::vector<obs::FlightEvent> events;
    run_parallel_campaign(params, plan, {}, workers, nullptr, nullptr, nullptr, 0,
                          &events);
    ASSERT_EQ(events.size(), reference.size());
    EXPECT_TRUE(events == reference);  // structural equality, event for event
    EXPECT_EQ(pcapng_bytes(events), reference_pcap);
    EXPECT_EQ(obs::to_chrome_trace_json(events), reference_json);
  }
}

TEST(WorldFlightRecorder, GoldenPcapngMatchesByteForByte) {
  // Tiny fixed-seed campaign: 3 servers, one trace. The committed capture
  // pins the full export stack -- event taxonomy, span keys, epoch-relative
  // timestamps, wire bytes, pcapng framing. An intentional format change
  // regenerates it with: ECNPROBE_UPDATE_GOLDEN=1 ./test_scenario
  auto params = WorldParams::small(7);
  params.server_count = 3;
  params.flight_recorder_capacity = 4096;
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 1});

  World world(params);
  world.run_campaign(plan);
  const auto bytes = pcapng_bytes(world.campaign_flights());
  ASSERT_FALSE(world.campaign_flights().empty());

  const std::string golden_path = std::string(ECNPROBE_GOLDEN_DIR) + "/flight_small.pcapng";
  if (std::getenv("ECNPROBE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << bytes;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto golden = buffer.str();
  ASSERT_EQ(bytes.size(), golden.size());
  EXPECT_TRUE(bytes == golden) << "flight recording drifted from the golden capture";
}

}  // namespace
}  // namespace ecnprobe::scenario
