// Additional world-level behaviours: discovery determinism, the congestion
// hook, vantage pathologies, zone membership, and the return-path
// (ECN-reflecting) extension.
#include <gtest/gtest.h>

#include "ecnprobe/ntp/ntp.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

WorldParams tiny_params(std::uint64_t seed = 61) {
  auto p = WorldParams::small(seed);
  p.server_count = 24;
  p.offline_prob = 0.0;
  p.rate_limited_fraction = 0.0;
  p.greylist_flaky_prob = 0.0;
  p.greylist_dead_prob = 0.0;
  return p;
}

// First pool member with no pathological middlebox in front of it.
std::size_t plain_server(const World& world) {
  for (std::size_t i = 0; i < world.servers().size(); ++i) {
    const auto& s = world.servers()[i];
    if (!s.firewalled_ect_udp && !s.ect_required && !s.ec2_sensitive) return i;
  }
  return 0;
}

TEST(WorldExtras, DiscoveryIsDeterministicPerSeed) {
  World a(tiny_params());
  World b(tiny_params());
  const auto found_a = a.run_discovery("UGla wired", 20);
  const auto found_b = b.run_discovery("UGla wired", 20);
  ASSERT_EQ(found_a.size(), found_b.size());
  for (std::size_t i = 0; i < found_a.size(); ++i) EXPECT_EQ(found_a[i], found_b[i]);
}

TEST(WorldExtras, PoolZonesCoverEveryServer) {
  World world(tiny_params());
  auto zones = world.zones();
  // The global zone holds the full pool.
  EXPECT_EQ(zones->member_count("pool.ntp.org"), world.servers().size());
  // Region/country zones exist and are non-empty.
  std::size_t regional_members = 0;
  for (const auto& name : zones->zone_names()) {
    if (name == "pool.ntp.org") continue;
    regional_members += zones->member_count(name);
  }
  // Each geolocated server appears in a continent zone and a country zone.
  EXPECT_GE(regional_members, (world.servers().size() - 1) * 2 - 2);
}

TEST(WorldExtras, McQuistinAccessDropsEctPreferentially) {
  World world(tiny_params(62));
  auto& mcquistin = world.vantage("McQuistin home");
  auto& perkins = world.vantage("Perkins home");
  const auto target = world.servers()[plain_server(world)].address;

  auto count_failures = [&](measure::Vantage& vantage) {
    int failures = 0;
    int done = 0;
    std::function<void(int)> go = [&](int remaining) {
      if (remaining == 0) return;
      ntp::NtpQueryOptions options;
      options.ecn = wire::Ecn::Ect0;
      options.max_attempts = 1;  // amplify per-packet differences
      vantage.ntp().query(target, options, [&, remaining](const ntp::NtpQueryResult& r) {
        ++done;
        failures += r.success ? 0 : 1;
        go(remaining - 1);
      });
    };
    go(60);
    world.sim().run();
    EXPECT_EQ(done, 60);
    return failures;
  };

  const int mcq = count_failures(mcquistin);
  const int perk = count_failures(perkins);
  // The ToS-sensitive home access drops a large share of single-shot ECT
  // probes; Perkins' clean access almost none.
  EXPECT_GT(mcq, perk + 10);
}

TEST(WorldExtras, CongestionHookMarksEctTraffic) {
  World world(tiny_params(63));
  const auto target_index = plain_server(world);
  world.enable_congestion_at_server(target_index, /*mark_prob=*/1.0, /*drop_prob=*/0.0);
  // Make the server a reflecting responder so marks are measurable
  // end-to-end on the return path (where the congestion sits).
  auto& server = world.server(target_index);
  ntp::NtpServerService::Params reflecting;
  reflecting.reflect_ecn = true;
  server.ntp_service.reset();
  server.ntp_service = std::make_unique<ntp::NtpServerService>(*server.host,
                                                               world.clock(), reflecting);

  auto& vantage = world.vantage("UGla wired");
  ntp::NtpQueryOptions options;
  options.ecn = wire::Ecn::Ect0;
  std::optional<ntp::NtpQueryResult> result;
  vantage.ntp().query(server.address, options,
                      [&](const ntp::NtpQueryResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result);
  ASSERT_TRUE(result->success);
  // The reflected ECT(0) response crossed the congested uplink: CE-marked,
  // not dropped -- ECN working as designed.
  EXPECT_EQ(result->response_ecn, wire::Ecn::Ce);
}

TEST(WorldExtras, ReflectingResponderRevealsReturnPath) {
  World world(tiny_params(64));
  auto& server = world.server(plain_server(world));
  ntp::NtpServerService::Params reflecting;
  reflecting.reflect_ecn = true;
  server.ntp_service.reset();
  server.ntp_service = std::make_unique<ntp::NtpServerService>(*server.host,
                                                               world.clock(), reflecting);
  auto& vantage = world.vantage("EC2 Vir");
  ntp::NtpQueryOptions options;
  options.ecn = wire::Ecn::Ect0;
  std::optional<ntp::NtpQueryResult> result;
  vantage.ntp().query(server.address, options,
                      [&](const ntp::NtpQueryResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result && result->success);
  // No bleacher between them in this tiny world: the mark survives both
  // directions.
  EXPECT_EQ(result->response_ecn, wire::Ecn::Ect0);
}

TEST(WorldExtras, UnmodifiedResponderStaysNotEct) {
  World world(tiny_params(65));
  auto& vantage = world.vantage("EC2 Tok");
  ntp::NtpQueryOptions options;
  options.ecn = wire::Ecn::Ect0;
  std::optional<ntp::NtpQueryResult> result;
  vantage.ntp().query(world.servers()[plain_server(world)].address, options,
                      [&](const ntp::NtpQueryResult& r) { result = r; });
  world.sim().run();
  ASSERT_TRUE(result && result->success);
  EXPECT_EQ(result->response_ecn, wire::Ecn::NotEct);  // real NTP behaviour
}

TEST(WorldExtras, ScaledParamsAreMonotonic) {
  const auto full = WorldParams::paper();
  int last_servers = 0;
  for (const double f : {0.05, 0.2, 0.5, 1.0}) {
    const auto scaled = full.scaled(f);
    EXPECT_GT(scaled.server_count, last_servers);
    last_servers = scaled.server_count;
    EXPECT_LE(scaled.server_count, full.server_count);
    EXPECT_GE(scaled.ect_udp_firewalled_servers, 1);
  }
}

}  // namespace
}  // namespace ecnprobe::scenario
