// Tentpole robustness properties: fault-injected campaigns stay
// byte-identical across executors, checkpointed campaigns resume
// byte-identically after a simulated crash, and poisoned traces are
// quarantined with drop-ledger attribution instead of aborting the run.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/measure/journal.hpp"
#include "ecnprobe/obs/codec.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

std::string campaign_csv(const std::vector<measure::Trace>& traces) {
  std::ostringstream os;
  measure::write_traces_csv(os, traces);
  return os.str();
}

WorldParams chaos_params() {
  auto params = WorldParams::small(77);
  params.server_count = 8;
  params.faults = *chaos::FaultPlan::parse("wan-chaos,chaos-links=2");
  return params;
}

measure::CampaignPlan plan_of(int per_vantage) {
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, per_vantage});
  plan.entries.push_back({"EC2 Vir", 1, per_vantage});
  plan.entries.push_back({"McQuistin home", 2, per_vantage});
  return plan;
}

measure::JournalMeta meta_for(const WorldParams& params,
                              const measure::CampaignPlan& plan) {
  measure::JournalMeta meta;
  meta.plan = measure::plan_fingerprint(plan);
  meta.faults = params.faults.fingerprint();
  meta.seed = params.seed;
  meta.total_traces = plan.total_traces();
  meta.server_count = params.server_count;
  return meta;
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(WorldChaos, FaultedCampaignByteIdenticalAcrossWorkers) {
  const auto params = chaos_params();
  const auto plan = plan_of(2);

  World world(params);
  const auto seq = world.run_campaign(plan);
  const auto seq_csv = campaign_csv(seq);
  const auto seq_obs = obs::encode_obs(world.campaign_obs());

  // Same (profile, seed) reruns to the same bytes...
  World again(params);
  EXPECT_EQ(campaign_csv(again.run_campaign(plan)), seq_csv);
  EXPECT_EQ(obs::encode_obs(again.campaign_obs()), seq_obs);

  // ...and sharding must not change a single byte, results or metrics.
  for (const int workers : {2, 8}) {
    obs::ObsSnapshot par_obs;
    const auto par = run_parallel_campaign(params, plan, {}, workers, nullptr, &par_obs);
    EXPECT_EQ(campaign_csv(par), seq_csv) << workers << " workers";
    EXPECT_EQ(obs::encode_obs(par_obs), seq_obs) << workers << " workers";
  }
}

TEST(WorldChaos, SequentialResumeAfterCrashByteIdentical) {
  const auto params = chaos_params();
  const auto plan = plan_of(10);  // 30 traces
  const auto meta = meta_for(params, plan);

  World baseline_world(params);
  const auto baseline = baseline_world.run_campaign(plan);
  const auto baseline_csv = campaign_csv(baseline);
  const auto baseline_obs = obs::encode_obs(baseline_world.campaign_obs());

  for (const int kill_after : {1, 13, 29}) {
    TempFile file("chaos_seq_resume_" + std::to_string(kill_after));
    std::string error;
    {
      // The "crashed" run: journals every completed trace, halts mid-plan.
      measure::CampaignJournal journal;
      ASSERT_TRUE(journal.open(file.path, meta, &error)) << error;
      World world(params);
      const auto partial =
          world.run_campaign(plan, {}, nullptr, &journal, kill_after);
      EXPECT_EQ(partial.size(), static_cast<std::size_t>(kill_after));
      EXPECT_EQ(journal.entries().size(), static_cast<std::size_t>(kill_after));
    }
    // The resumed run: replays the journal, runs the remainder live.
    measure::CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, meta, &error)) << error;
    EXPECT_EQ(journal.entries().size(), static_cast<std::size_t>(kill_after));
    World world(params);
    const auto resumed = world.run_campaign(plan, {}, nullptr, &journal);
    EXPECT_EQ(campaign_csv(resumed), baseline_csv) << "kill after " << kill_after;
    EXPECT_EQ(obs::encode_obs(world.campaign_obs()), baseline_obs)
        << "kill after " << kill_after;
  }
}

TEST(WorldChaos, ParallelResumeAfterCrashByteIdentical) {
  const auto params = chaos_params();
  const auto plan = plan_of(10);  // 30 traces
  const auto meta = meta_for(params, plan);
  const int workers = 4;

  obs::ObsSnapshot baseline_obs;
  const auto baseline =
      run_parallel_campaign(params, plan, {}, workers, nullptr, &baseline_obs);
  const auto baseline_csv = campaign_csv(baseline);

  for (const int kill_after : {1, 13, 29}) {
    TempFile file("chaos_par_resume_" + std::to_string(kill_after));
    std::string error;
    {
      measure::CampaignJournal journal;
      ASSERT_TRUE(journal.open(file.path, meta, &error)) << error;
      (void)run_parallel_campaign(params, plan, {}, workers, nullptr, nullptr,
                                  &journal, kill_after);
      // Which traces got claimed before the halt is scheduling-dependent,
      // but at least the halt quota must have been journaled.
      EXPECT_GE(journal.entries().size(), static_cast<std::size_t>(kill_after));
      EXPECT_LT(journal.entries().size(), static_cast<std::size_t>(plan.total_traces()));
    }
    measure::CampaignJournal journal;
    ASSERT_TRUE(journal.open(file.path, meta, &error)) << error;
    obs::ObsSnapshot resumed_obs;
    const auto resumed = run_parallel_campaign(params, plan, {}, workers, nullptr,
                                               &resumed_obs, &journal);
    EXPECT_EQ(campaign_csv(resumed), baseline_csv) << "kill after " << kill_after;
    EXPECT_EQ(obs::encode_obs(resumed_obs), obs::encode_obs(baseline_obs))
        << "kill after " << kill_after;
  }
}

TEST(WorldChaos, PoisonedTraceQuarantinedOthersUnaffected) {
  auto params = WorldParams::small(91);
  params.server_count = 10;
  const auto plan = plan_of(2);  // 6 traces

  World clean_world(params);
  const auto clean = clean_world.run_campaign(plan);
  ASSERT_EQ(clean.size(), 6u);

  auto poisoned_params = params;
  poisoned_params.faults = *chaos::FaultPlan::parse("none,poison=3");
  World world(poisoned_params);
  std::vector<measure::TraceFailure> failures;
  const auto traces = world.run_campaign(plan, {}, nullptr, nullptr, 0, &failures);

  // The poisoned trace is quarantined and attributed, not fatal.
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 3);
  EXPECT_NE(failures[0].message.find("poison"), std::string::npos);
  EXPECT_EQ(world.campaign_obs().ledger.drops_for_cause("trace-quarantined"), 1u);

  // Every surviving trace is byte-identical to its fault-free counterpart.
  ASSERT_EQ(traces.size(), clean.size() - 1);
  std::vector<measure::Trace> clean_minus;
  for (const auto& trace : clean) {
    if (trace.index != 3) clean_minus.push_back(trace);
  }
  EXPECT_EQ(campaign_csv(traces), campaign_csv(clean_minus));

  // The sharded executor quarantines the same trace and produces the same
  // bytes, results and observability alike.
  std::vector<measure::ParallelCampaign::TraceFailure> par_failures;
  obs::ObsSnapshot par_obs;
  const auto par = run_parallel_campaign(poisoned_params, plan, {}, 2, &par_failures,
                                         &par_obs);
  EXPECT_EQ(campaign_csv(par), campaign_csv(traces));
  ASSERT_EQ(par_failures.size(), 1u);
  EXPECT_EQ(par_failures[0].index, 3);
  EXPECT_EQ(obs::encode_obs(par_obs), obs::encode_obs(world.campaign_obs()));
}

TEST(WorldChaos, TruncatedQuotesReadAsUnknownNotBleached) {
  auto params = WorldParams::small(5);
  params.server_count = 10;
  params.faults = *chaos::FaultPlan::parse(
      "icmp-degraded,icmp-blackhole-routers=0,quote-truncate-links=12,"
      "quote-truncate-prob=1.0");
  World world(params);
  const auto observations = world.run_traceroutes(1);

  int truncated_hops = 0;
  for (const auto& obs : observations) {
    for (const auto& hop : obs.path.hops) {
      if (!hop.responded || !hop.quote_truncated) continue;
      ++truncated_hops;
      // A truncated quote means the ECN field was never observed: the hop
      // must not read as intact *or* bleached.
      EXPECT_FALSE(hop.ecn_known);
      EXPECT_FALSE(hop.ecn_intact());
    }
  }
  ASSERT_GT(truncated_hops, 0) << "fault plan injected no truncations";

  const auto hops = analysis::analyze_hops(observations, world.ip2as());
  EXPECT_GT(hops.ecn_unknown_hops, 0u);
  EXPECT_GT(hops.total_hops, 0u);
}

}  // namespace
}  // namespace ecnprobe::scenario
