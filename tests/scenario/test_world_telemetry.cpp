// The telemetry fidelity knob, end to end through the scenario layer:
//
//  * exact mode (the default) must write --metrics-out files byte-identical
//    to the committed golden captured before the telemetry layer existed;
//  * sketched mode must produce bit-identical aggregates sequentially and
//    under --workers N (the estimators are pure functions of config, seed,
//    and trace stream);
//  * sketched estimates must reconcile with an exact-mode run of the same
//    world within the declared one-sided epsilon bound, across seeds and
//    worker counts;
//  * head-based sampling must keep flight events only for sampled traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

WorldParams chaos_params(std::uint64_t seed) {
  auto p = WorldParams::small(seed);
  p.server_count = 12;
  p.ect_udp_firewalled_servers = 3;
  p.offline_prob = 0.1;
  return p;
}

measure::CampaignPlan chaos_plan() {
  measure::CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"EC2 Vir", 2, 2});
  return plan;
}

obs::TelemetryConfig sketched_config() {
  obs::TelemetryConfig config;
  config.mode = obs::TelemetryMode::Sketched;
  config.epsilon = 0.005;
  config.sample_every = 2;
  config.reservoir = 4;
  return config;
}

TEST(WorldTelemetry, ExactModeMetricsFilesMatchGolden) {
  // Mirrors `ecnprobe campaign --scale 0.05 --seed 42 --metrics-out ...`,
  // which produced the committed golden on the pre-telemetry build: exact
  // mode must stay byte-identical, with no telemetry key and no sketch
  // exposition. Regenerate with ECNPROBE_UPDATE_GOLDEN=1 ./test_scenario.
  auto params = WorldParams::paper().scaled(0.05);
  params.seed = 42;
  const auto plan = measure::CampaignPlan::paper_layout(1, 1, 1);
  World world(params);
  EXPECT_FALSE(world.obs().telemetry.armed());
  world.run_campaign(plan);
  EXPECT_FALSE(world.campaign_telemetry().active());

  const std::string out_json = testing::TempDir() + "metrics_exact.json";
  const std::string out_prom = testing::TempDir() + "metrics_exact.prom";
  ASSERT_TRUE(obs::write_metrics_files(out_json, world.campaign_obs(), nullptr));
  const auto json = read_file(out_json);
  const auto prom = read_file(out_prom);
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(prom.empty());

  const std::string golden_json = std::string(ECNPROBE_GOLDEN_DIR) + "/metrics_exact.json";
  const std::string golden_prom = std::string(ECNPROBE_GOLDEN_DIR) + "/metrics_exact.prom";
  if (std::getenv("ECNPROBE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream(golden_json, std::ios::binary) << json;
    std::ofstream(golden_prom, std::ios::binary) << prom;
    GTEST_SKIP() << "goldens regenerated";
  }
  EXPECT_EQ(json, read_file(golden_json))
      << "exact-mode JSON drifted from the pre-telemetry golden";
  EXPECT_EQ(prom, read_file(golden_prom))
      << "exact-mode Prometheus exposition drifted from the pre-telemetry golden";
  EXPECT_EQ(json.find("telemetry"), std::string::npos);
}

TEST(WorldTelemetry, SketchedAggregateIsByteIdenticalAcrossWorkerCounts) {
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{7}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto params = chaos_params(seed);
    params.telemetry = sketched_config();
    const auto plan = chaos_plan();

    World sequential(params);
    ASSERT_TRUE(sequential.obs().telemetry.armed());
    sequential.run_campaign(plan);
    const auto& reference = sequential.campaign_telemetry();
    ASSERT_TRUE(reference.active());
    EXPECT_GT(reference.counts().total(), 0u);
    const auto reference_json = obs::to_json(reference);
    const auto reference_prom = obs::to_prometheus(reference);
    const auto reference_report =
        obs::render_metrics_report_json(sequential.campaign_obs(), nullptr, &reference);

    for (const int workers : {1, 2, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      obs::ObsSnapshot metrics;
      obs::TelemetryAggregate aggregate;
      run_parallel_campaign(params, plan, {}, workers, nullptr, &metrics, nullptr, 0,
                            nullptr, &aggregate);
      ASSERT_TRUE(aggregate.active());
      EXPECT_EQ(obs::to_json(aggregate), reference_json);
      EXPECT_EQ(obs::to_prometheus(aggregate), reference_prom);
      EXPECT_EQ(obs::render_metrics_report_json(metrics, nullptr, &aggregate),
                reference_report);
    }
  }
}

TEST(WorldTelemetry, SketchedEstimatesReconcileWithExactRun) {
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{7}}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto plan = chaos_plan();

    // Truth: the same world in exact mode. Telemetry recording makes no
    // simulation RNG draws, so both modes see identical drop streams.
    auto exact_params = chaos_params(seed);
    World exact(exact_params);
    exact.run_campaign(plan);
    const auto& truth = exact.campaign_obs().ledger;
    ASSERT_GT(truth.total_drops(), 0u);

    auto sketched_params = chaos_params(seed);
    sketched_params.telemetry = sketched_config();
    World sketched(sketched_params);
    sketched.run_campaign(plan);
    const auto& aggregate = sketched.campaign_telemetry();
    ASSERT_TRUE(aggregate.active());
    const auto bound = aggregate.error_bound();

    for (const auto& [key, count] : truth.drops) {
      const std::string sketch_key = "cause:" + key.first + "/" + key.second;
      const auto estimate = aggregate.estimate(sketch_key);
      EXPECT_GE(estimate, count) << sketch_key;
      EXPECT_LE(estimate, count + bound) << sketch_key;
    }
    for (const auto& [key, count] : truth.rewrites) {
      const std::string sketch_key = "rewrite:" + key.first + "/" + key.second;
      const auto estimate = aggregate.estimate(sketch_key);
      EXPECT_GE(estimate, count) << sketch_key;
      EXPECT_LE(estimate, count + bound) << sketch_key;
    }
    // The estimated ledger reconstruction reconciles the same way.
    const auto estimated = obs::estimated_ledger(aggregate);
    for (const auto& [key, count] : truth.drops) {
      const auto it = estimated.drops.find(key);
      ASSERT_NE(it, estimated.drops.end()) << key.first << "/" << key.second;
      EXPECT_GE(it->second, count);
    }
  }
}

TEST(WorldTelemetry, HeadSamplingKeepsFlightEventsForSampledTracesOnly) {
  auto params = chaos_params(61);
  params.flight_recorder_capacity = 1 << 14;
  params.telemetry = sketched_config();  // sample_every = 2
  World world(params);
  world.run_campaign(chaos_plan());
  const auto& flights = world.campaign_flights();
  ASSERT_FALSE(flights.empty());
  for (const auto& event : flights) {
    EXPECT_EQ(event.key.trace % 2, 0)
        << "unsampled trace " << event.key.trace << " leaked a flight event";
  }
  // Unsampled traces still contribute to the sketch.
  const auto& aggregate = world.campaign_telemetry();
  EXPECT_GT(aggregate.traces_folded(), aggregate.sampled_exact_traces());
}

TEST(WorldTelemetry, SketchedLedgerKeepsOnlySampledTraceRows) {
  auto params = chaos_params(61);
  params.telemetry = sketched_config();
  World world(params);
  world.run_campaign(chaos_plan());
  // The exact ledger rows that survive sketched mode all come from
  // sampled traces, so campaign drop totals are <= the sketch stream.
  const auto& obs_ledger = world.campaign_obs().ledger;
  const auto& aggregate = world.campaign_telemetry();
  EXPECT_LE(obs_ledger.total_drops() + obs_ledger.total_rewrites(),
            aggregate.counts().total());
}

}  // namespace
}  // namespace ecnprobe::scenario
