// The probe-lifecycle supervisor through the full world: the paper-fixed
// default must reproduce the committed golden campaign artefacts byte for
// byte, a fully-armed supervisor (backoff + jitter + hedging + breakers +
// pacer + watchdog) must stay byte-identical sequential vs --workers 8,
// breakers must measurably shorten a blackhole-heavy campaign with every
// skipped probe attributed, and the watchdog must cancel stalled server
// probes with attribution.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "ecnprobe/measure/results.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

std::string traces_csv(const std::vector<measure::Trace>& traces) {
  std::ostringstream os;
  measure::write_traces_csv(os, traces);
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

WorldParams blackhole_params(std::uint64_t seed = 51) {
  auto params = WorldParams::small(seed);
  params.server_count = 18;
  const auto faults = chaos::FaultPlan::parse("blackhole-heavy");
  EXPECT_TRUE(faults);
  params.faults = *faults;
  return params;
}

measure::ProbeOptions armed_supervisor() {
  measure::ProbeOptions probe;
  auto& sched = probe.sched;
  sched.retry.kind = sched::RetryPolicy::Kind::Backoff;
  sched.retry.max_attempts = 4;
  sched.retry.base_timeout = util::SimDuration::millis(600);
  sched.retry.backoff_factor = 2.0;
  sched.retry.max_timeout = util::SimDuration::seconds(3);
  sched.retry.jitter = 0.25;
  sched.retry.total_budget = util::SimDuration::seconds(6);
  sched.retry.hedge_delay = util::SimDuration::millis(250);
  sched.breaker.enabled = true;
  sched.breaker.failure_threshold = 2;
  sched.breaker.half_open_after = 3;
  sched.pacer.enabled = true;
  sched.pacer.rate_per_sec = 400.0;
  sched.pacer.burst = 2;
  sched.pacer.per_dest_gap = util::SimDuration::millis(1);
  sched.watchdog.deadline = util::SimDuration::seconds(20);
  return probe;
}

TEST(WorldSched, PaperDefaultMatchesGoldenArtifacts) {
  // Exactly the pre-supervisor seed campaign: WorldParams::small(42) and
  // this plan produced the committed golden files from the unmodified
  // tree. If this test fails the default policy is no longer invisible.
  // Intentional output changes regenerate via ECNPROBE_UPDATE_GOLDEN=1.
  World world(WorldParams::small(42));
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"McQuistin home", 1, 1});
  plan.entries.push_back({"EC2 Tok", 2, 2});
  const auto traces = world.run_campaign(plan);
  const std::string csv = traces_csv(traces);
  const std::string json = obs::to_json(world.campaign_obs());

  const std::string dir(ECNPROBE_GOLDEN_DIR);
  if (std::getenv("ECNPROBE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream(dir + "/campaign_default.csv", std::ios::binary) << csv;
    std::ofstream(dir + "/campaign_default.json", std::ios::binary) << json;
    GTEST_SKIP() << "golden campaign artefacts regenerated";
  }
  const std::string golden_csv = read_file(dir + "/campaign_default.csv");
  const std::string golden_json = read_file(dir + "/campaign_default.json");
  ASSERT_FALSE(golden_csv.empty()) << "missing golden campaign_default.csv";
  ASSERT_FALSE(golden_json.empty()) << "missing golden campaign_default.json";
  EXPECT_TRUE(csv == golden_csv) << "campaign CSV drifted from the golden bytes";
  EXPECT_TRUE(json == golden_json) << "campaign obs JSON drifted from the golden bytes";
  // The paper default also creates no supervisor metric families.
  EXPECT_EQ(json.find("sched_"), std::string::npos);
}

TEST(WorldSched, ArmedSupervisorShardsByteIdentically) {
  // Every supervisor feature at once, on a blackhole-heavy world so the
  // breakers, hedges, and watchdog all actually fire -- then the sequential
  // run and the sharded executor must still agree byte for byte.
  const auto params = blackhole_params();
  const auto probe = armed_supervisor();
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"Perkins home", 1, 1});
  plan.entries.push_back({"EC2 Vir", 2, 2});

  World sequential(params);
  const auto reference = sequential.run_campaign(plan, probe);
  const std::string reference_csv = traces_csv(reference);
  const std::string reference_json = obs::to_json(sequential.campaign_obs());

  // The supervisor was genuinely exercised, not idle.
  EXPECT_NE(reference_json.find("sched_retry_attempts_total"), std::string::npos);
  EXPECT_NE(reference_json.find("sched_breaker_transitions_total"), std::string::npos);
  EXPECT_NE(reference_json.find("sched_hedges_total"), std::string::npos);
  EXPECT_GT(sequential.campaign_obs().ledger.drops_for_cause("circuit-open"), 0u);

  for (const int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    obs::ObsSnapshot metrics;
    const auto traces =
        run_parallel_campaign(params, plan, probe, workers, nullptr, &metrics);
    EXPECT_TRUE(traces_csv(traces) == reference_csv);
    EXPECT_TRUE(obs::to_json(metrics) == reference_json);
  }
}

TEST(WorldSched, BreakersRouteAroundBlackholedServers) {
  // Enough servers that the deterministic savings from skipped probes
  // dominate: skipping sends also shifts the epoch RNG stream, so a few
  // probes elsewhere in the trace can flip outcome (a flipped timeout
  // costs ~5 sim-s); at this scale the breakers win on every seed.
  auto params = blackhole_params(77);
  params.server_count = 48;
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 1});

  World plain(params);
  plain.run_campaign(plan);
  const auto plain_now = plain.sim().now();
  const auto plain_events = plain.sim().events_processed();
  EXPECT_EQ(plain.campaign_obs().ledger.drops_for_cause("circuit-open"), 0u);

  measure::ProbeOptions probe;
  probe.sched.breaker.enabled = true;
  probe.sched.breaker.failure_threshold = 2;
  probe.sched.breaker.half_open_after = 4;
  World breakered(params);
  const auto breakered_traces = breakered.run_campaign(plan, probe);

  // Routing around the corpses finishes the campaign in less simulated
  // time AND less simulator work.
  EXPECT_LT(breakered.sim().now(), plain_now);
  EXPECT_LT(breakered.sim().events_processed(), plain_events);

  // Every skipped probe is attributed: the circuit-open ledger count is
  // exactly the sched_breaker_skips_total sum, and it is not zero.
  const auto& obs = breakered.campaign_obs();
  const auto skipped = obs.ledger.drops_for_cause("circuit-open");
  EXPECT_GT(skipped, 0u);
  std::uint64_t counted = 0;
  const auto family = obs.metrics.families.find("sched_breaker_skips_total");
  ASSERT_NE(family, obs.metrics.families.end());
  for (const auto& [labels, sample] : family->second.samples) counted += sample.counter;
  EXPECT_EQ(counted, skipped);

  // Same plan, same params, same config: the breakered run is itself
  // reproducible.
  World again(params);
  const auto replay = again.run_campaign(plan, probe);
  EXPECT_TRUE(traces_csv(replay) == traces_csv(breakered_traces));
}

TEST(WorldSched, WatchdogCancelsStalledServerProbes) {
  const auto params = blackhole_params(91);
  measure::CampaignPlan plan;
  plan.entries.push_back({"UGla wired", 1, 1});

  measure::ProbeOptions probe;
  probe.sched.watchdog.deadline = util::SimDuration::seconds(8);
  World world(params);
  const auto traces = world.run_campaign(plan, probe);
  ASSERT_EQ(traces.size(), 1u);
  // Cancelled servers still report a (failed) result row; nothing vanishes.
  EXPECT_EQ(traces[0].servers.size(), static_cast<std::size_t>(params.server_count));

  const auto& obs = world.campaign_obs();
  const auto cancelled = obs.ledger.drops_for_cause("watchdog-cancelled");
  EXPECT_GT(cancelled, 0u);
  const std::string json = obs::to_json(obs);
  EXPECT_NE(json.find("sched_watchdog_cancellations_total"), std::string::npos);

  // A watchdog-cancelled campaign still shards byte-identically.
  obs::ObsSnapshot metrics;
  const auto sharded = run_parallel_campaign(params, plan, probe, 8, nullptr, &metrics);
  EXPECT_TRUE(traces_csv(sharded) == traces_csv(traces));
  EXPECT_TRUE(obs::to_json(metrics) == json);
}

}  // namespace
}  // namespace ecnprobe::scenario
