// End-to-end: a small campaign through the calibrated world reproduces the
// paper's qualitative findings -- the full pipeline the benches run at paper
// scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace ecnprobe::scenario {
namespace {

WorldParams campaign_params() {
  auto p = WorldParams::small(33);
  p.server_count = 30;
  p.ect_udp_firewalled_servers = 2;
  p.ect_required_servers = 1;
  p.ec2_sensitive_servers = 1;
  p.offline_prob = 0.05;
  return p;
}

measure::CampaignPlan tiny_plan() {
  measure::CampaignPlan plan;
  plan.entries.push_back({"Perkins home", 1, 2});
  plan.entries.push_back({"McQuistin home", 1, 2});
  plan.entries.push_back({"UGla wired", 1, 2});
  plan.entries.push_back({"EC2 Vir", 2, 2});
  plan.entries.push_back({"EC2 Tok", 2, 2});
  return plan;
}

struct CampaignTest : ::testing::Test {
  World world{campaign_params()};
  std::vector<measure::Trace> traces;

  void SetUp() override { traces = world.run_campaign(tiny_plan()); }
};

TEST_F(CampaignTest, ProducesPlannedTraceCount) {
  ASSERT_EQ(traces.size(), 10u);
  for (const auto& trace : traces) {
    EXPECT_EQ(trace.servers.size(), 30u);
  }
}

TEST_F(CampaignTest, MostServersReachableBothWays) {
  const auto summary = analysis::summarize_reachability(traces);
  // Availability ~95%, so plain reachability is high.
  EXPECT_GT(summary.mean_reachable_udp_plain, 20.0);
  // ECT reachability given plain is high but below 100% (2 firewalled of 30).
  EXPECT_GT(summary.mean_pct_ect_given_plain, 80.0);
  EXPECT_LT(summary.mean_pct_ect_given_plain, 100.0);
}

TEST_F(CampaignTest, FirewalledServersShowPersistentDifferential) {
  const auto diffs = analysis::per_server_differential(traces);
  std::vector<std::string> vantages;
  for (const auto& trace : traces) {
    if (std::find(vantages.begin(), vantages.end(), trace.vantage) == vantages.end()) {
      vantages.push_back(trace.vantage);
    }
  }
  const auto persistent = analysis::persistent_failures(diffs, vantages, 50.0);
  std::set<std::uint32_t> truth;
  for (const auto& addr : world.ground_truth_firewalled()) truth.insert(addr.value());
  // Every ground-truth firewalled server is rediscovered by the analysis
  // (it may also catch an unlucky transient, but must find at least these).
  int found = 0;
  for (const auto& addr : persistent) {
    if (truth.contains(addr.value())) ++found;
  }
  EXPECT_EQ(found, static_cast<int>(truth.size()));
}

TEST_F(CampaignTest, EctRequiredServerReachableOnlyWithEct) {
  const PoolServer* oddball = nullptr;
  for (const auto& server : world.servers()) {
    if (server.ect_required) oddball = &server;
  }
  ASSERT_NE(oddball, nullptr);
  int plain_ok = 0;
  int ect_ok = 0;
  for (const auto& trace : traces) {
    for (const auto& s : trace.servers) {
      if (s.server != oddball->address) continue;
      plain_ok += s.udp_plain.reachable ? 1 : 0;
      ect_ok += s.udp_ect0.reachable ? 1 : 0;
    }
  }
  EXPECT_EQ(plain_ok, 0);
  EXPECT_GT(ect_ok, 0);
}

TEST_F(CampaignTest, Ec2SensitiveServerFailsPlainUdpOnlyFromEc2) {
  const PoolServer* phoenix = nullptr;
  for (const auto& server : world.servers()) {
    if (server.ec2_sensitive) phoenix = &server;
  }
  ASSERT_NE(phoenix, nullptr);
  int home_plain_ok = 0;
  int home_plain_total = 0;
  int ec2_plain_ok = 0;
  int ec2_plain_total = 0;
  for (const auto& trace : traces) {
    const bool is_ec2 = trace.vantage.rfind("EC2", 0) == 0;
    for (const auto& s : trace.servers) {
      if (s.server != phoenix->address) continue;
      if (is_ec2) {
        ++ec2_plain_total;
        ec2_plain_ok += s.udp_plain.reachable ? 1 : 0;
      } else {
        ++home_plain_total;
        home_plain_ok += s.udp_plain.reachable ? 1 : 0;
      }
    }
  }
  ASSERT_GT(ec2_plain_total, 0);
  ASSERT_GT(home_plain_total, 0);
  EXPECT_EQ(ec2_plain_ok, 0);        // EC2's not-ECT UDP is filtered
  EXPECT_GT(home_plain_ok, 0);       // homes are fine
}

TEST_F(CampaignTest, TcpEcnNegotiationTracksServerCapability) {
  // Every server that negotiated in a trace must be web_ecn in ground truth.
  std::map<std::uint32_t, const PoolServer*> by_addr;
  for (const auto& server : world.servers()) by_addr[server.address.value()] = &server;
  for (const auto& trace : traces) {
    for (const auto& s : trace.servers) {
      if (s.tcp_ecn.connected && s.tcp_ecn.ecn_negotiated) {
        EXPECT_TRUE(by_addr.at(s.server.value())->web_ecn);
      }
      if (s.tcp_plain.got_response) {
        EXPECT_TRUE(by_addr.at(s.server.value())->runs_web);
      }
    }
  }
}

TEST_F(CampaignTest, TraceroutesDetectBleachersButNoCe) {
  traceroute::TracerouteOptions options;
  options.timeout = util::SimDuration::millis(300);
  const auto observations = world.run_traceroutes(2, options);
  EXPECT_EQ(observations.size(), 13u * 30u * 2u);
  const auto analysis = analysis::analyze_hops(observations, world.ip2as());
  EXPECT_GT(analysis.total_hops, 0u);
  // Bleachers exist, so some strips show; most hops still pass.
  EXPECT_GT(analysis.pct_hops_passing(), 50.0);
  EXPECT_EQ(analysis.ce_marks_seen, 0u);  // matches the paper: no CE observed
}

TEST_F(CampaignTest, CsvRoundTripOfRealCampaign) {
  std::ostringstream os;
  measure::write_traces_csv(os, traces);
  std::istringstream is(os.str());
  const auto loaded = measure::read_traces_csv(is);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), traces.size());
  const auto original = analysis::summarize_reachability(traces);
  const auto reloaded = analysis::summarize_reachability(*loaded);
  EXPECT_DOUBLE_EQ(original.mean_pct_ect_given_plain, reloaded.mean_pct_ect_given_plain);
  EXPECT_DOUBLE_EQ(original.pct_tcp_negotiating_ecn, reloaded.pct_tcp_negotiating_ecn);
}

}  // namespace
}  // namespace ecnprobe::scenario
