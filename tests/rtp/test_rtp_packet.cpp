#include "ecnprobe/rtp/rtp_packet.hpp"

#include <gtest/gtest.h>

#include "ecnprobe/util/rng.hpp"

namespace ecnprobe::rtp {
namespace {

TEST(RtpPacket, EncodeDecodeRoundTrip) {
  RtpPacket packet;
  packet.header.marker = true;
  packet.header.payload_type = 111;
  packet.header.sequence = 0xBEEF;
  packet.header.timestamp = 0x12345678;
  packet.header.ssrc = 0xCAFEBABE;
  packet.payload = {1, 2, 3, 4, 5};

  const auto bytes = packet.encode();
  ASSERT_EQ(bytes.size(), RtpHeader::kSize + 5);
  EXPECT_EQ(bytes[0] >> 6, 2);  // version

  const auto decoded = RtpPacket::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->header.marker);
  EXPECT_EQ(decoded->header.payload_type, 111);
  EXPECT_EQ(decoded->header.sequence, 0xBEEF);
  EXPECT_EQ(decoded->header.timestamp, 0x12345678u);
  EXPECT_EQ(decoded->header.ssrc, 0xCAFEBABEu);
  EXPECT_EQ(decoded->payload, packet.payload);
}

TEST(RtpPacket, DecodeRejectsTruncatedAndWrongVersion) {
  std::vector<std::uint8_t> tiny(11, 0);
  EXPECT_FALSE(RtpPacket::decode(tiny));

  RtpPacket packet;
  auto bytes = packet.encode();
  bytes[0] = 0x40;  // version 1
  EXPECT_FALSE(RtpPacket::decode(bytes));
}

TEST(RtpPacket, DecodeSkipsCsrcList) {
  RtpPacket packet;
  packet.payload = {0xAA};
  auto bytes = packet.encode();
  // Rewrite CC = 2 and splice in two CSRCs before the payload.
  bytes[0] = static_cast<std::uint8_t>(bytes[0] | 0x02);
  std::vector<std::uint8_t> csrcs(8, 0x11);
  bytes.insert(bytes.begin() + RtpHeader::kSize, csrcs.begin(), csrcs.end());
  const auto decoded = RtpPacket::decode(bytes);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->payload.size(), 1u);
  EXPECT_EQ(decoded->payload[0], 0xAA);
}

TEST(RtpPacket, EmptyPayloadLegal) {
  RtpPacket packet;
  const auto decoded = RtpPacket::decode(packet.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(EcnSummary, RoundTrip) {
  EcnSummary summary;
  summary.ssrc = 42;
  summary.ext_highest_seq = 100000;
  summary.ect0_count = 900;
  summary.ect1_count = 1;
  summary.ce_count = 17;
  summary.not_ect_count = 3;
  summary.lost_packets = 12;
  summary.jitter_us = 2500;

  const auto decoded = EcnSummary::decode(summary.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->ssrc, 42u);
  EXPECT_EQ(decoded->ext_highest_seq, 100000u);
  EXPECT_EQ(decoded->ect0_count, 900u);
  EXPECT_EQ(decoded->ce_count, 17u);
  EXPECT_EQ(decoded->not_ect_count, 3u);
  EXPECT_EQ(decoded->lost_packets, 12u);
  EXPECT_EQ(decoded->jitter_us, 2500u);
  EXPECT_EQ(decoded->received_total(), 921u);
}

TEST(EcnSummary, DecodeRejectsWrongTagAndTruncation) {
  EcnSummary summary;
  auto bytes = summary.encode();
  auto wrong_tag = bytes;
  wrong_tag[0] = 0x00;
  EXPECT_FALSE(EcnSummary::decode(wrong_tag));
  bytes.pop_back();
  EXPECT_FALSE(EcnSummary::decode(bytes));
}

TEST(RtpPacket, PropertyRandomHeadersRoundTrip) {
  util::Rng rng(404);
  for (int i = 0; i < 200; ++i) {
    RtpPacket packet;
    packet.header.marker = rng.bernoulli(0.5);
    packet.header.payload_type = static_cast<std::uint8_t>(rng.next_below(128));
    packet.header.sequence = static_cast<std::uint16_t>(rng.next_u64());
    packet.header.timestamp = static_cast<std::uint32_t>(rng.next_u64());
    packet.header.ssrc = static_cast<std::uint32_t>(rng.next_u64());
    packet.payload.resize(rng.next_below(64));
    for (auto& b : packet.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto decoded = RtpPacket::decode(packet.encode());
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->header.sequence, packet.header.sequence);
    EXPECT_EQ(decoded->header.ssrc, packet.header.ssrc);
    EXPECT_EQ(decoded->payload, packet.payload);
  }
}

}  // namespace
}  // namespace ecnprobe::rtp
