// The RFC 6679 media-session lifecycle over the simulated network: ECN
// initiation, verification, fallback on firewalls and bleachers, and
// CE-driven rate adaptation -- the application behaviour the paper's
// measurements de-risk.
#include "ecnprobe/rtp/media.hpp"

#include <gtest/gtest.h>

#include "../netsim/mini_net.hpp"

namespace ecnprobe::rtp {
namespace {

using namespace ecnprobe::util::literals;
using netsim::testutil::Chain;

struct MediaFixture {
  Chain chain;
  MediaReceiver receiver;
  MediaSender sender;

  explicit MediaFixture(MediaSender::Config sender_config = {},
                        netsim::LinkParams link = {})
      : chain(2, 1.0, link),
        receiver(*chain.host_b, MediaReceiver::Config{}),
        sender(*chain.host_a, chain.host_b->address(), 5004, sender_config) {}

  void run_for(util::SimDuration duration) {
    sender.start();
    chain.sim.run_until(chain.sim.now() + duration);
    sender.stop();
    receiver.stop();
    chain.sim.run();  // drain in-flight packets; nothing re-arms now
  }
};

TEST(Media, CleanPathVerifiesEcnAndStreams) {
  MediaFixture f;
  f.run_for(3_s);
  EXPECT_EQ(f.sender.ecn_state(), MediaSender::EcnState::Capable);
  EXPECT_TRUE(f.sender.stats().verified);
  EXPECT_FALSE(f.sender.stats().fell_back);
  EXPECT_GT(f.sender.stats().packets_sent, 100u);
  EXPECT_GT(f.receiver.stats().packets_received, 100u);
  // Everything arrived ECT(0)-marked.
  EXPECT_EQ(f.receiver.stats().not_ect, 0u);
  EXPECT_GT(f.receiver.stats().ect0, 0u);
  EXPECT_GT(f.sender.stats().feedback_reports, 10u);
}

TEST(Media, EcnDisabledSendsNotEct) {
  MediaSender::Config config;
  config.attempt_ecn = false;
  MediaFixture f(config);
  f.run_for(1_s);
  EXPECT_EQ(f.sender.ecn_state(), MediaSender::EcnState::Disabled);
  EXPECT_EQ(f.receiver.stats().ect0, 0u);
  EXPECT_GT(f.receiver.stats().not_ect, 0u);
}

TEST(Media, BleachedPathFallsBackToNotEct) {
  MediaFixture f;
  // Bleacher on the path: marks arrive as not-ECT.
  f.chain.net.add_egress_policy(f.chain.routers[0], 1,
                                std::make_shared<netsim::EcnBleachPolicy>(1.0));
  f.run_for(3_s);
  // Verification sees not-ECT arrivals and falls back: ECN feedback would
  // be blind on this path (RFC 6679 section 7.2.1).
  EXPECT_EQ(f.sender.ecn_state(), MediaSender::EcnState::Failed);
  EXPECT_TRUE(f.sender.stats().fell_back);
  // The session keeps flowing regardless.
  EXPECT_GT(f.receiver.stats().packets_received, 100u);
}

TEST(Media, EctDroppingFirewallTriggersTimeoutFallback) {
  MediaFixture f;
  // The paper's firewall: ECT-marked UDP is silently dropped.
  f.chain.net.add_egress_policy(f.chain.routers[1], 1,
                                std::make_shared<netsim::EctUdpDropPolicy>());
  f.run_for(5_s);
  EXPECT_EQ(f.sender.ecn_state(), MediaSender::EcnState::Failed);
  EXPECT_TRUE(f.sender.stats().fell_back);
  // After fallback the not-ECT media passes the firewall: the receiver
  // got packets even though every ECT probe died.
  EXPECT_GT(f.receiver.stats().packets_received, 50u);
  EXPECT_EQ(f.receiver.stats().ect0, 0u);
  EXPECT_GT(f.receiver.stats().not_ect, 0u);
}

TEST(Media, CeMarksDriveRateDown) {
  MediaFixture f;
  // Congested bottleneck marking 20% of ECT packets CE.
  f.chain.net.add_egress_policy(f.chain.routers[0], 1,
                                std::make_shared<netsim::CongestionPolicy>(0.2, 0.2));
  f.run_for(5_s);
  EXPECT_EQ(f.sender.ecn_state(), MediaSender::EcnState::Capable);
  EXPECT_GT(f.receiver.stats().ce, 0u);
  EXPECT_GT(f.sender.stats().ce_reported, 0u);
  EXPECT_GT(f.sender.stats().rate_decreases, 0);
  // Rate backed off from the start rate under persistent CE.
  EXPECT_LT(f.sender.current_bitrate_bps(), 600'000.0);
  // And crucially: CE marking caused no media loss.
  EXPECT_EQ(f.receiver.stats().lost, 0u);
}

TEST(Media, LossDrivesRateDownWithoutEcn) {
  MediaSender::Config config;
  config.attempt_ecn = false;
  netsim::LinkParams lossy;
  lossy.loss_rate = 0.1;
  MediaFixture f(config, lossy);
  f.run_for(5_s);
  EXPECT_GT(f.sender.stats().loss_reported, 0u);
  EXPECT_GT(f.sender.stats().rate_decreases, 0);
  EXPECT_GT(f.receiver.stats().lost, 0u);
}

TEST(Media, CleanPathRampsRateUp) {
  MediaFixture f;
  f.run_for(5_s);
  EXPECT_GT(f.sender.stats().rate_increases, 10);
  EXPECT_GT(f.sender.current_bitrate_bps(), 600'000.0);
  const auto& history = f.sender.stats().rate_history;
  ASSERT_GT(history.size(), 2u);
  EXPECT_GT(history.back().second, history.front().second);
}

TEST(Media, ReceiverTracksLossFromSequenceGaps) {
  netsim::LinkParams lossy;
  lossy.loss_rate = 0.25;
  MediaFixture f({}, lossy);
  f.run_for(3_s);
  const auto& stats = f.receiver.stats();
  ASSERT_GT(stats.packets_received, 20u);
  EXPECT_GT(stats.lost, 0u);
  // Loss estimate is in the right ballpark for two 25%-lossy links
  // (survival 0.56): lost/(lost+received) ~ 0.44.
  const double loss_rate = static_cast<double>(stats.lost) /
                           static_cast<double>(stats.lost + stats.packets_received);
  EXPECT_NEAR(loss_rate, 0.44, 0.15);
}

TEST(Media, JitterReflectsLinkJitter) {
  netsim::LinkParams smooth;
  MediaFixture calm({}, smooth);
  calm.run_for(2_s);

  netsim::LinkParams bumpy;
  bumpy.jitter = 30_ms;
  MediaFixture rough({}, bumpy);
  rough.run_for(2_s);

  EXPECT_GT(rough.receiver.stats().jitter_us, calm.receiver.stats().jitter_us);
  EXPECT_GT(rough.receiver.stats().jitter_us, 1000u);  // well above 1 ms
}

TEST(Media, ReceiverHandlesSequenceWraparound) {
  // Feed hand-crafted RTP straight at the receiver, with sequence numbers
  // crossing the 16-bit boundary; the extended-sequence logic must not
  // report phantom loss.
  Chain chain(1);
  MediaReceiver receiver(*chain.host_b, MediaReceiver::Config{});
  auto sock = chain.host_a->open_udp();
  std::uint16_t seqs[] = {65533, 65534, 65535, 0, 1, 2};
  std::uint32_t ts = 0;
  for (const auto seq : seqs) {
    RtpPacket packet;
    packet.header.sequence = seq;
    packet.header.timestamp = ts;
    packet.header.ssrc = 7;
    packet.payload.assign(100, 0);
    const auto bytes = packet.encode();
    sock->send(chain.host_b->address(), 5004, bytes, wire::Ecn::NotEct);
    // Bounded advance: the receiver's report timer re-arms forever, so a
    // full run() would never drain.
    chain.sim.run_until(chain.sim.now() + 20_ms);
    ts += 3000;
  }
  receiver.stop();
  chain.sim.run();
  EXPECT_EQ(receiver.stats().packets_received, 6u);
  EXPECT_EQ(receiver.stats().lost, 0u);  // wrap is not loss
}

TEST(Media, ReceiverCountsGapAcrossWraparound) {
  Chain chain(1);
  MediaReceiver receiver(*chain.host_b, MediaReceiver::Config{});
  auto sock = chain.host_a->open_udp();
  // 65534 then 2: three packets (65535, 0, 1) went missing.
  for (const std::uint16_t seq : {65534, 2}) {
    RtpPacket packet;
    packet.header.sequence = seq;
    packet.header.ssrc = 7;
    packet.payload.assign(100, 0);
    const auto bytes = packet.encode();
    sock->send(chain.host_b->address(), 5004, bytes, wire::Ecn::NotEct);
    chain.sim.run_until(chain.sim.now() + 20_ms);
  }
  receiver.stop();
  chain.sim.run();
  EXPECT_EQ(receiver.stats().packets_received, 2u);
  EXPECT_EQ(receiver.stats().lost, 3u);
}

TEST(Media, MalformedRtpIgnored) {
  Chain chain(1);
  MediaReceiver receiver(*chain.host_b, MediaReceiver::Config{});
  auto sock = chain.host_a->open_udp();
  const std::uint8_t junk[] = {0x00, 0x01, 0x02};  // wrong version, too short
  sock->send(chain.host_b->address(), 5004, junk, wire::Ecn::NotEct);
  chain.sim.run_until(chain.sim.now() + 20_ms);
  receiver.stop();
  chain.sim.run();
  EXPECT_EQ(receiver.stats().packets_received, 0u);
}

}  // namespace
}  // namespace ecnprobe::rtp
