// Live-socket tests. The unprivileged UDP/ECN path is exercised over
// loopback (setting ECN bits with IP_TOS and reading them back with
// IP_RECVTOS); raw-socket paths are skipped without CAP_NET_RAW.
#include <gtest/gtest.h>

#include <thread>

#include "ecnprobe/live/live_probe.hpp"
#include "ecnprobe/live/live_socket.hpp"

namespace ecnprobe::live {
namespace {

const wire::Ipv4Address kLoopback(127, 0, 0, 1);

TEST(LiveSocket, OpensAndBindsEphemeral) {
  auto socket = EcnUdpSocket::open();
  ASSERT_TRUE(socket) << socket.error().message;
  EXPECT_GT(socket->local_port(), 0);
}

TEST(LiveSocket, LoopbackRoundTripPreservesEcnBits) {
  auto receiver = EcnUdpSocket::open();
  ASSERT_TRUE(receiver) << receiver.error().message;
  auto sender = EcnUdpSocket::open();
  ASSERT_TRUE(sender) << sender.error().message;

  const std::uint8_t payload[] = {'e', 'c', 'n'};
  for (const auto ecn : {wire::Ecn::NotEct, wire::Ecn::Ect0, wire::Ecn::Ect1}) {
    const auto sent = sender->send(kLoopback, receiver->local_port(), payload, ecn);
    ASSERT_TRUE(sent) << sent.error().message;
    const auto received = receiver->recv(2000);
    ASSERT_TRUE(received) << received.error().message;
    ASSERT_TRUE(received->has_value()) << "timeout waiting for loopback datagram";
    EXPECT_EQ((*received)->ecn, ecn) << "ECN codepoint " << static_cast<int>(ecn);
    EXPECT_EQ((*received)->payload.size(), 3u);
    EXPECT_EQ((*received)->src, kLoopback);
  }
}

TEST(LiveSocket, RecvTimesOutCleanly) {
  auto socket = EcnUdpSocket::open();
  ASSERT_TRUE(socket) << socket.error().message;
  const auto received = socket->recv(50);
  ASSERT_TRUE(received) << received.error().message;
  EXPECT_FALSE(received->has_value());
}

TEST(LiveSocket, LocalAddressForLoopback) {
  const auto addr = local_address_for(kLoopback);
  ASSERT_TRUE(addr) << addr.error().message;
  EXPECT_EQ(*addr, kLoopback);
}

TEST(LiveProbe, NtpAgainstLocalResponder) {
  // Stand up a local "NTP server" on an EcnUdpSocket; because the real NTP
  // port needs privileges, bind an ephemeral port and aim the prober's
  // packets at it by running the responder on port 123 only when possible.
  auto server = EcnUdpSocket::open(0);
  ASSERT_TRUE(server) << server.error().message;

  // live_ntp_probe targets port 123 specifically; without privileges we
  // can't bind it, so only run the full probe when the bind succeeds.
  auto ntp_port = EcnUdpSocket::open(wire::kNtpPort);
  if (!ntp_port) {
    GTEST_SKIP() << "cannot bind UDP/123 (" << ntp_port.error().message
                 << "); skipping live NTP probe test";
  }

  std::thread responder([&ntp_port] {
    auto received = ntp_port->recv(3000);
    if (!received || !received->has_value()) return;
    const auto request = wire::NtpPacket::decode((*received)->payload);
    if (!request) return;
    const auto response = wire::NtpPacket::make_server_response(
        *request, 2, 0x47505300, request->transmit_ts, request->transmit_ts);
    const auto bytes = response.encode();
    (void)ntp_port->send((*received)->src, (*received)->src_port, bytes,
                         wire::Ecn::NotEct);
  });

  const auto result = live_ntp_probe(kLoopback, wire::Ecn::Ect0, 2, 1500);
  responder.join();
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.reachable);
  EXPECT_EQ(result.attempts, 1);
}

TEST(LiveProbe, UnreachableHostExhaustsAttempts) {
  // 127.1.2.3 loopback-range address with nothing listening: silent drop.
  const auto result =
      live_ntp_probe(wire::Ipv4Address(127, 1, 2, 3), wire::Ecn::Ect0, 2, 100);
  EXPECT_TRUE(result.error.empty()) << result.error;
  EXPECT_FALSE(result.reachable);
  EXPECT_EQ(result.attempts, 2);
}

TEST(LiveRaw, CapabilityProbeDoesNotCrash) {
  // Just exercises the code path; result depends on the environment.
  const bool has_raw = has_raw_capability();
  if (!has_raw) {
    const auto sender = RawSender::open();
    EXPECT_FALSE(sender);
  }
}

TEST(LiveRaw, TcpEcnProbeDegradesGracefullyWithoutPrivilege) {
  if (has_raw_capability()) {
    GTEST_SKIP() << "raw sockets available; degradation path not applicable";
  }
  const auto result = live_tcp_ecn_probe(kLoopback, 80, 100);
  EXPECT_FALSE(result.syn_acked);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace ecnprobe::live
