#!/usr/bin/env bash
# Strict CLI argument parsing: every malformed invocation must exit
# non-zero and print a usage message; well-formed fault/checkpoint flags
# must be accepted. Run by ctest as `cli_strict_args` with the ecnprobe
# binary path as $1.
set -u

BIN=${1:?usage: test_cli_args.sh /path/to/ecnprobe}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fails=0

# must_fail <description> <args...>: non-zero exit AND usage text on stderr.
must_fail() {
  local desc=$1
  shift
  local err
  err=$("$BIN" "$@" 2>&1 >/dev/null)
  local rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "FAIL: '$desc' ($*) exited 0, expected non-zero"
    fails=$((fails + 1))
  elif ! printf '%s' "$err" | grep -q "usage:"; then
    echo "FAIL: '$desc' ($*) printed no usage message; stderr was: $err"
    fails=$((fails + 1))
  else
    echo "ok: $desc"
  fi
}

# must_pass <description> <args...>: zero exit.
must_pass() {
  local desc=$1
  shift
  if ! "$BIN" "$@" >/dev/null 2>&1; then
    echo "FAIL: '$desc' ($*) exited non-zero, expected success"
    fails=$((fails + 1))
  else
    echo "ok: $desc"
  fi
}

must_fail "no command"
must_fail "unknown command" frobnicate
must_fail "unknown flag" campaign --frobnicate
must_fail "unknown flag with value" campaign --frobnicate=3
must_fail "missing value" campaign --traces
must_fail "non-numeric workers" campaign --workers banana
must_fail "non-numeric traces" campaign --traces 1.5
must_fail "negative traces" campaign --traces -3
must_fail "zero workers" campaign --workers 0
must_fail "zero scale" campaign --scale 0
must_fail "negative seed" campaign --seed -1
must_fail "trailing garbage in int" campaign --traces 3x
must_fail "unexpected positional" analyze a.csv b.csv

# Probe-supervision flags are strict too: out-of-range retry/pace/breaker/
# watchdog values must die at argument parsing with a usage message.
must_fail "unknown retry policy" campaign --retry-policy sometimes
must_fail "non-numeric retry max" campaign --retry-max banana
must_fail "zero retry max" campaign --retry-max 0
must_fail "zero retry base" campaign --retry-base-ms 0
must_fail "negative retry base" campaign --retry-base-ms -100
must_fail "retry factor below one" campaign --retry-factor 0.5
must_fail "retry jitter at one" campaign --retry-jitter 1.0
must_fail "negative retry jitter" campaign --retry-jitter -0.1
must_fail "negative retry budget" campaign --retry-budget-ms -1
must_fail "negative hedge delay" campaign --retry-hedge-ms -5
must_fail "hedge without backoff" campaign --retry-policy paper --retry-hedge-ms 100
must_fail "zero pace rate" campaign --pace-rate 0
must_fail "non-numeric pace rate" campaign --pace-rate fast
must_fail "zero pace burst" campaign --pace-burst 0
must_fail "negative pace gap" campaign --pace-dest-gap-ms -2
must_fail "zero breaker failures" campaign --breaker-failures 0
must_fail "zero breaker half-open" campaign --breaker-half-open 0
must_fail "zero watchdog deadline" campaign --watchdog-ms 0
must_fail "missing supervision value" campaign --retry-base-ms

# Live-plane flags: the port must be a bare integer in [0, 65535].
must_fail "non-numeric serve-obs port" campaign --serve-obs banana
must_fail "out-of-range serve-obs port" campaign --serve-obs 70000
must_fail "negative serve-obs port" campaign --serve-obs -1
must_fail "missing serve-obs value" campaign --serve-obs

# Errors detected past argument parsing report their own message (no usage
# text): bad fault specs and resuming a journal that does not exist.
must_fail_plain() {
  local desc=$1
  shift
  if "$BIN" "$@" >/dev/null 2>&1; then
    echo "FAIL: '$desc' ($*) exited 0, expected non-zero"
    fails=$((fails + 1))
  else
    echo "ok: $desc"
  fi
}

must_fail_plain "unknown fault profile" campaign --scale 0.02 --traces 1 --faults lolwut
must_fail_plain "bad fault override" campaign --scale 0.02 --traces 1 \
  --faults none,corrupt-prob=x
must_fail_plain "--resume missing journal" campaign --scale 0.02 --traces 1 \
  --resume "$TMP/absent.journal"
must_fail_plain "bad timeseries spec" campaign --scale 0.02 --traces 1 \
  --timeseries banana
must_fail_plain "zero timeseries window" campaign --scale 0.02 --traces 1 \
  --timeseries window-ms=0

must_pass "plain campaign" campaign --scale 0.02 --traces 1 --out "$TMP/t.csv"
must_pass "faulted campaign with checkpoint" campaign --scale 0.02 --traces 2 \
  --faults none,poison=1 --checkpoint "$TMP/run.journal" --out "$TMP/t2.csv"
must_pass "resume of that checkpoint" campaign --scale 0.02 --traces 2 \
  --faults none,poison=1 --resume "$TMP/run.journal" --out "$TMP/t3.csv"
must_pass "timeseries campaign" campaign --scale 0.02 --traces 1 \
  --timeseries 250 --out "$TMP/t5.csv"

# --metrics-out - streams the metrics JSON to stdout (and only the JSON:
# progress chatter stays on stderr), so it must parse as a JSON object.
out=$("$BIN" campaign --scale 0.02 --traces 1 --timeseries 250 \
  --out "$TMP/t6.csv" --metrics-out - 2>/dev/null)
case $out in
  '{'*'}')
    if printf '%s' "$out" | grep -q '"timeseries"'; then
      echo "ok: --metrics-out - streams JSON with timeseries to stdout"
    else
      echo "FAIL: --metrics-out - JSON lacks timeseries section: $out"
      fails=$((fails + 1))
    fi
    ;;
  *)
    echo "FAIL: --metrics-out - did not print a JSON object on stdout: $out"
    fails=$((fails + 1))
    ;;
esac

must_pass "fully supervised campaign" campaign --scale 0.02 --traces 1 \
  --retry-policy backoff --retry-max 4 --retry-base-ms 500 --retry-factor 2 \
  --retry-jitter 0.2 --retry-budget-ms 8000 --retry-hedge-ms 250 \
  --breaker-failures 2 --breaker-half-open 3 \
  --pace-rate 200 --pace-burst 2 --pace-dest-gap-ms 5 --watchdog-ms 20000 \
  --out "$TMP/t4.csv"

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI argument checks failed"
  exit 1
fi
echo "all CLI argument checks passed"
