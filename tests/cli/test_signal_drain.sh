#!/usr/bin/env bash
# SIGINT/SIGTERM drain for the checkpointed batch CLI: a campaign killed
# via signal must exit with code 3 and a resumable journal (no partial
# exports), and the --resume run must finish the plan with CSV + metrics
# byte-identical to a never-interrupted run.
set -u

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

fail() { echo "test_signal_drain: $1" >&2; exit 1; }

SPEC=(--scale 0.05 --traces 120 --seed 5 --workers 1)

# Reference: the uninterrupted run.
"$CLI" campaign "${SPEC[@]}" --out "$DIR/ref.csv" --metrics-out "$DIR/ref.json" \
  2>/dev/null || fail "reference run failed"

# Checkpointed run, interrupted mid-flight.
"$CLI" campaign "${SPEC[@]}" --checkpoint "$DIR/run.journal" \
  --out "$DIR/run.csv" --metrics-out "$DIR/run.json" 2>"$DIR/run.err" &
PID=$!
sleep 0.3
kill -INT "$PID" 2>/dev/null
wait "$PID"
CODE=$?
[ "$CODE" -eq 3 ] || fail "expected drain exit code 3, got $CODE (stderr: $(cat "$DIR/run.err"))"
grep -q "interrupted (signal" "$DIR/run.err" || fail "missing drain message"
[ -s "$DIR/run.journal" ] || fail "no checkpoint journal left behind"
# Partial exports are skipped: the resume run produces the real ones.
[ -e "$DIR/run.csv" ] && fail "drained run wrote a partial CSV"

# Resume to completion.
"$CLI" campaign "${SPEC[@]}" --resume "$DIR/run.journal" \
  --out "$DIR/run.csv" --metrics-out "$DIR/run.json" 2>/dev/null \
  || fail "resume run failed"

cmp -s "$DIR/run.csv" "$DIR/ref.csv" || fail "resumed CSV differs from uninterrupted run"
cmp -s "$DIR/run.json" "$DIR/ref.json" || fail "resumed metrics JSON differs"
cmp -s "$DIR/run.prom" "$DIR/ref.prom" || fail "resumed metrics .prom differs"

echo "ok: drained with exit 3, resumed byte-identically"
