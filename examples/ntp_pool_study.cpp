// End-to-end reproduction of the paper at a configurable scale: discover
// the pool via DNS, run the measurement campaign from all 13 vantage
// points, run the ECN traceroutes, and print every figure and table.
//
//   $ ./ntp_pool_study                  # 10% scale (250 servers), quick
//   $ ./ntp_pool_study 1.0              # full paper scale (2500 servers, 210 traces)
//   $ ./ntp_pool_study 1.0 --workers=8  # campaign sharded across 8 threads
//   $ ./ntp_pool_study --metrics-out metrics.json   # export metrics + ledger
//
// --workers=N runs the campaign through the sharded parallel executor
// (one isolated world clone per worker); the merged results -- and the
// campaign metrics/drop-ledger in --metrics-out -- are byte-identical to
// the sequential run, just faster on a multicore box.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/analysis/trend.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  double scale = 0.1;
  int workers = 1;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg.rfind("--workers=", 0) == 0) workers = std::atoi(arg.c_str() + 10);
    else if (arg == "--workers") workers = std::atoi(next_value());
    else if (arg.rfind("--metrics-out=", 0) == 0) metrics_out = arg.substr(14);
    else if (arg == "--metrics-out") metrics_out = next_value();
    else scale = std::atof(arg.c_str());
  }
  if (workers < 1) workers = 1;

  auto params = scenario::WorldParams::paper().scaled(scale);
  std::printf("== ECN-with-UDP measurement study (scale %.2f: %d servers) ==\n\n",
              scale, params.server_count);
  scenario::World world(params);

  // -- Section 3: discovery ------------------------------------------------
  std::printf("[1/4] discovering the pool via round-robin DNS...\n");
  const auto discovered =
      world.run_discovery("UGla wired", 40 + params.server_count / 12);
  std::printf("      %zu servers discovered\n\n", discovered.size());

  std::printf("Table 1 / Figure 1: geographic distribution\n");
  const auto geo_summary = analysis::summarize_geo(discovered, world.geodb());
  std::printf("%s\n%s\n", analysis::render_table1(geo_summary).c_str(),
              analysis::render_figure1(geo_summary, 72, 20).c_str());

  // -- Section 4.1 / 4.3: the campaign --------------------------------------
  const auto plan = measure::CampaignPlan::paper_layout(
      std::max(1, static_cast<int>(9 * scale)), std::max(1, static_cast<int>(12 * scale)),
      std::max(1, static_cast<int>(14 * scale)));
  std::printf("[2/4] running the measurement campaign (%d traces, %d worker%s)...\n",
              plan.total_traces(), workers, workers == 1 ? "" : "s");
  obs::ObsSnapshot campaign_obs;
  obs::MetricsSnapshot runtime_metrics;
  bool have_runtime = false;
  std::vector<measure::Trace> traces;
  if (workers > 1) {
    measure::ParallelCampaign::Options exec;
    exec.workers = workers;
    measure::ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
    traces = campaign.run(plan);
    campaign_obs = campaign.metrics();
    runtime_metrics = campaign.runtime_metrics();
    have_runtime = true;
  } else {
    traces = world.run_campaign(plan);
    campaign_obs = world.campaign_obs();
  }

  const auto per_trace = analysis::per_trace_reachability(traces);
  std::printf("\nFigure 2a: ECT(0)-reachability of not-ECT-reachable servers\n%s\n",
              analysis::render_figure2a(per_trace).c_str());
  std::printf("Figure 2b: converse\n%s\n",
              analysis::render_figure2b(per_trace).c_str());

  const auto diffs = analysis::per_server_differential(traces);
  std::printf("Figure 3a: per-server differential reachability (aggregate)\n%s\n",
              analysis::render_figure3a(diffs).c_str());
  std::printf("Figure 3b: converse\n%s\n",
              analysis::render_figure3b(diffs).c_str());

  std::printf("Figure 5: TCP reachability and ECN negotiation\n%s\n",
              analysis::render_figure5(per_trace, params.server_count).c_str());

  const auto summary = analysis::summarize_reachability(traces);
  std::printf("Figure 6: adoption trend with our measured point\n%s\n",
              analysis::render_figure6(
                  analysis::trend_with_measurement(summary.pct_tcp_negotiating_ecn))
                  .c_str());

  std::printf("Table 2: UDP vs TCP ECN failure correlation\n%s\n",
              analysis::render_table2(analysis::correlation_table(traces)).c_str());

  // Loss autopsy: the drop ledger's answer to "why is that Figure 2 cell
  // unreachable" -- every failed probe above has an attributed cause here.
  const auto autopsy = obs::render_loss_autopsy(campaign_obs.ledger);
  if (!autopsy.empty()) std::printf("%s\n", autopsy.c_str());

  // -- Section 4.2: traceroutes ---------------------------------------------
  std::printf("[3/4] running ECN traceroutes from all vantages...\n");
  const auto observations = world.run_traceroutes(2);
  const auto hops = analysis::analyze_hops(observations, world.ip2as());
  std::printf("\n%s\n",
              analysis::render_figure4(hops, observations, 10).c_str());

  // -- headline summary ------------------------------------------------------
  std::printf("[4/4] headline numbers vs the paper:\n%s\n",
              analysis::render_summary(summary).c_str());

  if (!metrics_out.empty()) {
    if (!obs::write_metrics_files(metrics_out, campaign_obs,
                                  have_runtime ? &runtime_metrics : nullptr)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics written to %s (+ Prometheus sibling)\n", metrics_out.c_str());
  }
  return 0;
}
