// End-to-end reproduction of the paper at a configurable scale: discover
// the pool via DNS, run the measurement campaign from all 13 vantage
// points, run the ECN traceroutes, and print every figure and table.
//
//   $ ./ntp_pool_study                  # 10% scale (250 servers), quick
//   $ ./ntp_pool_study 1.0              # full paper scale (2500 servers, 210 traces)
//   $ ./ntp_pool_study 1.0 --workers=8  # campaign sharded across 8 threads
//   $ ./ntp_pool_study --metrics-out metrics.json   # export metrics + ledger
//   $ ./ntp_pool_study --faults wan-chaos --checkpoint run.journal
//   $ ./ntp_pool_study --resume run.journal         # continue a killed run
//   $ ./ntp_pool_study --record flight              # flight.pcapng + flight.trace.json
//   $ ./ntp_pool_study --faults blackhole-heavy --sched backoff,breaker-failures=3
//   $ ./ntp_pool_study 1.0 --telemetry sketched      # O(servers) telemetry memory
//   $ ./ntp_pool_study --timeseries 500              # 500 ms sim-time series windows
//   $ ./ntp_pool_study --serve-obs 9100 --workers=4  # live /metrics /progress /events
//
// --workers=N runs the campaign through the sharded parallel executor
// (one isolated world clone per worker); the merged results -- and the
// campaign metrics/drop-ledger in --metrics-out -- are byte-identical to
// the sequential run, just faster on a multicore box. --faults injects a
// named fault profile (see docs/robustness.md); --checkpoint journals
// every completed trace so a killed run resumes byte-identically with
// --resume; --halt-after N simulates the kill.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/analysis/trend.hpp"
#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/http/obs_server.hpp"
#include "ecnprobe/measure/journal.hpp"
#include "ecnprobe/measure/parallel_campaign.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/obs/flight_export.hpp"
#include "ecnprobe/scenario/world.hpp"
#include "ecnprobe/sched/policy.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  double scale = 0.1;
  int workers = 1;
  int halt_after = 0;
  bool resume = false;
  std::string metrics_out;
  std::string faults_spec = "none";
  std::string sched_spec = "paper";
  std::string checkpoint;
  std::string record;
  std::string telemetry_spec = "exact";
  std::string timeseries_spec = "off";
  int serve_obs = -1;  // --serve-obs PORT: -1 = off, 0 = ephemeral
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg.rfind("--workers=", 0) == 0) workers = std::atoi(arg.c_str() + 10);
    else if (arg == "--workers") workers = std::atoi(next_value());
    else if (arg.rfind("--metrics-out=", 0) == 0) metrics_out = arg.substr(14);
    else if (arg == "--metrics-out") metrics_out = next_value();
    else if (arg.rfind("--faults=", 0) == 0) faults_spec = arg.substr(9);
    else if (arg == "--faults") faults_spec = next_value();
    else if (arg.rfind("--sched=", 0) == 0) sched_spec = arg.substr(8);
    else if (arg == "--sched") sched_spec = next_value();
    else if (arg.rfind("--checkpoint=", 0) == 0) checkpoint = arg.substr(13);
    else if (arg == "--checkpoint") checkpoint = next_value();
    else if (arg.rfind("--resume=", 0) == 0) { checkpoint = arg.substr(9); resume = true; }
    else if (arg == "--resume") { checkpoint = next_value(); resume = true; }
    else if (arg.rfind("--halt-after=", 0) == 0) halt_after = std::atoi(arg.c_str() + 13);
    else if (arg == "--halt-after") halt_after = std::atoi(next_value());
    else if (arg.rfind("--record=", 0) == 0) record = arg.substr(9);
    else if (arg == "--record") record = next_value();
    else if (arg.rfind("--telemetry=", 0) == 0) telemetry_spec = arg.substr(12);
    else if (arg == "--telemetry") telemetry_spec = next_value();
    else if (arg.rfind("--timeseries=", 0) == 0) timeseries_spec = arg.substr(13);
    else if (arg == "--timeseries") timeseries_spec = next_value();
    else if (arg.rfind("--serve-obs=", 0) == 0) serve_obs = std::atoi(arg.c_str() + 12);
    else if (arg == "--serve-obs") serve_obs = std::atoi(next_value());
    else scale = std::atof(arg.c_str());
  }
  if (workers < 1) workers = 1;

  auto params = scenario::WorldParams::paper().scaled(scale);
  const auto faults = chaos::FaultPlan::parse(faults_spec);
  if (!faults) {
    std::fprintf(stderr, "ntp_pool_study: %s\n", faults.error().message.c_str());
    return 2;
  }
  params.faults = *faults;
  const auto sched = sched::SupervisorConfig::parse(sched_spec);
  if (!sched) {
    std::fprintf(stderr, "ntp_pool_study: %s\n", sched.error().message.c_str());
    return 2;
  }
  const auto telemetry_config = obs::TelemetryConfig::parse(telemetry_spec);
  if (!telemetry_config) {
    std::fprintf(stderr, "ntp_pool_study: %s\n", telemetry_config.error().message.c_str());
    return 2;
  }
  params.telemetry = *telemetry_config;
  const auto timeseries_config = obs::TimeSeriesConfig::parse(timeseries_spec);
  if (!timeseries_config) {
    std::fprintf(stderr, "ntp_pool_study: %s\n",
                 timeseries_config.error().message.c_str());
    return 2;
  }
  params.timeseries = *timeseries_config;
  measure::ProbeOptions probe;
  probe.sched = *sched;
  if (!probe.sched.is_paper_default() && probe.sched.seed == 0) {
    probe.sched.seed = params.seed;
  }
  if (!record.empty()) params.flight_recorder_capacity = 1 << 16;
  std::printf("== ECN-with-UDP measurement study (scale %.2f: %d servers) ==\n\n",
              scale, params.server_count);
  scenario::World world(params);

  // -- Section 3: discovery ------------------------------------------------
  std::printf("[1/4] discovering the pool via round-robin DNS...\n");
  const auto discovered =
      world.run_discovery("UGla wired", 40 + params.server_count / 12);
  std::printf("      %zu servers discovered\n\n", discovered.size());

  std::printf("Table 1 / Figure 1: geographic distribution\n");
  const auto geo_summary = analysis::summarize_geo(discovered, world.geodb());
  std::printf("%s\n%s\n", analysis::render_table1(geo_summary).c_str(),
              analysis::render_figure1(geo_summary, 72, 20).c_str());

  // -- Section 4.1 / 4.3: the campaign --------------------------------------
  const auto plan = measure::CampaignPlan::paper_layout(
      std::max(1, static_cast<int>(9 * scale)), std::max(1, static_cast<int>(12 * scale)),
      std::max(1, static_cast<int>(14 * scale)));
  std::printf("[2/4] running the measurement campaign (%d traces, %d worker%s, faults: %s)...\n",
              plan.total_traces(), workers, workers == 1 ? "" : "s",
              params.faults.name.c_str());

  measure::CampaignJournal journal;
  measure::CampaignJournal* journal_ptr = nullptr;
  if (!checkpoint.empty()) {
    if (resume && !std::ifstream(checkpoint).is_open()) {
      std::fprintf(stderr, "ntp_pool_study: cannot resume: no journal at %s\n",
                   checkpoint.c_str());
      return 1;
    }
    measure::JournalMeta meta;
    meta.plan = measure::plan_fingerprint(plan);
    meta.faults = params.faults.fingerprint();
    meta.seed = params.seed;
    meta.total_traces = plan.total_traces();
    meta.server_count = params.server_count;
    std::string error;
    if (!journal.open(checkpoint, meta, &error)) {
      std::fprintf(stderr, "ntp_pool_study: %s\n", error.c_str());
      return 1;
    }
    journal_ptr = &journal;
    if (!journal.entries().empty()) {
      std::printf("      resuming: %zu of %d traces already journaled\n",
                  journal.entries().size(), plan.total_traces());
    }
  }

  obs::ObsSnapshot campaign_obs;
  obs::MetricsSnapshot runtime_metrics;
  bool have_runtime = false;
  obs::TelemetryAggregate telemetry;
  std::vector<measure::Trace> traces;
  std::vector<measure::TraceFailure> failures;
  std::vector<obs::FlightEvent> flights;
  // The live plane serves from ParallelCampaign's thread-safe snapshots,
  // so --serve-obs routes through the sharded executor even at one worker.
  if (workers > 1 || serve_obs >= 0) {
    measure::ParallelCampaign::Options exec;
    exec.workers = workers;
    exec.probe = probe;
    exec.telemetry = params.telemetry.resolved(params.seed);
    exec.halt_after_traces =
        halt_after > 0 ? halt_after : params.faults.crash_after_traces;
    measure::ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
    if (journal_ptr != nullptr) campaign.set_journal(journal_ptr);
    std::unique_ptr<http::ObsHttpServer> obs_server;
    if (serve_obs >= 0) {
      http::ObsHttpServer::Options server_options;
      server_options.port = static_cast<std::uint16_t>(serve_obs);
      http::ObsHttpServer::Providers providers;
      providers.metrics = [&campaign] {
        const auto snap = campaign.metrics_snapshot();
        return obs::to_prometheus(snap.metrics) + obs::to_prometheus(snap.timeseries);
      };
      providers.progress = [&campaign] {
        const auto p = campaign.progress();
        return std::string("{\"total\":") + std::to_string(p.total) +
               ",\"completed\":" + std::to_string(p.completed) +
               ",\"failed\":" + std::to_string(p.failed) +
               ",\"in_flight\":" + std::to_string(p.in_flight) + "}";
      };
      obs_server =
          std::make_unique<http::ObsHttpServer>(server_options, std::move(providers));
      std::string error;
      if (!obs_server->start(&error)) {
        std::fprintf(stderr, "ntp_pool_study: --serve-obs: %s\n", error.c_str());
        return 1;
      }
      std::printf("      live obs plane: http://127.0.0.1:%u  (/metrics /progress /events)\n",
                  static_cast<unsigned>(obs_server->port()));
    }
    traces = campaign.run(plan);
    failures = campaign.failures();
    campaign_obs = campaign.metrics();
    runtime_metrics = campaign.runtime_metrics();
    have_runtime = true;
    telemetry = campaign.telemetry();
    flights = campaign.flight_events();
  } else {
    traces = world.run_campaign(plan, probe, nullptr, journal_ptr, halt_after, &failures);
    campaign_obs = world.campaign_obs();
    telemetry = world.campaign_telemetry();
    flights = world.campaign_flights();
  }
  if (!record.empty()) {
    if (!obs::write_flight_files(record, flights)) {
      std::fprintf(stderr, "cannot write %s.pcapng / %s.trace.json\n", record.c_str(),
                   record.c_str());
      return 1;
    }
    std::printf("      recorded %zu flight events -> %s.pcapng, %s.trace.json\n",
                flights.size(), record.c_str(), record.c_str());
  }
  for (const auto& failure : failures) {
    std::fprintf(stderr, "      trace %d (%s) quarantined: %s\n", failure.index,
                 failure.vantage.c_str(), failure.message.c_str());
  }

  const auto per_trace = analysis::per_trace_reachability(traces);
  std::printf("\nFigure 2a: ECT(0)-reachability of not-ECT-reachable servers\n%s\n",
              analysis::render_figure2a(per_trace).c_str());
  std::printf("Figure 2b: converse\n%s\n",
              analysis::render_figure2b(per_trace).c_str());

  const auto diffs = analysis::per_server_differential(traces);
  std::printf("Figure 3a: per-server differential reachability (aggregate)\n%s\n",
              analysis::render_figure3a(diffs).c_str());
  std::printf("Figure 3b: converse\n%s\n",
              analysis::render_figure3b(diffs).c_str());

  std::printf("Figure 5: TCP reachability and ECN negotiation\n%s\n",
              analysis::render_figure5(per_trace, params.server_count).c_str());

  const auto summary = analysis::summarize_reachability(traces);
  std::printf("Figure 6: adoption trend with our measured point\n%s\n",
              analysis::render_figure6(
                  analysis::trend_with_measurement(summary.pct_tcp_negotiating_ecn))
                  .c_str());

  std::printf("Table 2: UDP vs TCP ECN failure correlation\n%s\n",
              analysis::render_table2(analysis::correlation_table(traces)).c_str());

  // Loss autopsy: the drop ledger's answer to "why is that Figure 2 cell
  // unreachable" -- every failed probe above has an attributed cause here.
  const auto autopsy = obs::render_loss_autopsy(campaign_obs.ledger);
  if (!autopsy.empty()) std::printf("%s\n", autopsy.c_str());
  if (telemetry.active()) {
    const auto sketched = obs::render_sketched_summary(telemetry);
    if (!sketched.empty()) std::printf("%s\n", sketched.c_str());
  }

  // -- Section 4.2: traceroutes ---------------------------------------------
  std::printf("[3/4] running ECN traceroutes from all vantages...\n");
  const auto observations = world.run_traceroutes(2);
  const auto hops = analysis::analyze_hops(observations, world.ip2as());
  std::printf("\n%s\n",
              analysis::render_figure4(hops, observations, 10).c_str());

  // -- headline summary ------------------------------------------------------
  std::printf("[4/4] headline numbers vs the paper:\n%s\n",
              analysis::render_summary(summary).c_str());

  if (!metrics_out.empty()) {
    if (!obs::write_metrics_files(metrics_out, campaign_obs,
                                  have_runtime ? &runtime_metrics : nullptr,
                                  telemetry.active() ? &telemetry : nullptr)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics written to %s (+ Prometheus sibling)\n", metrics_out.c_str());
  }
  return 0;
}
