// The real-network prober: the same experiment the simulator runs, pointed
// at an actual server. Uses an ordinary UDP socket with IP_TOS to set the
// ECN codepoint (no privileges needed); the crafted ECN-setup-SYN TCP probe
// needs CAP_NET_RAW and is attempted only when available.
//
//   $ ./live_probe 129.215.42.240          # probe one NTP server
//   $ ./live_probe pool-member-ip [port]
//
// Note: sends real packets. Aim it only at servers you are allowed to probe
// (public NTP pool servers answer NTP by design).
#include <cstdio>
#include <cstdlib>

#include "ecnprobe/live/live_probe.hpp"
#include "ecnprobe/live/live_socket.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <server-ipv4> [http-port]\n", argv[0]);
    std::fprintf(stderr, "probes NTP reachability with not-ECT and ECT(0) marked UDP,\n"
                         "then (with CAP_NET_RAW) TCP ECN negotiation.\n");
    return 2;
  }
  const auto server = wire::Ipv4Address::parse(argv[1]);
  if (!server) {
    std::fprintf(stderr, "bad IPv4 address: %s\n", argv[1]);
    return 2;
  }
  const auto http_port = static_cast<std::uint16_t>(argc > 2 ? std::atoi(argv[2]) : 80);

  std::printf("probing %s (paper methodology: 5 requests, 1s timeout each)\n\n",
              server->to_string().c_str());

  for (const auto ecn : {wire::Ecn::NotEct, wire::Ecn::Ect0}) {
    std::printf("NTP over %-8s UDP: ", std::string(wire::to_string(ecn)).c_str());
    std::fflush(stdout);
    const auto result = live::live_ntp_probe(*server, ecn);
    if (!result.error.empty()) {
      std::printf("error (%s)\n", result.error.c_str());
    } else if (result.reachable) {
      std::printf("reachable, rtt %.1f ms, %d attempt%s, response %s\n", result.rtt_ms,
                  result.attempts, result.attempts == 1 ? "" : "s",
                  std::string(wire::to_string(result.response_ecn)).c_str());
    } else {
      std::printf("unreachable after %d attempts\n", result.attempts);
    }
  }

  std::printf("\nTCP ECN negotiation:   ");
  std::fflush(stdout);
  if (!live::has_raw_capability()) {
    std::printf("skipped (needs CAP_NET_RAW for a crafted ECN-setup SYN)\n");
    return 0;
  }
  const auto tcp = live::live_tcp_ecn_probe(*server, http_port);
  if (!tcp.error.empty()) {
    std::printf("error (%s)\n", tcp.error.c_str());
  } else if (!tcp.syn_acked) {
    std::printf("no SYN-ACK (closed port or filtered)\n");
  } else {
    std::printf("SYN-ACK received; ECN %s\n",
                tcp.ecn_negotiated ? "negotiated (ECN-setup SYN-ACK)" : "refused");
  }
  return 0;
}
