// Quickstart: build a small simulated Internet with an NTP pool, probe one
// server the four ways the paper does (UDP, UDP+ECT(0), TCP, TCP+ECN), and
// print the verdicts.
//
//   $ ./quickstart
//
#include <cstdio>

#include "ecnprobe/measure/probe.hpp"
#include "ecnprobe/scenario/world.hpp"

int main() {
  using namespace ecnprobe;

  // A small world: 60 pool servers, a few ECT-dropping firewalls, ECN
  // bleachers, and all 13 of the paper's vantage points.
  scenario::World world(scenario::WorldParams::small(/*seed=*/2015));
  std::printf("built a simulated Internet: %zu nodes, %zu pool servers\n",
              world.net().node_count(), world.servers().size());

  // Probe one healthy server and one known-firewalled server from the
  // University of Glasgow wired vantage.
  auto& vantage = world.vantage("UGla wired");
  const auto targets = {
      world.servers()[0].address,          // ordinary pool member
      world.ground_truth_firewalled()[0],  // behind an ECT-UDP-dropping firewall
  };

  for (const auto target : targets) {
    std::printf("\nprobing %s from '%s'...\n", target.to_string().c_str(),
                vantage.name().c_str());
    bool done = false;
    measure::probe_server(vantage, target, measure::ProbeOptions{},
                          [&](const measure::ServerResult& r) {
                            std::printf("  NTP over not-ECT UDP : %s (%d attempt%s)\n",
                                        r.udp_plain.reachable ? "reachable" : "silent",
                                        r.udp_plain.attempts,
                                        r.udp_plain.attempts == 1 ? "" : "s");
                            std::printf("  NTP over ECT(0) UDP  : %s (%d attempt%s)\n",
                                        r.udp_ect0.reachable ? "reachable" : "silent",
                                        r.udp_ect0.attempts,
                                        r.udp_ect0.attempts == 1 ? "" : "s");
                            if (r.tcp_plain.got_response) {
                              std::printf("  HTTP over TCP        : responded (status %d)\n",
                                          r.tcp_plain.http_status);
                            } else {
                              std::printf("  HTTP over TCP        : no response\n");
                            }
                            std::printf("  HTTP w/ ECN-setup SYN: %s\n",
                                        r.tcp_ecn.connected
                                            ? (r.tcp_ecn.ecn_negotiated
                                                   ? "connected, ECN negotiated"
                                                   : "connected, ECN refused")
                                            : "no connection");
                            done = true;
                          });
    world.sim().run();
    if (!done) std::printf("  (probe did not complete)\n");
  }

  std::printf("\nThe firewalled server answers plain UDP but silently drops ECT(0)\n"
              "marked packets -- the paper's core observation, in miniature.\n");
  return 0;
}
