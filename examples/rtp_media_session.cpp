// The paper's motivating application, end to end: an interactive media
// session (RTP over UDP with RFC 6679 ECN) between two hosts on the
// simulated Internet. Runs the same session over four path conditions and
// shows the RFC 6679 lifecycle doing its job: verify, then use ECN -- or
// fall back and keep the call alive.
//
//   $ ./rtp_media_session
//
#include <cstdio>
#include <memory>

#include "ecnprobe/rtp/media.hpp"
#include "ecnprobe/scenario/world.hpp"

namespace {

using namespace ecnprobe;

const char* state_name(rtp::MediaSender::EcnState s) {
  switch (s) {
    case rtp::MediaSender::EcnState::Disabled: return "disabled";
    case rtp::MediaSender::EcnState::Initiating: return "initiating";
    case rtp::MediaSender::EcnState::Capable: return "capable";
    case rtp::MediaSender::EcnState::Failed: return "fell back";
  }
  return "?";
}

void run_session(const char* label, netsim::PolicyPtr bottleneck_policy) {
  auto params = scenario::WorldParams::small(99);
  params.bleach_inter_as_links = 0;   // path conditions are injected explicitly
  params.bleach_intra_as_links = 0;
  params.ect_udp_firewalled_servers = 0;
  params.ect_required_servers = 0;
  params.ec2_sensitive_servers = 0;
  params.greylist_flaky_prob = 0.0;
  params.greylist_dead_prob = 0.0;
  params.offline_prob = 0.0;
  params.server_count = 4;
  scenario::World world(params);

  // Caller at Perkins home, callee = the first pool host's machine (any
  // host works; media uses its own port).
  auto& caller = world.vantage("Perkins home").host();
  auto& callee = *world.server(0).host;
  if (bottleneck_policy) {
    const auto& att = world.server(0).attachment;
    // Congest/filter the callee's access link in the caller->callee
    // direction.
    world.net().add_egress_policy(att.router, att.router_if, bottleneck_policy);
  }

  rtp::MediaReceiver receiver(callee, rtp::MediaReceiver::Config{});
  rtp::MediaSender sender(caller, callee.address(), 5004, rtp::MediaSender::Config{});
  sender.start();
  world.sim().run_until(world.sim().now() + util::SimDuration::seconds(8));
  sender.stop();
  receiver.stop();
  world.sim().run();  // drain

  const auto& tx = sender.stats();
  const auto& rx = receiver.stats();
  std::printf("%-28s ECN: %-10s rate %4.0f kb/s  delivered %5llu  lost %4u  "
              "CE %4u  jitter %4u us\n",
              label, state_name(sender.ecn_state()),
              sender.current_bitrate_bps() / 1e3,
              static_cast<unsigned long long>(rx.packets_received), rx.lost, rx.ce,
              rx.jitter_us);
  (void)tx;
}

}  // namespace

int main() {
  std::printf("RTP/UDP media sessions with RFC 6679 ECN across four path types\n"
              "(8 simulated seconds each):\n\n");
  run_session("clean path", nullptr);
  run_session("congested AQM (marks CE)",
              std::make_shared<netsim::CongestionPolicy>(0.15, 0.15));
  run_session("ECN bleacher on path", std::make_shared<netsim::EcnBleachPolicy>(1.0));
  run_session("ECT-UDP firewall on path", std::make_shared<netsim::EctUdpDropPolicy>());

  std::printf("\nReading the rows:\n"
              " * clean: verification passes, rate ramps up;\n"
              " * congested: ECN stays usable -- CE marks throttle the sender with\n"
              "   zero media loss;\n"
              " * bleacher: marks arrive as not-ECT, so the sender falls back\n"
              "   (ECN feedback would be blind) but media flows;\n"
              " * firewall: every ECT probe is eaten; the verification timeout\n"
              "   falls back to not-ECT and rescues the call -- the exact failure\n"
              "   the paper set out to measure the prevalence of.\n");
  return 0;
}
