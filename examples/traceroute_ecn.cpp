// ECN-revealing traceroute across the simulated Internet: traces paths to a
// handful of pool servers and draws the per-hop ECN verdicts, including a
// path that crosses an ECN bleacher ("runs of red" in the paper's
// Figure 4).
//
//   $ ./traceroute_ecn [n_targets]
//
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "ecnprobe/scenario/world.hpp"

int main(int argc, char** argv) {
  using namespace ecnprobe;
  const int n_targets = argc > 1 ? std::atoi(argv[1]) : 8;

  auto params = scenario::WorldParams::paper().scaled(0.1);
  // Generous ICMP response rates so the listing reads like a full
  // traceroute; the paper-scale benches use realistic (sparser) rates.
  params.topology.icmp_response_prob_min = 0.9;
  params.topology.icmp_response_prob_max = 1.0;
  scenario::World world(params);
  auto& vantage = world.vantage("UGla wired");

  std::printf("traceroute with ECT(0)-marked UDP probes, from '%s'\n",
              vantage.name().c_str());
  std::printf("legend: hop quoted ECT(0) intact [+], stripped [-], silent [*]\n");

  const auto servers = world.server_addresses();
  int remaining = std::min<int>(n_targets, static_cast<int>(servers.size()));
  int cursor = 0;
  std::function<void()> next = [&]() {
    if (remaining-- <= 0) return;
    const auto target = servers[static_cast<std::size_t>(cursor)];
    cursor += static_cast<int>(servers.size()) / n_targets + 1;
    traceroute::TracerouteOptions options;
    options.probes_per_hop = 2;
    vantage.tracer().trace(target, options, [&, target](const traceroute::PathRecord& r) {
      std::printf("\n-> %s (%d hops probed)\n", target.to_string().c_str(),
                  static_cast<int>(r.hops.size()));
      for (const auto& hop : r.hops) {
        if (!hop.responded) {
          std::printf("  %2d  *               (no response)\n", hop.ttl);
          continue;
        }
        const auto asn = world.ip2as().lookup(hop.responder);
        std::printf("  %2d  %c %-15s AS%-6u quoted %s\n", hop.ttl,
                    hop.ecn_intact() ? '+' : '-', hop.responder.to_string().c_str(),
                    asn ? *asn : 0,
                    std::string(wire::to_string(hop.quoted_ecn)).c_str());
      }
      next();
    });
  };
  next();
  world.sim().run();

  std::printf("\nHops printed '-' sit downstream of an ECN bleacher: the ICMP\n"
              "quotation shows the ECT(0) mark was cleared before reaching them.\n");
  return 0;
}
