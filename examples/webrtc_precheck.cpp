// The paper's motivating use case: an interactive-media application (think
// WebRTC / RTP-over-UDP with RFC 6679 ECN) wants to know whether it is safe
// to send ECT(0)-marked media to a peer before enabling ECN. This example
// implements that pre-flight check against the simulated Internet: probe the
// path with both markings, compare, and recommend.
//
//   $ ./webrtc_precheck
//
#include <cstdio>
#include <functional>

#include "ecnprobe/scenario/world.hpp"

namespace {

using namespace ecnprobe;

struct PrecheckResult {
  bool plain_ok = false;
  bool ect_ok = false;
  double plain_rtt_ms = 0;
  double ect_rtt_ms = 0;
};

// Probes `peer` with both markings (media apps would use STUN-style probes;
// we reuse the NTP responder as the UDP echo service).
void precheck(scenario::World& world, measure::Vantage& vantage,
              wire::Ipv4Address peer, std::function<void(PrecheckResult)> done) {
  auto result = std::make_shared<PrecheckResult>();
  ntp::NtpQueryOptions plain;
  plain.max_attempts = 3;
  vantage.ntp().query(peer, plain, [&world, &vantage, peer, result,
                                    done = std::move(done)](const ntp::NtpQueryResult& r) {
    result->plain_ok = r.success;
    result->plain_rtt_ms = r.rtt.to_millis();
    ntp::NtpQueryOptions ect;
    ect.max_attempts = 3;
    ect.ecn = wire::Ecn::Ect0;
    vantage.ntp().query(peer, ect, [result, done](const ntp::NtpQueryResult& r2) {
      result->ect_ok = r2.success;
      result->ect_rtt_ms = r2.rtt.to_millis();
      done(*result);
    });
  });
}

const char* verdict(const PrecheckResult& r) {
  if (r.plain_ok && r.ect_ok) return "ENABLE ECN: path passes ECT(0)";
  if (r.plain_ok && !r.ect_ok) return "DISABLE ECN: ECT(0) is blocked on this path";
  if (!r.plain_ok && r.ect_ok) return "ODD PATH: only ECT(0) passes (enable ECN)";
  return "PEER UNREACHABLE: hold off entirely";
}

}  // namespace

int main() {
  auto params = scenario::WorldParams::small(7);
  params.server_count = 40;
  params.offline_prob = 0.0;
  scenario::World world(params);
  auto& vantage = world.vantage("Perkins home");

  std::printf("WebRTC-style ECN pre-flight checks from '%s'\n", vantage.name().c_str());
  std::printf("(RFC 6679 requires exactly this kind of probe before an RTP session\n"
              " may send ECT-marked media)\n\n");

  // Check a few peers, including one behind an ECT-dropping firewall.
  std::vector<wire::Ipv4Address> peers = {world.servers()[0].address,
                                          world.servers()[1].address,
                                          world.ground_truth_firewalled()[0]};
  std::size_t cursor = 0;
  std::function<void()> next = [&]() {
    if (cursor >= peers.size()) return;
    const auto peer = peers[cursor++];
    precheck(world, vantage, peer, [&, peer](PrecheckResult r) {
      std::printf("peer %-15s  not-ECT: %-12s ECT(0): %-12s -> %s\n",
                  peer.to_string().c_str(),
                  r.plain_ok ? "ok" : "unreachable",
                  r.ect_ok ? "ok" : "unreachable", verdict(r));
      next();
    });
  };
  next();
  world.sim().run();

  std::printf("\nPer the paper's conclusion, most paths pass ECT(0) and the check\n"
              "comes back ENABLE; the firewalled peer is the exception the\n"
              "pre-flight probe exists to catch.\n");
  return 0;
}
