// ecnprobed: the campaign daemon binary.
//
//   ecnprobed serve --state-dir DIR [--port N] [--concurrency N] ...
//       Runs the daemon until SIGTERM/SIGINT, then drains gracefully:
//       running campaigns checkpoint at their next trace boundary, queued
//       specs stay on disk, and a later `serve` resumes all of them.
//
//   ecnprobed ctl get  http://127.0.0.1:PORT/campaigns [-i]
//   ecnprobed ctl post http://127.0.0.1:PORT/campaigns --body '{"scale":0.05}' [-i]
//       Tiny built-in HTTP client (no curl dependency) for scripts and
//       tests; -i prints "<status> <reason>" before the body. Exit code 0
//       for 2xx/3xx, 1 otherwise.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ecnprobe/daemon/daemon.hpp"
#include "ecnprobe/wire/http.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int signo) { g_signal = signo; }

int usage() {
  std::fprintf(
      stderr,
      "usage: ecnprobed serve --state-dir DIR [--addr A] [--port N]\n"
      "                 [--port-file PATH] [--concurrency N] [--queue N]\n"
      "                 [--tenant-max N] [--max-traces N] [--max-workers N]\n"
      "                 [--watchdog-ms N] [--retry-after N]\n"
      "       ecnprobed ctl get|post URL [--body JSON] [-i]\n");
  return 2;
}

bool parse_int(const char* text, long min, long max, long* out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < min || value > max) return false;
  *out = value;
  return true;
}

int cmd_serve(int argc, char** argv) {
  ecnprobe::daemon::CampaignDaemon::Options options;
  std::string port_file;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    long n = 0;
    if (arg == "--state-dir" && value != nullptr) {
      options.state_dir = value;
      ++i;
    } else if (arg == "--addr" && value != nullptr) {
      options.bind_address = value;
      ++i;
    } else if (arg == "--port" && value != nullptr && parse_int(value, 0, 65535, &n)) {
      options.port = static_cast<std::uint16_t>(n);
      ++i;
    } else if (arg == "--port-file" && value != nullptr) {
      port_file = value;
      ++i;
    } else if (arg == "--concurrency" && value != nullptr && parse_int(value, 1, 64, &n)) {
      options.concurrency = static_cast<int>(n);
      ++i;
    } else if (arg == "--queue" && value != nullptr && parse_int(value, 1, 4096, &n)) {
      options.queue_depth = static_cast<int>(n);
      ++i;
    } else if (arg == "--tenant-max" && value != nullptr && parse_int(value, 1, 4096, &n)) {
      options.tenant_max_active = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-traces" && value != nullptr && parse_int(value, 0, 1 << 20, &n)) {
      options.max_traces = static_cast<int>(n);
      ++i;
    } else if (arg == "--max-workers" && value != nullptr && parse_int(value, 1, 256, &n)) {
      options.max_workers = static_cast<int>(n);
      ++i;
    } else if (arg == "--watchdog-ms" && value != nullptr && parse_int(value, 0, 86400000, &n)) {
      options.watchdog = std::chrono::milliseconds(n);
      ++i;
    } else if (arg == "--retry-after" && value != nullptr && parse_int(value, 0, 3600, &n)) {
      options.retry_after_seconds = static_cast<int>(n);
      ++i;
    } else {
      std::fprintf(stderr, "ecnprobed: bad serve argument '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (options.state_dir.empty()) {
    std::fprintf(stderr, "ecnprobed: --state-dir is required\n");
    return usage();
  }

  ecnprobe::daemon::CampaignDaemon daemon(options);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "ecnprobed: start failed: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream os(port_file, std::ios::trunc);
    os << daemon.port() << "\n";
    if (!os.good()) {
      std::fprintf(stderr, "ecnprobed: cannot write %s\n", port_file.c_str());
      daemon.drain();
      return 1;
    }
  }
  std::fprintf(stderr, "ecnprobed: listening on %s:%u, state in %s\n",
               options.bind_address.c_str(), daemon.port(),
               options.state_dir.c_str());

  g_signal = 0;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "ecnprobed: signal %d, draining\n",
               static_cast<int>(g_signal));
  daemon.drain();
  const auto stats = daemon.stats();
  std::fprintf(stderr,
               "ecnprobed: drained (admitted=%llu completed=%llu "
               "cancelled=%llu failed=%llu shed=%llu)\n",
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.cancelled),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.shed_queue_full +
                                               stats.shed_tenant_budget));
  return 0;
}

bool split_url(const std::string& url, std::string* host, std::uint16_t* port,
               std::string* path) {
  const std::string scheme = "http://";
  if (url.compare(0, scheme.size(), scheme) != 0) return false;
  const std::string rest = url.substr(scheme.size());
  const std::size_t slash = rest.find('/');
  const std::string authority =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  *path = slash == std::string::npos ? "/" : rest.substr(slash);
  const std::size_t colon = authority.rfind(':');
  if (colon == std::string::npos) {
    *host = authority;
    *port = 80;
  } else {
    *host = authority.substr(0, colon);
    long n = 0;
    if (!parse_int(authority.c_str() + colon + 1, 1, 65535, &n)) return false;
    *port = static_cast<std::uint16_t>(n);
  }
  return !host->empty();
}

int cmd_ctl(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string verb = argv[0];
  const std::string url = argv[1];
  std::string body;
  bool include_status = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--body" && i + 1 < argc) {
      body = argv[++i];
    } else if (arg == "-i") {
      include_status = true;
    } else {
      std::fprintf(stderr, "ecnprobed: bad ctl argument '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (verb != "get" && verb != "post") return usage();

  std::string host;
  std::uint16_t port = 0;
  std::string path;
  if (!split_url(url, &host, &port, &path)) {
    std::fprintf(stderr, "ecnprobed: bad URL '%s' (need http://host:port/path)\n",
                 url.c_str());
    return 2;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("ecnprobed: socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "ecnprobed: ctl supports numeric IPv4 hosts, got '%s'\n",
                 host.c_str());
    ::close(fd);
    return 2;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("ecnprobed: connect");
    ::close(fd);
    return 1;
  }

  ecnprobe::wire::HttpRequest request;
  request.method = verb == "get" ? "GET" : "POST";
  request.target = path;
  request.version = "HTTP/1.1";
  request.headers["Host"] = host;
  request.headers["Connection"] = "close";
  request.body = body;
  const std::string wire_bytes = request.serialize();
  std::size_t sent = 0;
  while (sent < wire_bytes.size()) {
    const ssize_t n = ::send(fd, wire_bytes.data() + sent,
                             wire_bytes.size() - sent, 0);
    if (n <= 0) {
      std::perror("ecnprobed: send");
      ::close(fd);
      return 1;
    }
    sent += static_cast<std::size_t>(n);
  }

  ecnprobe::wire::HttpParser parser(ecnprobe::wire::HttpParser::Kind::Response);
  char buffer[4096];
  while (!parser.complete() && !parser.failed()) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      std::perror("ecnprobed: recv");
      ::close(fd);
      return 1;
    }
    if (n == 0) break;
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
  ::close(fd);
  if (!parser.complete()) {
    std::fprintf(stderr, "ecnprobed: bad response: %s\n",
                 parser.failed() ? parser.error().c_str() : "truncated");
    return 1;
  }
  const auto& response = parser.response();
  if (include_status) {
    std::printf("%d %s\n", response.status, response.reason.c_str());
    for (const auto& [key, header_value] : response.headers) {
      std::printf("%s: %s\n", key.c_str(), header_value.c_str());
    }
    std::printf("\n");
  }
  std::fwrite(response.body.data(), 1, response.body.size(), stdout);
  return response.status < 400 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "serve") return cmd_serve(argc - 2, argv + 2);
  if (command == "ctl") return cmd_ctl(argc - 2, argv + 2);
  return usage();
}
