// The ecnprobe command-line tool: run the study's stages individually and
// pipe results between them as CSV/pcap.
//
//   ecnprobe discover      [--scale F] [--seed N] [--rounds R]
//   ecnprobe campaign      [--scale F] [--seed N] [--traces N] [--workers N] [--out FILE]
//                          [--metrics-out FILE] [--faults SPEC] [--checkpoint FILE]
//                          [--resume FILE] [--halt-after N] [--record PREFIX]
//                          [--telemetry exact|sketched[,...]]
//   ecnprobe analyze       <traces.csv>
//   ecnprobe traceroute    [--scale F] [--seed N] [--vantage NAME] [--count N]
//   ecnprobe pcap          [--scale F] [--seed N] [--out FILE]
//   ecnprobe report        [--scale F] [--seed N] [--out FILE]
//   ecnprobe trace-autopsy --trace N [--server ADDR] [--scale F] [--seed N]
//                          [--faults SPEC] [--resume FILE]
//
// Option parsing is strict: unknown flags, missing values, and malformed
// numbers ("--workers banana", negative trace counts) exit non-zero with
// the usage message instead of being silently coerced to zero.
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "ecnprobe/chaos/fault_plan.hpp"
#include "ecnprobe/measure/journal.hpp"

#include "ecnprobe/analysis/autopsy.hpp"
#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/markdown_report.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/measure/campaign.hpp"
#include "ecnprobe/measure/probe.hpp"
#include "ecnprobe/http/obs_server.hpp"
#include "ecnprobe/netsim/pcap.hpp"
#include "ecnprobe/sched/policy.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/obs/flight_export.hpp"
#include "ecnprobe/obs/profiler.hpp"
#include "ecnprobe/scenario/world.hpp"
#include "ecnprobe/wire/dissect.hpp"

namespace {

using namespace ecnprobe;

struct Options {
  double scale = 0.1;
  std::uint64_t seed = 42;
  int rounds = 0;
  int traces = 0;
  int count = 8;
  int workers = 1;
  int halt_after = 0;
  std::string vantage = "UGla wired";
  std::string out;
  std::string metrics_out;
  std::string input;
  std::string faults = "none";
  std::string checkpoint;  ///< journal path (--checkpoint or --resume)
  bool resume = false;     ///< --resume: the journal must already exist
  std::string record;      ///< flight-recorder output prefix (--record)
  int trace = -1;          ///< trace-autopsy: campaign trace index
  std::string server;      ///< trace-autopsy: restrict to this server address
  /// Telemetry fidelity knob: "exact" (default, byte-identical to the
  /// pre-telemetry output) or "sketched[,eps=..,delta=..,alpha=..,
  /// sample-every=N,reservoir=N,budget-kb=N,seed=N]".
  std::string telemetry = "exact";
  /// Deterministic sim-time series: "off" (default), a bare window width
  /// in sim-milliseconds, or "window-ms=N,alpha=F,max-windows=N".
  std::string timeseries = "off";
  /// Live observability plane port (--serve-obs): -1 = off, 0 = ephemeral.
  int serve_obs = -1;
  /// Wall-clock self-profiler (--profile); outside the determinism
  /// contract, never touches campaign outputs.
  bool profile = false;
  /// Probe-lifecycle supervision (--retry-*, --pace-*, --breaker-*,
  /// --watchdog-ms). Defaults to the paper-fixed discipline; the seed is
  /// left 0 so the scenario layer keys the jitter streams off --seed.
  ecnprobe::sched::SupervisorConfig sched;
};

bool parse_int_arg(const char* s, int* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < -(1l << 30) || v > (1l << 30)) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64_arg(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || std::strchr(s, '-') != nullptr) {
    return false;
  }
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double_arg(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse(int argc, char** argv, int first, Options* options) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ecnprobe: %s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const auto bad = [&](const char* v) {
      std::fprintf(stderr, "ecnprobe: bad value for %s: '%s'\n", arg.c_str(), v);
      return false;
    };
    const char* v = nullptr;
    if (arg == "--scale") {
      if ((v = need()) == nullptr) return false;
      if (!parse_double_arg(v, &options->scale) || options->scale <= 0.0) return bad(v);
    } else if (arg == "--seed") {
      if ((v = need()) == nullptr) return false;
      if (!parse_u64_arg(v, &options->seed)) return bad(v);
    } else if (arg == "--rounds") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->rounds) || options->rounds < 0) return bad(v);
    } else if (arg == "--traces") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->traces) || options->traces < 0) return bad(v);
    } else if (arg == "--count") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->count) || options->count < 1) return bad(v);
    } else if (arg == "--workers") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->workers) || options->workers < 1) return bad(v);
    } else if (arg == "--halt-after") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->halt_after) || options->halt_after < 0) return bad(v);
    } else if (arg == "--vantage") {
      if ((v = need()) == nullptr) return false;
      options->vantage = v;
    } else if (arg == "--out") {
      if ((v = need()) == nullptr) return false;
      options->out = v;
    } else if (arg == "--metrics-out") {
      if ((v = need()) == nullptr) return false;
      options->metrics_out = v;
    } else if (arg == "--faults") {
      if ((v = need()) == nullptr) return false;
      options->faults = v;
    } else if (arg == "--checkpoint") {
      if ((v = need()) == nullptr) return false;
      options->checkpoint = v;
    } else if (arg == "--resume") {
      if ((v = need()) == nullptr) return false;
      options->checkpoint = v;
      options->resume = true;
    } else if (arg == "--record") {
      if ((v = need()) == nullptr) return false;
      options->record = v;
    } else if (arg == "--telemetry") {
      if ((v = need()) == nullptr) return false;
      options->telemetry = v;
    } else if (arg == "--timeseries") {
      if ((v = need()) == nullptr) return false;
      options->timeseries = v;
    } else if (arg == "--serve-obs") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->serve_obs) || options->serve_obs < 0 ||
          options->serve_obs > 65535) {
        return bad(v);
      }
    } else if (arg == "--profile") {
      options->profile = true;
    } else if (arg == "--trace") {
      if ((v = need()) == nullptr) return false;
      if (!parse_int_arg(v, &options->trace) || options->trace < 0) return bad(v);
    } else if (arg == "--server") {
      if ((v = need()) == nullptr) return false;
      options->server = v;
    } else if (arg == "--retry-policy") {
      if ((v = need()) == nullptr) return false;
      if (std::string(v) == "paper") {
        options->sched.retry.kind = sched::RetryPolicy::Kind::PaperFixed;
      } else if (std::string(v) == "backoff") {
        options->sched.retry.kind = sched::RetryPolicy::Kind::Backoff;
      } else {
        return bad(v);
      }
    } else if (arg == "--retry-max") {
      if ((v = need()) == nullptr) return false;
      int n = 0;
      if (!parse_int_arg(v, &n) || n < 1) return bad(v);
      options->sched.retry.max_attempts = n;
    } else if (arg == "--retry-base-ms") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d <= 0.0) return bad(v);
      options->sched.retry.base_timeout = util::SimDuration::from_seconds(d / 1e3);
    } else if (arg == "--retry-factor") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d < 1.0) return bad(v);
      options->sched.retry.backoff_factor = d;
    } else if (arg == "--retry-max-timeout-ms") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d <= 0.0) return bad(v);
      options->sched.retry.max_timeout = util::SimDuration::from_seconds(d / 1e3);
    } else if (arg == "--retry-jitter") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d < 0.0 || d >= 1.0) return bad(v);
      options->sched.retry.jitter = d;
    } else if (arg == "--retry-budget-ms") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d < 0.0) return bad(v);
      options->sched.retry.total_budget = util::SimDuration::from_seconds(d / 1e3);
    } else if (arg == "--retry-hedge-ms") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d < 0.0) return bad(v);
      options->sched.retry.hedge_delay = util::SimDuration::from_seconds(d / 1e3);
    } else if (arg == "--pace-rate") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d <= 0.0) return bad(v);
      options->sched.pacer.enabled = true;
      options->sched.pacer.rate_per_sec = d;
    } else if (arg == "--pace-burst") {
      if ((v = need()) == nullptr) return false;
      int n = 0;
      if (!parse_int_arg(v, &n) || n < 1) return bad(v);
      options->sched.pacer.burst = n;
    } else if (arg == "--pace-dest-gap-ms") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d < 0.0) return bad(v);
      options->sched.pacer.per_dest_gap = util::SimDuration::from_seconds(d / 1e3);
    } else if (arg == "--breaker-failures") {
      if ((v = need()) == nullptr) return false;
      int n = 0;
      if (!parse_int_arg(v, &n) || n < 1) return bad(v);
      options->sched.breaker.enabled = true;
      options->sched.breaker.failure_threshold = n;
    } else if (arg == "--breaker-half-open") {
      if ((v = need()) == nullptr) return false;
      int n = 0;
      if (!parse_int_arg(v, &n) || n < 1) return bad(v);
      options->sched.breaker.enabled = true;
      options->sched.breaker.half_open_after = n;
    } else if (arg == "--watchdog-ms") {
      if ((v = need()) == nullptr) return false;
      double d = 0;
      if (!parse_double_arg(v, &d) || d <= 0.0) return bad(v);
      options->sched.watchdog.deadline = util::SimDuration::from_seconds(d / 1e3);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ecnprobe: unknown option '%s'\n", arg.c_str());
      return false;
    } else if (options->input.empty()) {
      options->input = arg;
    } else {
      std::fprintf(stderr, "ecnprobe: unexpected argument '%s'\n", arg.c_str());
      return false;
    }
  }
  try {
    // Cross-field supervisor checks (max-timeout under base, hedging
    // without backoff, budget below one attempt, ...).
    options->sched.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecnprobe: %s\n", e.what());
    return false;
  }
  return true;
}

scenario::WorldParams params_for(const Options& options) {
  auto params = scenario::WorldParams::paper().scaled(options.scale);
  params.seed = options.seed;
  return params;
}

/// Parses --telemetry into `params`; prints the parse error and returns
/// false on a malformed spec.
bool apply_telemetry(const Options& options, scenario::WorldParams* params) {
  const auto config = obs::TelemetryConfig::parse(options.telemetry);
  if (!config) {
    std::fprintf(stderr, "ecnprobe: %s\n", config.error().message.c_str());
    return false;
  }
  params->telemetry = *config;
  return true;
}

/// Parses --timeseries into `params`; prints the parse error and returns
/// false on a malformed spec.
bool apply_timeseries(const Options& options, scenario::WorldParams* params) {
  const auto config = obs::TimeSeriesConfig::parse(options.timeseries);
  if (!config) {
    std::fprintf(stderr, "ecnprobe: %s\n", config.error().message.c_str());
    return false;
  }
  params->timeseries = *config;
  return true;
}

/// JSON body for GET /progress. Hand-rolled like every encoder in obs/;
/// vantage names need escaping (they contain spaces, could contain
/// quotes).
std::string progress_json(const measure::ParallelCampaign::Progress& p) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string json = "{\"total\":" + std::to_string(p.total) +
                     ",\"completed\":" + std::to_string(p.completed) +
                     ",\"failed\":" + std::to_string(p.failed) +
                     ",\"in_flight\":" + std::to_string(p.in_flight) +
                     ",\"completed_by_vantage\":{";
  bool first = true;
  for (const auto& [vantage, count] : p.completed_by_vantage) {
    if (!first) json.push_back(',');
    first = false;
    json += "\"" + escape(vantage) + "\":" + std::to_string(count);
  }
  json += "}}";
  return json;
}

/// The campaign plan both `campaign` and `trace-autopsy` use, so the trace
/// indices the autopsy re-runs line up with the campaign's own. Shared
/// with the ecnprobed daemon via CampaignPlan::for_scale, so a daemon
/// campaign with the same spec executes identical traces.
measure::CampaignPlan plan_for(const Options& options) {
  return measure::CampaignPlan::for_scale(options.scale, options.traces);
}

/// Set by the SIGINT/SIGTERM handler when a checkpointed campaign should
/// drain: both executors consult it before starting each live trace, so
/// every started trace still reaches its write-ahead journal append and
/// the process exits with a resumable checkpoint instead of dying
/// mid-trace.
volatile std::sig_atomic_t g_drain_signal = 0;

void on_drain_signal(int signo) { g_drain_signal = signo; }

int cmd_discover(const Options& options) {
  scenario::World world(params_for(options));
  const int rounds = options.rounds > 0
                         ? options.rounds
                         : 40 + world.params().server_count / 12;
  const auto found = world.run_discovery(options.vantage, rounds);
  std::fprintf(stderr, "discovered %zu servers (%d rounds from '%s')\n", found.size(),
               rounds, options.vantage.c_str());
  std::printf("address\n");
  for (const auto& addr : found) std::printf("%s\n", addr.to_string().c_str());
  return 0;
}

int cmd_campaign(const Options& options) {
  auto params = params_for(options);
  const auto faults = chaos::FaultPlan::parse(options.faults);
  if (!faults) {
    std::fprintf(stderr, "ecnprobe: %s\n", faults.error().message.c_str());
    return 2;
  }
  params.faults = *faults;
  if (!apply_telemetry(options, &params)) return 2;
  if (!apply_timeseries(options, &params)) return 2;
  if (!options.record.empty()) params.flight_recorder_capacity = 1 << 16;
  if (options.profile) obs::Profiler::process().set_enabled(true);
  const auto plan = plan_for(options);
  std::fprintf(stderr, "running %d traces x %d servers (%d worker%s, faults: %s)...\n",
               plan.total_traces(), params.server_count, options.workers,
               options.workers == 1 ? "" : "s", params.faults.name.c_str());

  // Checkpoint journal: --resume requires the file, --checkpoint creates it.
  measure::CampaignJournal journal;
  measure::CampaignJournal* journal_ptr = nullptr;
  if (!options.checkpoint.empty()) {
    if (options.resume && !std::ifstream(options.checkpoint).is_open()) {
      std::fprintf(stderr, "ecnprobe: cannot resume: no journal at %s\n",
                   options.checkpoint.c_str());
      return 1;
    }
    measure::JournalMeta meta;
    meta.plan = measure::plan_fingerprint(plan);
    meta.faults = params.faults.fingerprint();
    meta.seed = params.seed;
    meta.total_traces = plan.total_traces();
    meta.server_count = params.server_count;
    std::string error;
    if (!journal.open(options.checkpoint, meta, &error)) {
      std::fprintf(stderr, "ecnprobe: %s\n", error.c_str());
      return 1;
    }
    journal_ptr = &journal;
    if (!journal.entries().empty()) {
      std::fprintf(stderr, "resuming: %zu of %d traces already journaled\n",
                   journal.entries().size(), plan.total_traces());
    }
    // With a journal active, SIGINT/SIGTERM drain instead of kill: stop
    // claiming new traces, let in-flight ones reach their write-ahead
    // append, exit 3 with a resumable checkpoint on disk.
    g_drain_signal = 0;
    std::signal(SIGINT, on_drain_signal);
    std::signal(SIGTERM, on_drain_signal);
  }

  // Sequential and sharded paths produce byte-identical CSVs and campaign
  // metrics; --workers only changes wall-clock time.
  const bool tty = isatty(fileno(stderr)) != 0;
  const int total = plan.total_traces();
  std::vector<measure::Trace> traces;
  obs::ObsSnapshot campaign_obs;
  obs::MetricsSnapshot runtime;
  bool have_runtime = false;
  obs::TelemetryAggregate telemetry;
  std::vector<obs::FlightEvent> flights;
  measure::ProbeOptions probe;
  probe.sched = options.sched;
  // The live plane serves from ParallelCampaign's thread-safe snapshots,
  // so --serve-obs routes through the sharded executor even at one
  // worker -- the merged outputs are byte-identical either way.
  if (options.workers > 1 || options.serve_obs >= 0) {
    measure::ParallelCampaign::Options exec;
    exec.workers = options.workers;
    exec.probe = probe;
    exec.telemetry = params.telemetry.resolved(params.seed);
    if (!exec.probe.sched.is_paper_default() && exec.probe.sched.seed == 0) {
      exec.probe.sched.seed = params.seed;
    }
    exec.halt_after_traces = options.halt_after > 0 ? options.halt_after
                                                    : params.faults.crash_after_traces;
    measure::ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
    if (journal_ptr != nullptr) campaign.set_journal(journal_ptr);
    // Live observability plane: a real HTTP listener rendering from the
    // executor's thread-safe snapshots. Strictly read-only -- nothing the
    // campaign computes ever depends on whether (or when) it is scraped.
    std::unique_ptr<http::ObsHttpServer> obs_server;
    if (options.serve_obs >= 0) {
      http::ObsHttpServer::Options server_options;
      server_options.port = static_cast<std::uint16_t>(options.serve_obs);
      http::ObsHttpServer::Providers providers;
      providers.metrics = [&campaign] {
        const auto snap = campaign.metrics_snapshot();
        return obs::to_prometheus(snap.metrics) + obs::to_prometheus(snap.timeseries);
      };
      providers.progress = [&campaign] { return progress_json(campaign.progress()); };
      obs_server =
          std::make_unique<http::ObsHttpServer>(server_options, std::move(providers));
      std::string error;
      if (!obs_server->start(&error)) {
        std::fprintf(stderr, "ecnprobe: --serve-obs: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "live obs plane: http://127.0.0.1:%u  (/metrics /progress /events)\n",
                   static_cast<unsigned>(obs_server->port()));
    }
    // Progress line on a monitor thread: progress() is a lock-cheap
    // snapshot of the runtime registry, safe to poll while workers run.
    std::atomic<bool> running{true};
    // Signal-to-halt bridge: request_halt() is not async-signal-safe to
    // call from the handler itself, so a watcher thread polls the flag.
    std::thread drain_watcher;
    if (journal_ptr != nullptr) {
      drain_watcher = std::thread([&campaign, &running] {
        while (running.load(std::memory_order_relaxed)) {
          if (g_drain_signal != 0) {
            campaign.request_halt();
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      });
    }
    std::thread monitor;
    if (tty) {
      monitor = std::thread([&] {
        while (running.load(std::memory_order_relaxed)) {
          const auto p = campaign.progress();
          std::fprintf(stderr, "\r  %d/%d traces, %d in flight, %d failed   ",
                       p.completed, p.total, p.in_flight, p.failed);
          std::this_thread::sleep_for(std::chrono::milliseconds(250));
        }
      });
    }
    traces = campaign.run(plan);
    running.store(false, std::memory_order_relaxed);
    if (drain_watcher.joinable()) drain_watcher.join();
    if (monitor.joinable()) {
      monitor.join();
      std::fprintf(stderr, "\r  %d/%d traces done%*s\n", campaign.traces_completed(),
                   total, 20, "");
    }
    for (const auto& failure : campaign.failures()) {
      std::fprintf(stderr, "trace %d (%s) failed: %s\n", failure.index,
                   failure.vantage.c_str(), failure.message.c_str());
    }
    campaign_obs = campaign.metrics();
    runtime = campaign.runtime_metrics();
    have_runtime = true;
    telemetry = campaign.telemetry();
    flights = campaign.flight_events();
  } else {
    scenario::World world(params);
    int completed = 0;
    std::vector<measure::TraceFailure> failures;
    traces = world.run_campaign(
        plan, probe,
        [&](const std::string&, int, int) {
          ++completed;
          if (tty) std::fprintf(stderr, "\r  %d/%d traces   ", completed, total);
        },
        journal_ptr, options.halt_after, &failures,
        journal_ptr != nullptr
            ? measure::Campaign::HaltCheck([] { return g_drain_signal != 0; })
            : measure::Campaign::HaltCheck{});
    if (tty && completed > 0) std::fprintf(stderr, "\r  %d/%d traces done   \n", completed, total);
    for (const auto& failure : failures) {
      std::fprintf(stderr, "trace %d (%s) quarantined: %s\n", failure.index,
                   failure.vantage.c_str(), failure.message.c_str());
    }
    campaign_obs = world.campaign_obs();
    telemetry = world.campaign_telemetry();
    flights = world.campaign_flights();
  }
  if (journal_ptr != nullptr && g_drain_signal != 0) {
    // Drained on a signal: the journal holds every trace that started.
    // Skip the partial exports -- the resume run produces the real ones.
    std::fprintf(stderr,
                 "interrupted (signal %d): %zu of %d traces checkpointed in %s; "
                 "finish with --resume %s\n",
                 static_cast<int>(g_drain_signal), journal.entries().size(),
                 plan.total_traces(), options.checkpoint.c_str(),
                 options.checkpoint.c_str());
    return 3;
  }
  // Export stage timer; reset() before the profile itself is printed so
  // the "export" stage includes every file written below.
  std::optional<obs::Profiler::Scope> export_scope;
  export_scope.emplace("export");
  if (!options.record.empty()) {
    if (!obs::write_flight_files(options.record, flights)) {
      std::fprintf(stderr, "cannot write %s.pcapng / %s.trace.json\n",
                   options.record.c_str(), options.record.c_str());
      return 1;
    }
    std::fprintf(stderr, "recorded %zu flight events -> %s.pcapng, %s.trace.json\n",
                 flights.size(), options.record.c_str(), options.record.c_str());
  }
  if (options.out.empty()) {
    measure::write_traces_csv(std::cout, traces);
  } else {
    std::ofstream os(options.out);
    measure::write_traces_csv(os, traces);
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  const auto autopsy = obs::render_loss_autopsy(campaign_obs.ledger);
  if (!autopsy.empty()) std::fprintf(stderr, "\n%s", autopsy.c_str());
  if (telemetry.active()) {
    const auto summary = obs::render_sketched_summary(telemetry);
    if (!summary.empty()) std::fprintf(stderr, "\n%s", summary.c_str());
  }
  if (!options.metrics_out.empty()) {
    if (!obs::write_metrics_files(options.metrics_out, campaign_obs,
                                  have_runtime ? &runtime : nullptr,
                                  telemetry.active() ? &telemetry : nullptr)) {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_out.c_str());
      return 1;
    }
    if (options.metrics_out != "-") {
      std::fprintf(stderr, "wrote %s (+ Prometheus sibling)\n",
                   options.metrics_out.c_str());
    }
  }
  export_scope.reset();
  if (options.profile) {
    auto& profiler = obs::Profiler::process();
    if (!options.record.empty()) {
      // Chrome-trace sidecar lands next to the flight recorder's files.
      const std::string trace_path = options.record + ".profile.json";
      if (profiler.write_chrome_trace(trace_path)) {
        std::fprintf(stderr, "wrote %s (chrome trace; load in chrome://tracing)\n",
                     trace_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      }
    }
    std::fprintf(stderr, "profile (wall-clock, unguarded): %s\n",
                 profiler.to_json().c_str());
  }
  return 0;
}

int cmd_trace_autopsy(const Options& options) {
  if (options.trace < 0) {
    std::fprintf(stderr, "ecnprobe: trace-autopsy requires --trace N\n");
    return 2;
  }
  auto params = params_for(options);
  const auto faults = chaos::FaultPlan::parse(options.faults);
  if (!faults) {
    std::fprintf(stderr, "ecnprobe: %s\n", faults.error().message.c_str());
    return 2;
  }
  params.faults = *faults;
  if (!apply_telemetry(options, &params)) return 2;
  params.flight_recorder_capacity = 1 << 16;
  const auto plan = plan_for(options);
  const auto schedule = measure::expand_schedule(plan);
  if (static_cast<std::size_t>(options.trace) >= schedule.size()) {
    std::fprintf(stderr, "ecnprobe: --trace %d out of range (campaign has %zu traces)\n",
                 options.trace, schedule.size());
    return 2;
  }
  // Optional journal cross-check: with --resume FILE the journal metadata
  // must match this invocation's plan/faults/seed, so the autopsy is
  // guaranteed to replay the same campaign the journal came from.
  if (!options.checkpoint.empty()) {
    if (!std::ifstream(options.checkpoint).is_open()) {
      std::fprintf(stderr, "ecnprobe: no journal at %s\n", options.checkpoint.c_str());
      return 1;
    }
    measure::CampaignJournal journal;
    measure::JournalMeta meta;
    meta.plan = measure::plan_fingerprint(plan);
    meta.faults = params.faults.fingerprint();
    meta.seed = params.seed;
    meta.total_traces = plan.total_traces();
    meta.server_count = params.server_count;
    std::string error;
    if (!journal.open(options.checkpoint, meta, &error)) {
      std::fprintf(stderr, "ecnprobe: %s\n", error.c_str());
      return 1;
    }
    if (journal.entries().count(options.trace) != 0) {
      std::fprintf(stderr, "trace %d is journaled as completed; reconstructing it by "
                   "deterministic re-run\n", options.trace);
    }
  }

  // Re-run exactly the requested trace. Per-trace epoch hermeticity makes
  // the trace a pure function of (params, batch, index), so this replays
  // the campaign's trace bit-for-bit -- now with the recorder armed.
  const auto& planned = schedule[static_cast<std::size_t>(options.trace)];
  scenario::World world(params);
  try {
    world.begin_trace_epoch(planned.vantage, planned.batch, options.trace);
    auto& vantage = world.vantage(planned.vantage);
    vantage.capture().clear();
    // Mirror the campaign executors' supervisor defaults so an autopsy of a
    // supervised campaign replays the trace bit for bit.
    measure::ProbeOptions probe;
    probe.sched = options.sched;
    if (!probe.sched.is_paper_default()) {
      if (probe.sched.seed == 0) probe.sched.seed = params.seed;
      if (probe.sched.breaker.enabled) probe.breaker_group = world.breaker_group_resolver();
    }
    measure::TraceRunner runner(vantage, world.server_addresses(), probe);
    bool done = false;
    runner.run(planned.batch, options.trace, [&](measure::Trace) { done = true; });
    world.sim().run();
    if (!done) {
      std::fprintf(stderr, "ecnprobe: trace %d stalled\n", options.trace);
      return 1;
    }
  } catch (const std::exception& e) {
    // Same path the campaign executor takes: quarantine, then render
    // whatever the recorder saw before the fault fired.
    world.sim().clear_pending();
    world.quarantine_trace(planned.vantage);
    std::fprintf(stderr, "trace %d (%s) quarantined: %s\n", options.trace,
                 planned.vantage.c_str(), e.what());
  }

  analysis::AutopsyRequest request;
  request.trace = options.trace;
  request.server = options.server;
  const auto delta = world.collect_obs_delta();
  // Under sketched telemetry an unsampled trace suppresses its per-packet
  // flight records (they fold into the campaign sketch instead). Degrade to
  // the exact per-trace cause summary rather than an empty causal chain.
  if (params.telemetry.sketched() &&
      !params.telemetry.resolved(params.seed).keeps_exact_trace(options.trace)) {
    const auto report = analysis::render_sketched_autopsy(
        delta.telemetry, params.telemetry.resolved(params.seed), request);
    std::fputs(report.c_str(), stdout);
    return 0;
  }
  const auto report = analysis::render_trace_autopsy(
      world.collect_flight_slice(), delta.ledger, world.ip2as(), request);
  std::fputs(report.c_str(), stdout);
  return 0;
}

int cmd_analyze(const Options& options) {
  std::ifstream is(options.input);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", options.input.c_str());
    return 1;
  }
  const auto traces = measure::read_traces_csv(is);
  if (!traces) {
    std::fprintf(stderr, "parse error: %s\n", traces.error().message.c_str());
    return 1;
  }
  std::printf("loaded %zu traces\n\n", traces->size());
  const auto per_trace = analysis::per_trace_reachability(*traces);
  std::printf("Figure 2a:\n%s\n", analysis::render_figure2a(per_trace).c_str());
  std::printf("Figure 2b:\n%s\n", analysis::render_figure2b(per_trace).c_str());
  const auto diffs = analysis::per_server_differential(*traces);
  std::printf("Figure 3a (aggregate):\n%s\n", analysis::render_figure3a(diffs).c_str());
  int server_count = 0;
  if (!traces->empty()) server_count = static_cast<int>((*traces)[0].servers.size());
  std::printf("Figure 5:\n%s\n",
              analysis::render_figure5(per_trace, server_count).c_str());
  std::printf("Table 2:\n%s\n",
              analysis::render_table2(analysis::correlation_table(*traces)).c_str());
  std::printf("Summary:\n%s",
              analysis::render_summary(analysis::summarize_reachability(*traces))
                  .c_str());
  return 0;
}

int cmd_traceroute(const Options& options) {
  scenario::World world(params_for(options));
  auto& vantage = world.vantage(options.vantage);
  const auto servers = world.server_addresses();
  const int n = std::min<int>(options.count, static_cast<int>(servers.size()));
  int remaining = n;
  std::size_t cursor = 0;
  std::function<void()> next = [&]() {
    if (remaining-- <= 0) return;
    const auto target = servers[cursor];
    cursor += servers.size() / static_cast<std::size_t>(n);
    vantage.tracer().trace(target, traceroute::TracerouteOptions{},
                           [&, target](const traceroute::PathRecord& record) {
                             std::printf("-> %s\n", target.to_string().c_str());
                             for (const auto& hop : record.hops) {
                               if (!hop.responded) {
                                 std::printf("  %2d  *\n", hop.ttl);
                                 continue;
                               }
                               std::printf("  %2d  %c %s\n", hop.ttl,
                                           hop.ecn_intact() ? '+' : '-',
                                           hop.responder.to_string().c_str());
                             }
                             next();
                           });
  };
  next();
  world.sim().run();
  return 0;
}

int cmd_report(const Options& options) {
  scenario::World world(params_for(options));
  auto plan = measure::CampaignPlan::for_scale(options.scale);
  std::fprintf(stderr, "running %d traces x %d servers...\n", plan.total_traces(),
               world.params().server_count);
  analysis::ReportInputs inputs;
  inputs.traces = world.run_campaign(plan);
  std::fprintf(stderr, "running traceroutes...\n");
  inputs.traceroutes = world.run_traceroutes(2);
  inputs.ip2as = &world.ip2as();
  inputs.geo = analysis::summarize_geo(world.server_addresses(), world.geodb());
  inputs.title = "ECN-with-UDP measurement report (scale " +
                 std::to_string(options.scale) + ", seed " +
                 std::to_string(options.seed) + ")";
  const auto report = analysis::render_markdown_report(inputs);
  if (options.out.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream os(options.out);
    os << report;
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  return 0;
}

int cmd_pcap(const Options& options) {
  scenario::World world(params_for(options));
  auto& vantage = world.vantage(options.vantage);
  bool done = false;
  measure::probe_server(vantage, world.servers()[0].address, measure::ProbeOptions{},
                        [&](const measure::ServerResult&) { done = true; });
  world.sim().run();
  if (!done) {
    std::fprintf(stderr, "probe did not complete\n");
    return 1;
  }
  const std::string path = options.out.empty() ? "ecnprobe.pcap" : options.out;
  if (!netsim::write_pcap_file(path, vantage.capture())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu packets to %s\n", vantage.capture().packets().size(),
               path.c_str());
  for (const auto& packet : vantage.capture().packets()) {
    std::printf("%9.6f %s %s\n", packet.time.to_seconds(),
                packet.dir == netsim::Direction::Tx ? ">" : "<",
                wire::dissect(packet.dgram).c_str());
  }
  return 0;
}

int usage() {
  std::string profiles;
  for (const auto& name : chaos::FaultPlan::profile_names()) {
    profiles += (profiles.empty() ? "" : ", ") + name;
  }
  std::fprintf(stderr,
               "usage: ecnprobe <command> [options]\n"
               "  discover    enumerate the pool via DNS          [--scale --seed --rounds --vantage]\n"
               "  campaign    run the measurement campaign -> CSV [--scale --seed --traces --workers --out --metrics-out]\n"
               "              fault injection / checkpointing     [--faults SPEC --checkpoint FILE --resume FILE --halt-after N]\n"
               "  analyze     figures/tables from a traces CSV    <traces.csv>\n"
               "  traceroute  ECN traceroute listings             [--scale --seed --vantage --count]\n"
               "  pcap        probe one server, dump pcap+dissection [--scale --seed --vantage --out]\n"
               "  report      full campaign -> Markdown report      [--scale --seed --out]\n"
               "  trace-autopsy  causal chain for one campaign trace  [--trace N --server ADDR --faults --resume FILE]\n"
               "campaign recording: --record PREFIX writes PREFIX.pcapng + PREFIX.trace.json\n"
               "live plane (campaign): --serve-obs PORT serves GET /metrics /progress /events\n"
               "  (SSE) on 127.0.0.1 while the campaign runs (PORT 0 = ephemeral)\n"
               "time series (campaign): --timeseries off (default) | WINDOW_MS |\n"
               "  window-ms=N,alpha=F,max-windows=N -- deterministic sim-time series in\n"
               "  the metrics JSON/Prometheus exports, byte-identical at any --workers\n"
               "self-profiler (campaign): --profile prints wall-clock stage timings; with\n"
               "  --record PREFIX also writes PREFIX.profile.json (chrome://tracing)\n"
               "stdout exports: --metrics-out - streams the metrics JSON to stdout\n"
               "telemetry fidelity (campaign/trace-autopsy): --telemetry exact (default) |\n"
               "  sketched[,eps=F,delta=F,alpha=F,sample-every=N,reservoir=N,budget-kb=N,seed=N]\n"
               "  sketched mode bounds telemetry memory: count-min cause/hop/AS counters\n"
               "  (overcount <= eps*N w.p. 1-delta), log-bucketed RTT (rel. err alpha),\n"
               "  exact flight records for every Nth trace only\n"
               "probe supervision (campaign/trace-autopsy):\n"
               "  --retry-policy paper|backoff --retry-max N --retry-base-ms D --retry-factor D\n"
               "  --retry-max-timeout-ms D --retry-jitter D --retry-budget-ms D --retry-hedge-ms D\n"
               "  --breaker-failures N --breaker-half-open N\n"
               "  --pace-rate D --pace-burst N --pace-dest-gap-ms D --watchdog-ms D\n"
               "fault profiles: %s (tunable, e.g. 'wan-chaos,corrupt-prob=0.05,poison=7')\n",
               profiles.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  Options options;
  if (!parse(argc, argv, 2, &options)) return usage();
  if (command == "discover") return cmd_discover(options);
  if (command == "campaign") return cmd_campaign(options);
  if (command == "analyze") return cmd_analyze(options);
  if (command == "traceroute") return cmd_traceroute(options);
  if (command == "pcap") return cmd_pcap(options);
  if (command == "report") return cmd_report(options);
  if (command == "trace-autopsy") return cmd_trace_autopsy(options);
  return usage();
}
