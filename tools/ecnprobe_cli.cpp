// The ecnprobe command-line tool: run the study's stages individually and
// pipe results between them as CSV/pcap.
//
//   ecnprobe discover   [--scale F] [--seed N] [--rounds R]
//   ecnprobe campaign   [--scale F] [--seed N] [--traces N] [--workers N] [--out FILE]
//                       [--metrics-out FILE]
//   ecnprobe analyze    <traces.csv>
//   ecnprobe traceroute [--scale F] [--seed N] [--vantage NAME] [--count N]
//   ecnprobe pcap       [--scale F] [--seed N] [--out FILE]
//   ecnprobe report     [--scale F] [--seed N] [--out FILE]
//
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "ecnprobe/analysis/differential.hpp"
#include "ecnprobe/analysis/hops.hpp"
#include "ecnprobe/analysis/geosummary.hpp"
#include "ecnprobe/analysis/markdown_report.hpp"
#include "ecnprobe/analysis/reachability.hpp"
#include "ecnprobe/analysis/report.hpp"
#include "ecnprobe/measure/probe.hpp"
#include "ecnprobe/netsim/pcap.hpp"
#include "ecnprobe/obs/export.hpp"
#include "ecnprobe/scenario/world.hpp"
#include "ecnprobe/wire/dissect.hpp"

namespace {

using namespace ecnprobe;

struct Options {
  double scale = 0.1;
  std::uint64_t seed = 42;
  int rounds = 0;
  int traces = 0;
  int count = 8;
  int workers = 1;
  std::string vantage = "UGla wired";
  std::string out;
  std::string metrics_out;
  std::string input;
};

Options parse(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--scale") options.scale = std::atof(value().c_str());
    else if (arg == "--seed") options.seed = static_cast<std::uint64_t>(
        std::atoll(value().c_str()));
    else if (arg == "--rounds") options.rounds = std::atoi(value().c_str());
    else if (arg == "--traces") options.traces = std::atoi(value().c_str());
    else if (arg == "--count") options.count = std::atoi(value().c_str());
    else if (arg == "--workers") options.workers = std::max(1, std::atoi(value().c_str()));
    else if (arg == "--vantage") options.vantage = value();
    else if (arg == "--out") options.out = value();
    else if (arg == "--metrics-out") options.metrics_out = value();
    else if (arg[0] != '-') options.input = arg;
  }
  return options;
}

scenario::WorldParams params_for(const Options& options) {
  auto params = scenario::WorldParams::paper().scaled(options.scale);
  params.seed = options.seed;
  return params;
}

int cmd_discover(const Options& options) {
  scenario::World world(params_for(options));
  const int rounds = options.rounds > 0
                         ? options.rounds
                         : 40 + world.params().server_count / 12;
  const auto found = world.run_discovery(options.vantage, rounds);
  std::fprintf(stderr, "discovered %zu servers (%d rounds from '%s')\n", found.size(),
               rounds, options.vantage.c_str());
  std::printf("address\n");
  for (const auto& addr : found) std::printf("%s\n", addr.to_string().c_str());
  return 0;
}

int cmd_campaign(const Options& options) {
  const auto params = params_for(options);
  auto plan = measure::CampaignPlan::paper_layout(
      std::max(1, static_cast<int>(9 * options.scale)),
      std::max(1, static_cast<int>(12 * options.scale)),
      std::max(1, static_cast<int>(14 * options.scale)));
  if (options.traces > 0) {
    // Uniform override: N traces spread over the 13 vantage points.
    plan = measure::CampaignPlan{};
    const auto& names = measure::paper_vantage_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      const int share = options.traces / static_cast<int>(names.size()) +
                        (static_cast<int>(i) <
                                 options.traces % static_cast<int>(names.size())
                             ? 1
                             : 0);
      if (share > 0) plan.entries.push_back({names[i], i < 4 ? 1 : 2, share});
    }
  }
  std::fprintf(stderr, "running %d traces x %d servers (%d worker%s)...\n",
               plan.total_traces(), params.server_count, options.workers,
               options.workers == 1 ? "" : "s");
  // Sequential and sharded paths produce byte-identical CSVs and campaign
  // metrics; --workers only changes wall-clock time.
  const bool tty = isatty(fileno(stderr)) != 0;
  const int total = plan.total_traces();
  std::vector<measure::Trace> traces;
  obs::ObsSnapshot campaign_obs;
  obs::MetricsSnapshot runtime;
  bool have_runtime = false;
  if (options.workers > 1) {
    measure::ParallelCampaign::Options exec;
    exec.workers = options.workers;
    measure::ParallelCampaign campaign(scenario::world_shard_factory(params), exec);
    // Progress line on a monitor thread: progress() is a lock-cheap
    // snapshot of the runtime registry, safe to poll while workers run.
    std::atomic<bool> running{true};
    std::thread monitor;
    if (tty) {
      monitor = std::thread([&] {
        while (running.load(std::memory_order_relaxed)) {
          const auto p = campaign.progress();
          std::fprintf(stderr, "\r  %d/%d traces, %d in flight, %d failed   ",
                       p.completed, p.total, p.in_flight, p.failed);
          std::this_thread::sleep_for(std::chrono::milliseconds(250));
        }
      });
    }
    traces = campaign.run(plan);
    running.store(false, std::memory_order_relaxed);
    if (monitor.joinable()) {
      monitor.join();
      std::fprintf(stderr, "\r  %d/%d traces done%*s\n", campaign.traces_completed(),
                   total, 20, "");
    }
    for (const auto& failure : campaign.failures()) {
      std::fprintf(stderr, "trace %d (%s) failed: %s\n", failure.index,
                   failure.vantage.c_str(), failure.message.c_str());
    }
    campaign_obs = campaign.metrics();
    runtime = campaign.runtime_metrics();
    have_runtime = true;
  } else {
    scenario::World world(params);
    int completed = 0;
    traces = world.run_campaign(plan, {}, [&](const std::string&, int, int) {
      ++completed;
      if (tty) std::fprintf(stderr, "\r  %d/%d traces   ", completed, total);
    });
    if (tty && completed > 0) std::fprintf(stderr, "\r  %d/%d traces done   \n", completed, total);
    campaign_obs = world.campaign_obs();
  }
  if (options.out.empty()) {
    measure::write_traces_csv(std::cout, traces);
  } else {
    std::ofstream os(options.out);
    measure::write_traces_csv(os, traces);
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  const auto autopsy = obs::render_loss_autopsy(campaign_obs.ledger);
  if (!autopsy.empty()) std::fprintf(stderr, "\n%s", autopsy.c_str());
  if (!options.metrics_out.empty()) {
    if (!obs::write_metrics_files(options.metrics_out, campaign_obs,
                                  have_runtime ? &runtime : nullptr)) {
      std::fprintf(stderr, "cannot write %s\n", options.metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (+ Prometheus sibling)\n", options.metrics_out.c_str());
  }
  return 0;
}

int cmd_analyze(const Options& options) {
  std::ifstream is(options.input);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", options.input.c_str());
    return 1;
  }
  const auto traces = measure::read_traces_csv(is);
  if (!traces) {
    std::fprintf(stderr, "parse error: %s\n", traces.error().message.c_str());
    return 1;
  }
  std::printf("loaded %zu traces\n\n", traces->size());
  const auto per_trace = analysis::per_trace_reachability(*traces);
  std::printf("Figure 2a:\n%s\n", analysis::render_figure2a(per_trace).c_str());
  std::printf("Figure 2b:\n%s\n", analysis::render_figure2b(per_trace).c_str());
  const auto diffs = analysis::per_server_differential(*traces);
  std::printf("Figure 3a (aggregate):\n%s\n", analysis::render_figure3a(diffs).c_str());
  int server_count = 0;
  if (!traces->empty()) server_count = static_cast<int>((*traces)[0].servers.size());
  std::printf("Figure 5:\n%s\n",
              analysis::render_figure5(per_trace, server_count).c_str());
  std::printf("Table 2:\n%s\n",
              analysis::render_table2(analysis::correlation_table(*traces)).c_str());
  std::printf("Summary:\n%s",
              analysis::render_summary(analysis::summarize_reachability(*traces))
                  .c_str());
  return 0;
}

int cmd_traceroute(const Options& options) {
  scenario::World world(params_for(options));
  auto& vantage = world.vantage(options.vantage);
  const auto servers = world.server_addresses();
  const int n = std::min<int>(options.count, static_cast<int>(servers.size()));
  int remaining = n;
  std::size_t cursor = 0;
  std::function<void()> next = [&]() {
    if (remaining-- <= 0) return;
    const auto target = servers[cursor];
    cursor += servers.size() / static_cast<std::size_t>(n);
    vantage.tracer().trace(target, traceroute::TracerouteOptions{},
                           [&, target](const traceroute::PathRecord& record) {
                             std::printf("-> %s\n", target.to_string().c_str());
                             for (const auto& hop : record.hops) {
                               if (!hop.responded) {
                                 std::printf("  %2d  *\n", hop.ttl);
                                 continue;
                               }
                               std::printf("  %2d  %c %s\n", hop.ttl,
                                           hop.ecn_intact() ? '+' : '-',
                                           hop.responder.to_string().c_str());
                             }
                             next();
                           });
  };
  next();
  world.sim().run();
  return 0;
}

int cmd_report(const Options& options) {
  scenario::World world(params_for(options));
  auto plan = measure::CampaignPlan::paper_layout(
      std::max(1, static_cast<int>(9 * options.scale)),
      std::max(1, static_cast<int>(12 * options.scale)),
      std::max(1, static_cast<int>(14 * options.scale)));
  std::fprintf(stderr, "running %d traces x %d servers...\n", plan.total_traces(),
               world.params().server_count);
  analysis::ReportInputs inputs;
  inputs.traces = world.run_campaign(plan);
  std::fprintf(stderr, "running traceroutes...\n");
  inputs.traceroutes = world.run_traceroutes(2);
  inputs.ip2as = &world.ip2as();
  inputs.geo = analysis::summarize_geo(world.server_addresses(), world.geodb());
  inputs.title = "ECN-with-UDP measurement report (scale " +
                 std::to_string(options.scale) + ", seed " +
                 std::to_string(options.seed) + ")";
  const auto report = analysis::render_markdown_report(inputs);
  if (options.out.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream os(options.out);
    os << report;
    std::fprintf(stderr, "wrote %s\n", options.out.c_str());
  }
  return 0;
}

int cmd_pcap(const Options& options) {
  scenario::World world(params_for(options));
  auto& vantage = world.vantage(options.vantage);
  bool done = false;
  measure::probe_server(vantage, world.servers()[0].address, measure::ProbeOptions{},
                        [&](const measure::ServerResult&) { done = true; });
  world.sim().run();
  if (!done) {
    std::fprintf(stderr, "probe did not complete\n");
    return 1;
  }
  const std::string path = options.out.empty() ? "ecnprobe.pcap" : options.out;
  if (!netsim::write_pcap_file(path, vantage.capture())) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu packets to %s\n", vantage.capture().packets().size(),
               path.c_str());
  for (const auto& packet : vantage.capture().packets()) {
    std::printf("%9.6f %s %s\n", packet.time.to_seconds(),
                packet.dir == netsim::Direction::Tx ? ">" : "<",
                wire::dissect(packet.dgram).c_str());
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: ecnprobe <command> [options]\n"
               "  discover    enumerate the pool via DNS          [--scale --seed --rounds --vantage]\n"
               "  campaign    run the measurement campaign -> CSV [--scale --seed --traces --workers --out --metrics-out]\n"
               "  analyze     figures/tables from a traces CSV    <traces.csv>\n"
               "  traceroute  ECN traceroute listings             [--scale --seed --vantage --count]\n"
               "  pcap        probe one server, dump pcap+dissection [--scale --seed --vantage --out]\n"
               "  report      full campaign -> Markdown report      [--scale --seed --out]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const auto options = parse(argc, argv, 2);
  if (command == "discover") return cmd_discover(options);
  if (command == "campaign") return cmd_campaign(options);
  if (command == "analyze") return cmd_analyze(options);
  if (command == "traceroute") return cmd_traceroute(options);
  if (command == "pcap") return cmd_pcap(options);
  if (command == "report") return cmd_report(options);
  return usage();
}
